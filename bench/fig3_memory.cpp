// Figure 3: memory usage per GPU under time sharing (one GPU carries graph
// topology + feature cache + both stage workspaces) versus GNNLab's space
// sharing (a Sampler GPU holds only topology, a Trainer GPU only cache).
// Printed as the per-category ledger of each simulated device for GCN on
// the OGB-Papers stand-in.
#include "baselines/timeshare_runner.h"
#include "bench/bench_common.h"
#include "core/engine.h"
#include "report/table.h"

using namespace gnnlab;  // NOLINT

namespace {

void PrintDevices(const char* title, const std::vector<Device>& devices, int limit) {
  std::printf("%s\n", title);
  TablePrinter table({"GPU", "topology", "feature-cache", "sampler-ws", "trainer-ws",
                      "used", "capacity"});
  int shown = 0;
  for (const Device& dev : devices) {
    if (shown++ >= limit) {
      break;
    }
    table.AddRow({"gpu" + std::to_string(dev.id()),
                  FormatBytes(dev.used(MemoryKind::kTopology)),
                  FormatBytes(dev.used(MemoryKind::kFeatureCache)),
                  FormatBytes(dev.used(MemoryKind::kSamplerWorkspace)),
                  FormatBytes(dev.used(MemoryKind::kTrainerWorkspace)),
                  FormatBytes(dev.used()), FormatBytes(dev.capacity())});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBenchHeader("Figure 3: per-stage GPU memory, time sharing vs space sharing", flags);

  const Dataset& pa = GetDataset(DatasetId::kPapers, flags);
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  BenchReportBuilder report_builder = MakeBenchReportBuilder("fig3_memory", flags);

  {
    TimeShareOptions options = TsotaOptions();
    options.num_gpus = 2;
    options.gpu_memory = flags.GpuMemory();
    options.epochs = 1;
    options.seed = flags.seed;
    TimeShareRunner runner(pa, workload, options);
    const RunReport report = runner.Run();
    std::printf("cache ratio under time sharing: %s%s\n\n",
                FmtPercent(report.cache_ratio).c_str(), report.oom ? " (OOM)" : "");
    PrintDevices("Time sharing (T_SOTA): every GPU carries the full stack",
                 runner.devices(), 2);
    report_builder.Add("fig3.timeshare.cache_ratio", report.cache_ratio * 100.0, "%");
    report_builder.Add("fig3.timeshare.gpu0_cache_bytes",
                       static_cast<double>(runner.devices()[0].used(MemoryKind::kFeatureCache)),
                       "bytes", BetterDirection::kHigher);
  }
  {
    EngineOptions options;
    options.num_gpus = 2;
    options.num_samplers = 1;
    options.gpu_memory = flags.GpuMemory();
    options.epochs = 1;
    options.seed = flags.seed;
    Engine engine(pa, workload, options);
    const RunReport report = engine.Run();
    std::printf("cache ratio under space sharing: %s (standby cache %s)%s\n\n",
                FmtPercent(report.cache_ratio).c_str(),
                FmtPercent(report.standby_cache_ratio).c_str(), report.oom ? " (OOM)" : "");
    PrintDevices("Space sharing (GNNLab): gpu0 = Sampler, gpu1 = Trainer", engine.devices(),
                 2);
    report_builder.Add("fig3.space.cache_ratio", report.cache_ratio * 100.0, "%");
    report_builder.Add("fig3.space.standby_cache_ratio",
                       report.standby_cache_ratio * 100.0, "%");
    report_builder.Add("fig3.space.trainer_cache_bytes",
                       static_cast<double>(engine.devices()[1].used(MemoryKind::kFeatureCache)),
                       "bytes", BetterDirection::kHigher);
  }
  std::printf(
      "Paper shape: space sharing roughly triples the feature-cache budget on\n"
      "Trainer GPUs by evicting topology and the sampler workspace.\n");
  return FinishBench(report_builder, flags);
}
