// Figure 5: transferred data of the Degree policy vs the Optimal oracle as
// the cache ratio grows, for (a) the OGB-Papers stand-in with uniform 3-hop
// sampling and (b) the Twitter stand-in with weighted 3-hop sampling. These
// are the two regimes where the degree heuristic's assumptions break
// (paper §3 "Efficiency").
#include "bench/bench_common.h"
#include "cache/cache_policy.h"
#include "cache/feature_cache.h"
#include "core/workload.h"
#include "report/table.h"

using namespace gnnlab;  // NOLINT

namespace {

Footprint RecordEpoch(const Workload& workload, const Dataset& ds, const EdgeWeights* weights,
                      std::uint64_t seed) {
  Footprint fp(ds.graph.num_vertices());
  auto sampler = MakeSampler(workload, ds, weights);
  Rng shuffle(seed);
  Rng rng(seed ^ 0x5bd1e995u);
  EpochBatches batches(ds.train_set, ds.batch_size, &shuffle);
  while (batches.HasNext()) {
    fp.Accumulate(sampler->Sample(batches.NextBatch(), &rng, nullptr));
  }
  return fp;
}

void SweepCase(const char* title, const char* slug, const Workload& workload,
               const Dataset& ds, const EdgeWeights* weights, std::uint64_t seed,
               BenchReportBuilder* report_builder) {
  std::printf("%s\n", title);
  CachePolicyContext context;
  context.graph = &ds.graph;
  context.train_set = &ds.train_set;
  context.batch_size = ds.batch_size;
  context.seed = seed;
  const std::vector<VertexId> degree_rank = MakeDegreePolicy()->Rank(context);
  // The oracle ranks by the footprint of the exact epoch we then measure.
  auto oracle = MakeOptimalOracle(RecordEpoch(workload, ds, weights, seed));
  const std::vector<VertexId> optimal_rank = oracle->Rank(context);

  TablePrinter table({"cache ratio", "Degree bytes", "Optimal bytes", "Degree/Optimal"});
  for (const double ratio : {0.01, 0.03, 0.05, 0.07, 0.10, 0.20, 0.30}) {
    ByteCount bytes[2];
    const std::vector<VertexId>* ranks[2] = {&degree_rank, &optimal_rank};
    for (int i = 0; i < 2; ++i) {
      const FeatureCache cache =
          FeatureCache::Load(*ranks[i], ratio, ds.graph.num_vertices(), ds.feature_dim);
      auto sampler = MakeSampler(workload, ds, weights);
      bytes[i] = MeasureEpochExtraction(sampler.get(), ds.train_set, ds.batch_size, cache,
                                        ds.feature_dim, seed)
                     .bytes_from_host;
    }
    const std::string gap =
        bytes[1] > 0
            ? Fmt(static_cast<double>(bytes[0]) / static_cast<double>(bytes[1]), 1) + "x"
            : "-";
    table.AddRow({FmtPercent(ratio), FormatBytes(bytes[0]), FormatBytes(bytes[1]), gap});
    if (bytes[1] > 0) {
      // The Degree/Optimal byte ratio: smaller means the heuristic is closer
      // to the oracle, so lower is better despite the "x" unit.
      report_builder->Add("fig5." + std::string(slug) + ".r" +
                              std::to_string(static_cast<int>(ratio * 100.0)) + ".gap",
                          static_cast<double>(bytes[0]) / static_cast<double>(bytes[1]),
                          "x", BetterDirection::kLower);
    }
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBenchHeader("Figure 5: Degree vs Optimal transferred data", flags);

  BenchReportBuilder report_builder = MakeBenchReportBuilder("fig5_policy_gap", flags);
  const Dataset& pa = GetDataset(DatasetId::kPapers, flags);
  SweepCase("(a) PA (citation, low skew), uniform 3-hop sampling", "pa_uniform",
            StandardWorkload(GnnModelKind::kGcn), pa, nullptr, flags.seed,
            &report_builder);

  const Dataset& tw = GetDataset(DatasetId::kTwitter, flags);
  const EdgeWeights weights = tw.MakeWeights();
  SweepCase("(b) TW (power-law), weighted 3-hop sampling", "tw_weighted",
            WeightedGcnWorkload(), tw, &weights, flags.seed, &report_builder);

  std::printf(
      "Paper shape: Degree transfers many times the Optimal bytes at small\n"
      "ratios on the low-skew graph, and stays well above Optimal even on the\n"
      "power-law graph once sampling is weighted.\n");
  return FinishBench(report_builder, flags);
}
