// Cost of the telemetry hooks, measured two ways.
//
// 1. Raw op costs: ns per counter increment, gauge set, histogram record,
//    tracer span, flow step, and flight-recorder event — the primitives
//    every instrumented hot path pays.
// 2. End-to-end overhead: the Extract gather (the busiest instrumented
//    path) timed four ways — registry unbound, registry bound, registry
//    bound plus per-call flow-id tagging (the FlowTracer step the engines
//    record per minibatch extract), and the latter plus a flight-recorder
//    event (the full per-stage hook set the engines run). The run FAILS if
//    any instrumented path is more than 5% slower than unbound (best-of-N
//    trials, so scheduler noise does not decide the verdict). With
//    GNNLAB_OBS=OFF the hooks are compiled out entirely and all paths are
//    the same machine code, so the measured delta is pure noise (~0%).
//
// Flags: shared bench flags (--repeats/--json/...) plus
//        --rows=<n> --dim=<n> --trials=<n> --ops=<n>
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "feature/extractor.h"
#include "feature/feature_store.h"
#include "obs/flight_recorder.h"
#include "obs/flow.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sampling/sample_block.h"

namespace gnnlab {
namespace {

// Workload-shape knobs layered on top of the shared BenchFlags.
struct Flags {
  std::size_t rows = 100000;
  std::uint32_t dim = 64;
  std::size_t repeats = 10;
  std::size_t trials = 5;
  std::size_t ops = 2000000;  // Iterations for the raw-op loops.
};

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

template <typename Fn>
double NsPerOp(std::size_t ops, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < ops; ++i) {
    fn(i);
  }
  return Seconds(start, std::chrono::steady_clock::now()) * 1e9 /
         static_cast<double>(ops);
}

}  // namespace

int Main(int argc, char** argv) {
  Flags flags;
  const BenchFlags bench_flags = ParseBenchFlags(
      argc, argv,
      [&](const char* arg) {
        if (std::strncmp(arg, "--rows=", 7) == 0) {
          flags.rows = static_cast<std::size_t>(RequireIntFlag("--rows", arg + 7));
          return true;
        }
        if (std::strncmp(arg, "--dim=", 6) == 0) {
          flags.dim = static_cast<std::uint32_t>(RequireIntFlag("--dim", arg + 6));
          return true;
        }
        if (std::strncmp(arg, "--trials=", 9) == 0) {
          flags.trials = static_cast<std::size_t>(RequireIntFlag("--trials", arg + 9));
          return true;
        }
        if (std::strncmp(arg, "--ops=", 6) == 0) {
          flags.ops = static_cast<std::size_t>(RequireIntFlag("--ops", arg + 6));
          return true;
        }
        return false;
      },
      "--rows=<n> --dim=<n> --trials=<n> --ops=<n>");
  // The gather is timed over many repetitions per trial; the shared
  // --repeats default (1) is too short to time, so this bench floors it.
  flags.repeats = std::max<std::size_t>(bench_flags.repeats, 10);

  BenchReportBuilder report_builder = MakeBenchReportBuilder("micro_obs", bench_flags);
  report_builder.SetConfig("rows", static_cast<std::uint64_t>(flags.rows));
  report_builder.SetConfig("dim", static_cast<std::uint64_t>(flags.dim));
  report_builder.SetConfig("trials", static_cast<std::uint64_t>(flags.trials));
  report_builder.SetConfig("ops", static_cast<std::uint64_t>(flags.ops));
  // NOT a config key: benchdiff refuses to compare runs whose configs
  // differ, and the whole point of the OBS=OFF CI lane is comparing the
  // same workload with the hooks compiled out. Recorded as extra context.
  report_builder.SetExtraJson(std::string("{\"obs_enabled\":") +
                              (GNNLAB_OBS_ENABLED ? "true" : "false") + "}");

  std::printf("=== micro_obs: telemetry hook cost ===\n");
  std::printf("observability compiled %s\n\n", GNNLAB_OBS_ENABLED ? "IN" : "OUT");

  // --- raw primitive costs --------------------------------------------------
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("bench.counter");
  Gauge* gauge = registry.GetGauge("bench.gauge");
  Histogram* histogram = registry.GetHistogram("bench.histogram");
  // ns/op is a rate on the wall clock; record as wall series (kLower via
  // the "s" unit family would be wrong — use explicit direction on "ns").
  auto add_op = [&](const char* label, const char* series, double ns) {
    std::printf("%-28s %10.1f ns/op\n", label, ns);
    report_builder.AddWall(series, ns, "ns", BetterDirection::kLower);
  };
  add_op("counter increment", "uobs.counter_ns",
         NsPerOp(flags.ops, [&](std::size_t) { counter->Increment(); }));
  add_op("gauge set", "uobs.gauge_ns", NsPerOp(flags.ops, [&](std::size_t i) {
           gauge->Set(static_cast<double>(i));
         }));
  add_op("histogram record", "uobs.histogram_ns",
         NsPerOp(flags.ops, [&](std::size_t i) {
           histogram->Record(1e-6 * static_cast<double>(i % 4096));
         }));
  {
    RuntimeTracer tracer;
    const std::size_t span_ops = std::min<std::size_t>(flags.ops, 200000);
    const double ns = NsPerOp(span_ops, [&](std::size_t i) {
      const double t = 1e-6 * static_cast<double>(i);
      tracer.Record("bench", "span", "sample", t, t + 1e-6);
    });
    std::printf("%-28s %10.1f ns/op  (%zu spans)\n", "tracer record", ns, tracer.size());
    report_builder.AddWall("uobs.tracer_ns", ns, "ns", BetterDirection::kLower);
  }
  {
    FlowTracer flows;
    const std::size_t flow_ops = std::min<std::size_t>(flags.ops, 200000);
    const double ns = NsPerOp(flow_ops, [&](std::size_t i) {
      const double t = 1e-6 * static_cast<double>(i);
      flows.Record(MakeFlowId(0, i), "bench", "extract", t, t + 1e-6, 1e-7);
    });
    std::printf("%-28s %10.1f ns/op  (%zu steps)\n", "flow step record", ns, flows.size());
    report_builder.AddWall("uobs.flow_ns", ns, "ns", BetterDirection::kLower);
  }
  {
    // Flight-recorder event: one lock-free seqlock write into the calling
    // thread's ring. A private recorder keeps the bench out of Global().
    FlightRecorder recorder(/*capacity=*/2048);
    const std::size_t fr_ops = std::min<std::size_t>(flags.ops, 2000000);
    const double ns = NsPerOp(fr_ops, [&](std::size_t i) {
      recorder.Record(FlightEventKind::kStage, "extract",
                      static_cast<double>(i), static_cast<double>(i) + 1e-6,
                      "bench");
    });
    std::printf("%-28s %10.1f ns/op  (%llu recorded)\n", "flight recorder event", ns,
                static_cast<unsigned long long>(recorder.total_recorded()));
    report_builder.AddWall("uobs.flight_ns", ns, "ns", BetterDirection::kLower);
  }

  // --- end-to-end: instrumented Extract, bound vs unbound -------------------
  Rng rng(42);
  const VertexId num_vertices = static_cast<VertexId>(2 * flags.rows);
  const FeatureStore store = FeatureStore::Random(num_vertices, flags.dim, &rng);
  std::vector<VertexId> seeds(flags.rows);
  for (std::size_t i = 0; i < flags.rows; ++i) {
    seeds[i] = static_cast<VertexId>(i * 2);
  }
  for (std::size_t i = flags.rows; i > 1; --i) {  // Fisher-Yates permute.
    std::swap(seeds[i - 1], seeds[rng.NextBounded(i)]);
  }
  RemapScratch scratch(num_vertices);
  SampleBlockBuilder builder(&scratch);
  builder.Begin(seeds);
  const SampleBlock block = builder.Finish();

  std::vector<float> out;
  // One timed pass (all repeats) for a plain extractor.
  auto timed_pass = [&](Extractor* extractor) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < flags.repeats; ++r) {
      extractor->Extract(block, &out);
    }
    return Seconds(start, std::chrono::steady_clock::now());
  };

  Extractor unbound(store, nullptr);
  Extractor bound(store, nullptr);
  MetricRegistry extract_registry;
  bound.BindMetrics(&extract_registry);

  // Third config: registry bound AND per-call flow tagging — exactly what
  // the engines pay per minibatch extract (MakeFlowId + one FlowStep with
  // the cache-miss stall annotation), gated the same way.
  Extractor tagged(store, nullptr);
  MetricRegistry tagged_registry;
  tagged.BindMetrics(&tagged_registry);
  FlowTracer extract_flows;
  auto timed_tagged_pass = [&](std::size_t trial) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < flags.repeats; ++r) {
      GNNLAB_OBS_ONLY(const auto begin = std::chrono::steady_clock::now();)
      const ExtractStats stats = tagged.Extract(block, &out);
      GNNLAB_OBS_ONLY({
        const auto end = std::chrono::steady_clock::now();
        const double b = std::chrono::duration<double>(begin.time_since_epoch()).count();
        const double e = std::chrono::duration<double>(end.time_since_epoch()).count();
        extract_flows.Record(MakeFlowId(trial, r), "bench/extract", "extract", b, e,
                             (e - b) * stats.HostByteFraction());
      })
      (void)stats;
    }
    return Seconds(start, std::chrono::steady_clock::now());
  };

  // Fourth config: the full per-stage hook set — registry bound, flow
  // tagging, AND one flight-recorder event per extract, exactly what
  // RecordExtractCompletion costs the engines with the recorder wired in.
  Extractor full(store, nullptr);
  MetricRegistry full_registry;
  full.BindMetrics(&full_registry);
  FlowTracer full_flows;
  FlightRecorder full_recorder(/*capacity=*/2048);
  auto timed_full_pass = [&](std::size_t trial) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < flags.repeats; ++r) {
      GNNLAB_OBS_ONLY(const auto begin = std::chrono::steady_clock::now();)
      const ExtractStats stats = full.Extract(block, &out);
      GNNLAB_OBS_ONLY({
        const auto end = std::chrono::steady_clock::now();
        const double b = std::chrono::duration<double>(begin.time_since_epoch()).count();
        const double e = std::chrono::duration<double>(end.time_since_epoch()).count();
        full_flows.Record(MakeFlowId(trial, r), "bench/extract", "extract", b, e,
                          (e - b) * stats.HostByteFraction());
        full_recorder.Record(FlightEventKind::kStage, "extract", b, e, "bench/extract");
      })
      (void)stats;
    }
    return Seconds(start, std::chrono::steady_clock::now());
  };

  // Warm every path once, then interleave the trials round-robin: slow
  // drift (CPU frequency, competing load) hits all four configs equally
  // instead of biasing whichever phase ran last, and best-of-N keeps
  // scheduler spikes out of the verdict.
  (void)timed_pass(&unbound);
  (void)timed_pass(&bound);
  (void)timed_tagged_pass(0);
  (void)timed_full_pass(0);
  double unbound_best = std::numeric_limits<double>::infinity();
  double bound_best = std::numeric_limits<double>::infinity();
  double flow_best = std::numeric_limits<double>::infinity();
  double full_best = std::numeric_limits<double>::infinity();
  for (std::size_t t = 0; t < flags.trials; ++t) {
    unbound_best = std::min(unbound_best, timed_pass(&unbound));
    bound_best = std::min(bound_best, timed_pass(&bound));
    flow_best = std::min(flow_best, timed_tagged_pass(t + 1));
    full_best = std::min(full_best, timed_full_pass(t + 1));
  }
  const double overhead = (bound_best - unbound_best) / unbound_best;
  const double flow_overhead = (flow_best - unbound_best) / unbound_best;
  const double full_overhead = (full_best - unbound_best) / unbound_best;

  std::printf("\nextract %zu rows x %u dims x %zu repeats (best of %zu trials)\n",
              flags.rows, flags.dim, flags.repeats, flags.trials);
  std::printf("  unbound registry:     %9.4f s\n", unbound_best);
  std::printf("  bound registry:       %9.4f s  (%+.2f%%)\n", bound_best, overhead * 100.0);
  std::printf("  bound + flow tagging: %9.4f s  (%+.2f%%)  [%zu flow steps]\n", flow_best,
              flow_overhead * 100.0, extract_flows.size());
  std::printf("  bound + flow + flight: %8.4f s  (%+.2f%%)  [%llu flight events]\n",
              full_best, full_overhead * 100.0,
              static_cast<unsigned long long>(full_recorder.total_recorded()));
  std::printf("  budget: 5%% over unbound for every instrumented config\n");

  report_builder.AddWall("uobs.extract_unbound_s", unbound_best, "s");
  report_builder.AddWall("uobs.extract_bound_s", bound_best, "s");
  report_builder.AddWall("uobs.extract_flow_s", flow_best, "s");
  report_builder.AddWall("uobs.extract_full_s", full_best, "s");
  // Overhead is a lower-is-better percentage ("%"'s unit default is the
  // other way around, so the direction is explicit).
  report_builder.AddWall("uobs.bound_overhead_pct", overhead * 100.0, "%",
                         BetterDirection::kLower);
  report_builder.AddWall("uobs.flow_overhead_pct", flow_overhead * 100.0, "%",
                         BetterDirection::kLower);
  report_builder.AddWall("uobs.full_overhead_pct", full_overhead * 100.0, "%",
                         BetterDirection::kLower);

  if (overhead > 0.05) {
    std::fprintf(stderr, "FAIL: telemetry hooks cost more than 5%% on the extract path\n");
    FinishBench(report_builder, bench_flags);
    return 1;
  }
  if (flow_overhead > 0.05) {
    std::fprintf(stderr,
                 "FAIL: flow-id tagging costs more than 5%% on the extract path\n");
    FinishBench(report_builder, bench_flags);
    return 1;
  }
  if (full_overhead > 0.05) {
    std::fprintf(stderr,
                 "FAIL: flight-recorder hook costs more than 5%% on the extract path\n");
    FinishBench(report_builder, bench_flags);
    return 1;
  }
  std::printf("PASS: telemetry + flow + flight hooks stay under the 5%% budget%s\n",
              GNNLAB_OBS_ENABLED ? "" : " (compiled out: delta is pure noise)");
  return FinishBench(report_builder, bench_flags);
}

}  // namespace gnnlab

int main(int argc, char** argv) { return gnnlab::Main(argc, argv); }
