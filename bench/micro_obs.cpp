// Cost of the telemetry hooks, measured two ways.
//
// 1. Raw op costs: ns per counter increment, gauge set, histogram record,
//    and tracer span — the primitives every instrumented hot path pays.
// 2. End-to-end overhead: the Extract gather (the busiest instrumented
//    path) timed three ways — registry unbound, registry bound, and
//    registry bound plus per-call flow-id tagging (the FlowTracer step the
//    engines record per minibatch extract). The run FAILS if either
//    instrumented path is more than 5% slower than unbound (best-of-N
//    trials, so scheduler noise does not decide the verdict). With
//    GNNLAB_OBS=OFF the hooks are compiled out entirely and all paths are
//    the same machine code, so the measured delta is pure noise (~0%).
//
// Flags: --rows=<n> --dim=<n> --repeats=<n> --trials=<n> --ops=<n>
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "feature/extractor.h"
#include "feature/feature_store.h"
#include "obs/flow.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sampling/sample_block.h"

namespace gnnlab {
namespace {

struct Flags {
  std::size_t rows = 100000;
  std::uint32_t dim = 64;
  std::size_t repeats = 10;
  std::size_t trials = 5;
  std::size_t ops = 2000000;  // Iterations for the raw-op loops.
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--rows=", 7) == 0) {
      flags.rows = static_cast<std::size_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--dim=", 6) == 0) {
      flags.dim = static_cast<std::uint32_t>(std::atoi(arg + 6));
    } else if (std::strncmp(arg, "--repeats=", 10) == 0) {
      flags.repeats = static_cast<std::size_t>(std::atoll(arg + 10));
    } else if (std::strncmp(arg, "--trials=", 9) == 0) {
      flags.trials = static_cast<std::size_t>(std::atoll(arg + 9));
    } else if (std::strncmp(arg, "--ops=", 6) == 0) {
      flags.ops = static_cast<std::size_t>(std::atoll(arg + 6));
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf("flags: --rows=<n> --dim=<n> --repeats=<n> --trials=<n> --ops=<n>\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      std::exit(2);
    }
  }
  return flags;
}

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

template <typename Fn>
double NsPerOp(std::size_t ops, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < ops; ++i) {
    fn(i);
  }
  return Seconds(start, std::chrono::steady_clock::now()) * 1e9 /
         static_cast<double>(ops);
}

}  // namespace

int Main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  std::printf("=== micro_obs: telemetry hook cost ===\n");
  std::printf("observability compiled %s\n\n", GNNLAB_OBS_ENABLED ? "IN" : "OUT");

  // --- raw primitive costs --------------------------------------------------
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("bench.counter");
  Gauge* gauge = registry.GetGauge("bench.gauge");
  Histogram* histogram = registry.GetHistogram("bench.histogram");
  std::printf("%-28s %10.1f ns/op\n", "counter increment",
              NsPerOp(flags.ops, [&](std::size_t) { counter->Increment(); }));
  std::printf("%-28s %10.1f ns/op\n", "gauge set",
              NsPerOp(flags.ops, [&](std::size_t i) {
                gauge->Set(static_cast<double>(i));
              }));
  std::printf("%-28s %10.1f ns/op\n", "histogram record",
              NsPerOp(flags.ops, [&](std::size_t i) {
                histogram->Record(1e-6 * static_cast<double>(i % 4096));
              }));
  {
    RuntimeTracer tracer;
    const std::size_t span_ops = std::min<std::size_t>(flags.ops, 200000);
    const double ns = NsPerOp(span_ops, [&](std::size_t i) {
      const double t = 1e-6 * static_cast<double>(i);
      tracer.Record("bench", "span", "sample", t, t + 1e-6);
    });
    std::printf("%-28s %10.1f ns/op  (%zu spans)\n", "tracer record", ns, tracer.size());
  }
  {
    FlowTracer flows;
    const std::size_t flow_ops = std::min<std::size_t>(flags.ops, 200000);
    const double ns = NsPerOp(flow_ops, [&](std::size_t i) {
      const double t = 1e-6 * static_cast<double>(i);
      flows.Record(MakeFlowId(0, i), "bench", "extract", t, t + 1e-6, 1e-7);
    });
    std::printf("%-28s %10.1f ns/op  (%zu steps)\n", "flow step record", ns, flows.size());
  }

  // --- end-to-end: instrumented Extract, bound vs unbound -------------------
  Rng rng(42);
  const VertexId num_vertices = static_cast<VertexId>(2 * flags.rows);
  const FeatureStore store = FeatureStore::Random(num_vertices, flags.dim, &rng);
  std::vector<VertexId> seeds(flags.rows);
  for (std::size_t i = 0; i < flags.rows; ++i) {
    seeds[i] = static_cast<VertexId>(i * 2);
  }
  for (std::size_t i = flags.rows; i > 1; --i) {  // Fisher-Yates permute.
    std::swap(seeds[i - 1], seeds[rng.NextBounded(i)]);
  }
  RemapScratch scratch(num_vertices);
  SampleBlockBuilder builder(&scratch);
  builder.Begin(seeds);
  const SampleBlock block = builder.Finish();

  std::vector<float> out;
  // One timed pass (all repeats) for a plain extractor.
  auto timed_pass = [&](Extractor* extractor) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < flags.repeats; ++r) {
      extractor->Extract(block, &out);
    }
    return Seconds(start, std::chrono::steady_clock::now());
  };

  Extractor unbound(store, nullptr);
  Extractor bound(store, nullptr);
  MetricRegistry extract_registry;
  bound.BindMetrics(&extract_registry);

  // Third config: registry bound AND per-call flow tagging — exactly what
  // the engines pay per minibatch extract (MakeFlowId + one FlowStep with
  // the cache-miss stall annotation), gated the same way.
  Extractor tagged(store, nullptr);
  MetricRegistry tagged_registry;
  tagged.BindMetrics(&tagged_registry);
  FlowTracer extract_flows;
  auto timed_tagged_pass = [&](std::size_t trial) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < flags.repeats; ++r) {
      GNNLAB_OBS_ONLY(const auto begin = std::chrono::steady_clock::now();)
      const ExtractStats stats = tagged.Extract(block, &out);
      GNNLAB_OBS_ONLY({
        const auto end = std::chrono::steady_clock::now();
        const double b = std::chrono::duration<double>(begin.time_since_epoch()).count();
        const double e = std::chrono::duration<double>(end.time_since_epoch()).count();
        extract_flows.Record(MakeFlowId(trial, r), "bench/extract", "extract", b, e,
                             (e - b) * stats.HostByteFraction());
      })
      (void)stats;
    }
    return Seconds(start, std::chrono::steady_clock::now());
  };

  // Warm every path once, then interleave the trials round-robin: slow
  // drift (CPU frequency, competing load) hits all three configs equally
  // instead of biasing whichever phase ran last, and best-of-N keeps
  // scheduler spikes out of the verdict.
  (void)timed_pass(&unbound);
  (void)timed_pass(&bound);
  (void)timed_tagged_pass(0);
  double unbound_best = std::numeric_limits<double>::infinity();
  double bound_best = std::numeric_limits<double>::infinity();
  double flow_best = std::numeric_limits<double>::infinity();
  for (std::size_t t = 0; t < flags.trials; ++t) {
    unbound_best = std::min(unbound_best, timed_pass(&unbound));
    bound_best = std::min(bound_best, timed_pass(&bound));
    flow_best = std::min(flow_best, timed_tagged_pass(t + 1));
  }
  const double overhead = (bound_best - unbound_best) / unbound_best;
  const double flow_overhead = (flow_best - unbound_best) / unbound_best;

  std::printf("\nextract %zu rows x %u dims x %zu repeats (best of %zu trials)\n",
              flags.rows, flags.dim, flags.repeats, flags.trials);
  std::printf("  unbound registry:     %9.4f s\n", unbound_best);
  std::printf("  bound registry:       %9.4f s  (%+.2f%%)\n", bound_best, overhead * 100.0);
  std::printf("  bound + flow tagging: %9.4f s  (%+.2f%%)  [%zu flow steps]\n", flow_best,
              flow_overhead * 100.0, extract_flows.size());
  std::printf("  budget: 5%% over unbound for every instrumented config\n");

  if (overhead > 0.05) {
    std::fprintf(stderr, "FAIL: telemetry hooks cost more than 5%% on the extract path\n");
    return 1;
  }
  if (flow_overhead > 0.05) {
    std::fprintf(stderr,
                 "FAIL: flow-id tagging costs more than 5%% on the extract path\n");
    return 1;
  }
  std::printf("PASS: telemetry + flow hooks stay under the 5%% budget%s\n",
              GNNLAB_OBS_ENABLED ? "" : " (compiled out: delta is pure noise)");
  return 0;
}

}  // namespace gnnlab

int main(int argc, char** argv) { return gnnlab::Main(argc, argv); }
