// Figure 17: dynamic executor switching.
//  (a) PinSAGE on the OGB-Papers stand-in with ONE Sampler and a growing
//      number of Trainers, with and without dynamic switching (the
//      Train:Sample ratio K ~ 10 makes the lone Sampler GPU idle unless its
//      standby Trainer helps).
//  (b) Single-GPU epoch time for DGL, T_SOTA and GNNLab (switching's
//      degenerate case: sample a whole epoch, then train it).
#include "baselines/timeshare_runner.h"
#include "bench/bench_common.h"
#include "core/engine.h"
#include "report/table.h"

using namespace gnnlab;  // NOLINT

namespace {

std::string GnnlabCell(const Dataset& ds, const Workload& workload, int gpus, int samplers,
                       bool switching, const BenchFlags& flags, std::size_t* switched,
                       BenchReportBuilder* report_builder, const std::string& series) {
  EngineOptions options;
  options.num_gpus = gpus;
  options.num_samplers = samplers;
  options.dynamic_switching = switching;
  options.gpu_memory = flags.GpuMemory();
  options.epochs = flags.epochs;
  options.seed = flags.seed;
  Engine engine(ds, workload, options);
  const RunReport report = engine.Run();
  if (report.oom) {
    return "OOM";
  }
  if (switched != nullptr) {
    *switched = report.epochs.back().switched_batches;
  }
  if (report_builder != nullptr) {
    report_builder->Add(series, report.AvgEpochTime());
  }
  return Fmt(report.AvgEpochTime());
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBenchHeader("Figure 17: dynamic switching and the single-GPU mode", flags);
  BenchReportBuilder report_builder = MakeBenchReportBuilder("fig17_switching", flags);

  // (a) PinSAGE on PA, 1 Sampler + n Trainers, switching on/off.
  {
    const Dataset& pa = GetDataset(DatasetId::kPapers, flags);
    const Workload workload = StandardWorkload(GnnModelKind::kPinSage);
    std::printf("(a) PinSAGE on PA, 1 Sampler + n Trainers\n");
    TablePrinter table({"Trainers", "w/o DS", "w/ DS", "switched batches", "speedup"});
    for (int trainers = 1; trainers <= 7; ++trainers) {
      std::size_t switched = 0;
      const std::string prefix = "fig17a.t" + std::to_string(trainers);
      const std::string without = GnnlabCell(pa, workload, 1 + trainers, 1, false, flags,
                                             nullptr, &report_builder,
                                             prefix + ".no_switch.epoch_s");
      const std::string with = GnnlabCell(pa, workload, 1 + trainers, 1, true, flags,
                                          &switched, &report_builder,
                                          prefix + ".switch.epoch_s");
      std::string speedup = "-";
      if (without != "OOM" && with != "OOM") {
        speedup = Fmt(std::atof(without.c_str()) / std::atof(with.c_str()), 2) + "x";
      }
      table.AddRow({std::to_string(trainers), without, with, std::to_string(switched),
                    speedup});
    }
    table.Print();
    std::printf("\n");
  }

  // (b) Single GPU across systems and datasets (GCN).
  {
    const Workload workload = StandardWorkload(GnnModelKind::kGcn);
    std::printf("(b) single-GPU epoch time (GCN)\n");
    TablePrinter table({"Dataset", "DGL", "T_SOTA", "GNNLab"});
    for (const DatasetId id : kAllDatasets) {
      const Dataset& ds = GetDataset(id, flags);
      auto timeshare = [&](const TimeShareOptions& base,
                           const std::string& series) -> std::string {
        TimeShareOptions options = base;
        options.num_gpus = 1;
        options.gpu_memory = flags.GpuMemory();
        options.epochs = flags.epochs;
        options.seed = flags.seed;
        TimeShareRunner runner(ds, workload, options);
        const RunReport report = runner.Run();
        if (report.oom) {
          return "OOM";
        }
        report_builder.Add(series, report.AvgEpochTime());
        return Fmt(report.AvgEpochTime());
      };
      const std::string prefix = std::string("fig17b.") + ds.name;
      table.AddRow({ds.name, timeshare(DglOptions(), prefix + ".dgl.epoch_s"),
                    timeshare(TsotaOptions(), prefix + ".tsota.epoch_s"),
                    GnnlabCell(ds, workload, 1, 1, true, flags, nullptr, &report_builder,
                               prefix + ".gnnlab.epoch_s")});
    }
    table.Print();
  }
  std::printf(
      "\nPaper shape: with few Trainers the standby Trainer shortens skewed\n"
      "epochs substantially, fading as Trainers multiply; on a single GPU\n"
      "GNNLab beats DGL (up to ~7.7x) and T_SOTA (up to ~2x) everywhere except\n"
      "PR, where all data already fits in one GPU.\n");
  return FinishBench(report_builder, flags);
}
