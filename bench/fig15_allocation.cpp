// Figure 15: epoch time (and stage busy times) for every mS + nT
// allocation of up to 8 GPUs for GCN on the OGB-Papers stand-in,
// demonstrating that the flexible-scheduling formula picks the optimum.
#include "bench/bench_common.h"
#include "core/engine.h"
#include "report/table.h"

using namespace gnnlab;  // NOLINT

int main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBenchHeader("Figure 15: epoch time per mS/nT allocation (GCN on PA)", flags);

  const Dataset& pa = GetDataset(DatasetId::kPapers, flags);
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  BenchReportBuilder report_builder = MakeBenchReportBuilder("fig15_allocation", flags);

  double best_time = 0.0;
  std::string best_name;
  TablePrinter table({"alloc", "epoch(s)", "sample busy(s)", "extract busy(s)",
                      "train busy(s)"});
  for (int samplers = 1; samplers <= 3; ++samplers) {
    table.AddSeparator();
    for (int trainers = 1; trainers + samplers <= 8; ++trainers) {
      EngineOptions options;
      options.num_gpus = samplers + trainers;
      options.num_samplers = samplers;
      options.dynamic_switching = false;
      options.gpu_memory = flags.GpuMemory();
      options.epochs = flags.epochs;
      options.seed = flags.seed;
      Engine engine(pa, workload, options);
      const RunReport report = engine.Run();
      const std::string name = std::to_string(samplers) + "S" + std::to_string(trainers) + "T";
      if (report.oom) {
        table.AddRow({name, "OOM", "-", "-", "-"});
        continue;
      }
      const StageBreakdown stage = report.AvgStage();
      const double epoch = report.AvgEpochTime();
      table.AddRow({name, Fmt(epoch, 3), Fmt(stage.SampleTotal(), 3),
                    Fmt(stage.extract, 3), Fmt(stage.train, 3)});
      report_builder.Add("fig15." + name + ".epoch_s", epoch);
      if (samplers + trainers == 8 && (best_name.empty() || epoch < best_time)) {
        best_time = epoch;
        best_name = name;
      }
    }
  }
  table.Print();

  // What does the scheduler itself pick with all 8 GPUs?
  EngineOptions options;
  options.num_gpus = 8;
  options.dynamic_switching = false;
  options.gpu_memory = flags.GpuMemory();
  options.epochs = flags.epochs;
  options.seed = flags.seed;
  Engine engine(pa, workload, options);
  const RunReport report = engine.Run();
  std::printf("\nbest 8-GPU allocation swept: %s (%.3fs)\n", best_name.c_str(), best_time);
  std::printf("flexible scheduling chose:  %dS%dT (K = %.2f) -> %.3fs\n",
              report.num_samplers, report.num_trainers, report.k_ratio,
              report.AvgEpochTime());
  report_builder.Add("fig15.scheduler.epoch_s", report.AvgEpochTime());
  report_builder.Add("fig15.scheduler.num_samplers",
                     static_cast<double>(report.num_samplers), "count",
                     BetterDirection::kNone);
  std::printf(
      "\nPaper shape: with m Samplers fixed, time falls as Trainers are added\n"
      "until the Samplers saturate; the formula lands on the best full-machine\n"
      "split (2S6T for GCN on PA in the paper).\n");
  return FinishBench(report_builder, flags);
}
