// Figure 10: cache hit rate of Random / Degree / PreSC#1 / Optimal at a
// fixed 10% cache ratio, across three sampling algorithms and all four
// datasets — the paper's core robustness result for PreSC (§6.3).
#include <optional>

#include "bench/bench_common.h"
#include "cache/cache_policy.h"
#include "cache/feature_cache.h"
#include "core/workload.h"
#include "report/table.h"

using namespace gnnlab;  // NOLINT

namespace {

Footprint RecordEpoch(const Workload& workload, const Dataset& ds, const EdgeWeights* weights,
                      std::uint64_t seed) {
  Footprint fp(ds.graph.num_vertices());
  auto sampler = MakeSampler(workload, ds, weights);
  Rng shuffle(seed);
  Rng rng(seed ^ 0x5bd1e995u);
  EpochBatches batches(ds.train_set, ds.batch_size, &shuffle);
  while (batches.HasNext()) {
    fp.Accumulate(sampler->Sample(batches.NextBatch(), &rng, nullptr));
  }
  return fp;
}

double HitRate(const Workload& workload, const Dataset& ds, const EdgeWeights* weights,
               const std::vector<VertexId>& ranked, double ratio, std::uint64_t seed) {
  const FeatureCache cache =
      FeatureCache::Load(ranked, ratio, ds.graph.num_vertices(), ds.feature_dim);
  auto sampler = MakeSampler(workload, ds, weights);
  return MeasureEpochExtraction(sampler.get(), ds.train_set, ds.batch_size, cache,
                                ds.feature_dim, seed)
      .HitRate();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBenchHeader("Figure 10: hit rate per caching policy, cache ratio 10%", flags);

  struct AlgoSpec {
    const char* name;
    const char* slug;
    Workload workload;
  };
  const AlgoSpec algos[] = {
      {"3-hop random", "khop", StandardWorkload(GnnModelKind::kGcn)},
      {"Random walks", "rw", StandardWorkload(GnnModelKind::kPinSage)},
      {"3-hop weighted", "wkhop", WeightedGcnWorkload()},
  };
  constexpr double kRatio = 0.10;
  BenchReportBuilder report_builder = MakeBenchReportBuilder("fig10_hitrate", flags);
  report_builder.SetConfig("cache_ratio", kRatio);

  for (const AlgoSpec& algo : algos) {
    std::printf("%s\n", algo.name);
    TablePrinter table({"Dataset", "Random", "Degree", "PreSC#1", "Optimal"});
    for (const DatasetId id : kAllDatasets) {
      const Dataset& ds = GetDataset(id, flags);
      std::optional<EdgeWeights> weights;
      if (algo.workload.sampling == SamplingAlgorithm::kKhopWeighted) {
        weights.emplace(ds.MakeWeights());
      }
      const EdgeWeights* w = weights ? &*weights : nullptr;

      CachePolicyContext context;
      context.graph = &ds.graph;
      context.train_set = &ds.train_set;
      context.batch_size = ds.batch_size;
      context.seed = flags.seed;
      context.sampler_factory = [&ds, &algo, w] { return MakeSampler(algo.workload, ds, w); };

      const std::uint64_t measure_seed = flags.seed + 1000;
      auto oracle = MakeOptimalOracle(RecordEpoch(algo.workload, ds, w, measure_seed));

      auto random = MakeRandomPolicy();
      auto degree = MakeDegreePolicy();
      auto presc = MakePreSamplingPolicy(1);
      const struct {
        const char* slug;
        CachePolicy* policy;
      } cells[] = {{"random", random.get()},
                   {"degree", degree.get()},
                   {"presc1", presc.get()},
                   {"optimal", oracle.get()}};
      std::vector<std::string> row{ds.name};
      for (const auto& cell : cells) {
        const double hit_rate =
            HitRate(algo.workload, ds, w, cell.policy->Rank(context), kRatio, measure_seed);
        row.push_back(FmtPercent(hit_rate, 1));
        report_builder.Add(std::string("fig10.") + algo.slug + "." + ds.name + "." +
                               cell.slug + ".hit_rate",
                           hit_rate * 100.0, "%");
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "Paper shape: PreSC#1 tracks Optimal within a few points in all 12 cells;\n"
      "Degree is competitive only on the power-law graph under uniform sampling\n"
      "and collapses on PA/UK and under weighted sampling.\n");
  return FinishBench(report_builder, flags);
}
