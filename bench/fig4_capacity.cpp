// Figure 4: the capacity squeeze of time sharing.
//  (a) Cache hit rate and per-epoch extract time vs cache ratio on the
//      OGB-Papers stand-in (degree cache, 3-hop uniform sampling); the two
//      marked ratios are what a GPU can afford with and without graph
//      topology resident.
//  (b) Cache hit rate and transferred data vs feature dimension for a fixed
//      cache byte budget (the paper's 5 GB on a 16 GB card).
#include "bench/bench_common.h"
#include "cache/cache_policy.h"
#include "cache/feature_cache.h"
#include "core/workload.h"
#include "report/table.h"
#include "sim/cost_model.h"

using namespace gnnlab;  // NOLINT

int main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBenchHeader("Figure 4: cache ratio & feature-dimension capacity effects", flags);

  const Dataset& pa = GetDataset(DatasetId::kPapers, flags);
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  const CostModel cost;
  BenchReportBuilder report_builder = MakeBenchReportBuilder("fig4_capacity", flags);

  CachePolicyContext context;
  context.graph = &pa.graph;
  context.train_set = &pa.train_set;
  context.batch_size = pa.batch_size;
  context.seed = flags.seed;
  const std::vector<VertexId> ranked = MakeDegreePolicy()->Rank(context);

  // (a) Sweep cache ratio.
  std::printf("(a) hit rate and extract time vs cache ratio (Degree policy)\n");
  TablePrinter table_a({"cache ratio", "hit rate", "extract/epoch(s)", "host bytes"});
  for (const double ratio : {0.0, 0.02, 0.05, 0.07, 0.10, 0.15, 0.21, 0.30, 0.50}) {
    const FeatureCache cache =
        FeatureCache::Load(ranked, ratio, pa.graph.num_vertices(), pa.feature_dim);
    auto sampler = MakeSampler(workload, pa, nullptr);
    const EpochExtractionResult result = MeasureEpochExtraction(
        sampler.get(), pa.train_set, pa.batch_size, cache, pa.feature_dim, flags.seed);
    ExtractStats stats;
    stats.distinct_vertices = result.distinct_vertices;
    stats.cache_hits = result.cache_hits;
    stats.host_misses = result.distinct_vertices - result.cache_hits;
    stats.bytes_from_host = result.bytes_from_host;
    table_a.AddRow({FmtPercent(ratio), FmtPercent(result.HitRate(), 1),
                    Fmt(cost.ExtractTime(stats, true), 3),
                    FormatBytes(result.bytes_from_host)});
    const std::string prefix = "fig4a.r" + std::to_string(static_cast<int>(ratio * 100.0));
    report_builder.Add(prefix + ".hit_rate", result.HitRate() * 100.0, "%");
    report_builder.Add(prefix + ".extract_s", cost.ExtractTime(stats, true));
  }
  table_a.Print();

  const double gpu = static_cast<double>(flags.GpuMemory());
  const double vol_f = static_cast<double>(pa.FeatureBytes());
  const double with_topo =
      (gpu * (1.0 - 0.22 - 0.08) - static_cast<double>(pa.TopologyBytes())) / vol_f;
  const double without_topo = gpu * (1.0 - 0.22) / vol_f;
  std::printf("affordable ratio with topology resident (time sharing): %s\n",
              FmtPercent(std::max(0.0, with_topo)).c_str());
  std::printf("affordable ratio without topology (space sharing):      %s\n\n",
              FmtPercent(std::min(1.0, without_topo)).c_str());

  // (b) Sweep feature dimension at a fixed cache byte budget (5/16 of GPU).
  const auto budget = static_cast<ByteCount>(gpu * 5.0 / 16.0);
  std::printf("(b) hit rate and transferred data vs feature dim (cache budget %s)\n",
              FormatBytes(budget).c_str());
  TablePrinter table_b({"feature dim", "cache ratio", "hit rate", "host bytes/epoch"});
  for (const std::uint32_t dim : {128u, 256u, 384u, 512u, 640u, 768u}) {
    const FeatureCache cache =
        FeatureCache::LoadWithBudget(ranked, budget, pa.graph.num_vertices(), dim);
    auto sampler = MakeSampler(workload, pa, nullptr);
    const EpochExtractionResult result = MeasureEpochExtraction(
        sampler.get(), pa.train_set, pa.batch_size, cache, dim, flags.seed);
    table_b.AddRow({std::to_string(dim), FmtPercent(cache.ratio()),
                    FmtPercent(result.HitRate(), 1), FormatBytes(result.bytes_from_host)});
    const std::string prefix = "fig4b.dim" + std::to_string(dim);
    report_builder.Add(prefix + ".hit_rate", result.HitRate() * 100.0, "%");
    report_builder.Add(prefix + ".host_bytes",
                       static_cast<double>(result.bytes_from_host), "bytes");
  }
  table_b.Print();
  std::printf(
      "\nPaper shape: at the time-sharing ratio the hit rate roughly halves vs the\n"
      "space-sharing ratio; growing dims shrink the ratio a fixed budget buys,\n"
      "collapsing the hit rate and inflating PCIe traffic.\n");
  return FinishBench(report_builder, flags);
}
