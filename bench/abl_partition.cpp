// Ablation (paper §8, "Partitioning-based approach"): why GNNLab keeps the
// whole topology on one Sampler GPU instead of partitioning it.
//
//  (1) Self-reliant partitions: on a power-law graph, each of 8 partitions'
//      3-hop closure covers nearly the whole vertex set ("over 95% of total
//      vertices" for Twitter in the paper) — the redundancy would devour
//      the memory a partition was supposed to save.
//  (2) Partition cycling: shuttling topology shards through GPU memory
//      costs reload bandwidth every epoch; against the one-time load of
//      the factored design it loses after a handful of epochs.
#include "bench/bench_common.h"
#include "graph/partition.h"
#include "report/table.h"
#include "sim/cost_model.h"

using namespace gnnlab;  // NOLINT

int main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBenchHeader("Ablation: partitioning vs whole-topology sampling (paper 8)", flags);

  BenchReportBuilder report_builder = MakeBenchReportBuilder("abl_partition", flags);

  // (1) Self-reliant closure redundancy, 3-hop, like GCN's sampling depth.
  std::printf("(1) self-reliant partition redundancy (3-hop closures)\n");
  TablePrinter redundancy({"Dataset", "partitions", "mean closure share", "max share"});
  for (const DatasetId id : {DatasetId::kTwitter, DatasetId::kPapers}) {
    const Dataset& ds = GetDataset(id, flags);
    for (const int parts : {2, 4, 8}) {
      const auto partitions =
          BuildSelfReliantPartitions(ds.graph, ds.train_set, parts, /*num_hops=*/3);
      double max_share = 0.0;
      for (const auto& partition : partitions) {
        max_share = std::max(max_share, partition.VertexShare(ds.graph.num_vertices()));
      }
      redundancy.AddRow({ds.name, std::to_string(parts),
                         FmtPercent(MeanClosureShare(partitions, ds.graph.num_vertices()), 1),
                         FmtPercent(max_share, 1)});
      // Closure share is overhead: the smaller a partition's replicated
      // neighborhood, the better partitioning would fare.
      report_builder.Add("ablp." + std::string(ds.name) + ".p" + std::to_string(parts) +
                             ".mean_closure_share",
                         MeanClosureShare(partitions, ds.graph.num_vertices()) * 100.0,
                         "%", BetterDirection::kLower);
    }
  }
  redundancy.Print();

  // (2) Partition cycling reload traffic vs the factored one-time load.
  std::printf("\n(2) partition-cycling reload cost per epoch (sampler budget = 1/2 topo)\n");
  const CostModel cost;
  TablePrinter cycling({"Dataset", "topology", "shards", "reloads/epoch", "reload time",
                        "one-time load"});
  for (const DatasetId id : kAllDatasets) {
    const Dataset& ds = GetDataset(id, flags);
    const ByteCount budget = ds.TopologyBytes() / 2 + 1;
    const PartitionCyclePlan plan = PlanPartitionCycle(ds.graph, budget, /*hops=*/3);
    cycling.AddRow({ds.name, FormatBytes(ds.TopologyBytes()),
                    std::to_string(plan.num_partitions),
                    std::to_string(plan.loads_per_epoch),
                    Fmt(cost.TopologyLoadTime(plan.BytesPerEpoch()), 2) + "s",
                    Fmt(cost.TopologyLoadTime(ds.TopologyBytes()), 2) + "s"});
    report_builder.Add("ablp." + std::string(ds.name) + ".cycle_reload_s",
                       cost.TopologyLoadTime(plan.BytesPerEpoch()));
  }
  cycling.Print();
  std::printf(
      "\nPaper shape: on the power-law graph each partition replicates most of\n"
      "the vertex set no matter how many shards are cut (the paper measures\n"
      ">95%% for full-scale Twitter), and cycling pays the whole-topology load\n"
      "several times per epoch instead of once per training run.\n");
  return FinishBench(report_builder, flags);
}
