// Ablation (paper §8, "Other sampling algorithms"): ClusterGCN-style
// subgraph sampling. Two predictions from the paper:
//   - PreSC loses its edge: every training vertex is visited exactly once
//     per epoch, so no caching policy can beat caching the training set —
//     and the footprint similarity across epochs stays perfect while the
//     hotness distribution is flat.
//   - Dynamic switching gains: sampling becomes trivially cheap relative
//     to training (highly skewed K), so the Sampler GPU's standby Trainer
//     does real work.
#include "bench/bench_common.h"
#include "core/engine.h"
#include "report/table.h"
#include "sampling/footprint.h"

using namespace gnnlab;  // NOLINT

int main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBenchHeader("Ablation: ClusterGCN-style subgraph sampling (paper 8)", flags);

  const Dataset& pa = GetDataset(DatasetId::kPapers, flags);
  const Workload cluster = ClusterGcnWorkload();
  const Workload khop = StandardWorkload(GnnModelKind::kGcn);
  BenchReportBuilder report_builder = MakeBenchReportBuilder("abl_subgraph", flags);
  auto slug_of = [&](const Workload* workload) {
    return workload == &khop ? "khop" : "cluster";
  };

  // (1) Policy hit rates at a 10% cache under both samplers.
  std::printf("(1) caching-policy hit rates at a 10%% cache on PA\n");
  TablePrinter hits({"Sampler", "Random", "Degree", "PreSC#1"});
  for (const Workload* workload : {&khop, &cluster}) {
    std::vector<std::string> row{workload->name};
    for (const CachePolicyKind policy :
         {CachePolicyKind::kRandom, CachePolicyKind::kDegree, CachePolicyKind::kPreSC1}) {
      EngineOptions options;
      options.num_gpus = 2;
      options.num_samplers = 1;
      options.dynamic_switching = false;
      options.gpu_memory = flags.GpuMemory();
      options.cache_ratio_override = 0.10;
      options.epochs = flags.epochs;
      options.seed = flags.seed;
      options.policy = policy;
      Engine engine(pa, *workload, options);
      const RunReport report = engine.Run();
      row.push_back(report.oom ? "OOM" : FmtPercent(report.TotalExtract().HitRate(), 1));
      if (!report.oom) {
        const char* policy_slug = policy == CachePolicyKind::kRandom   ? "random"
                                  : policy == CachePolicyKind::kDegree ? "degree"
                                                                       : "presc1";
        report_builder.Add(std::string("abls.") + slug_of(workload) + "." + policy_slug +
                               ".hit_rate",
                           report.TotalExtract().HitRate() * 100.0, "%");
      }
    }
    hits.AddRow(std::move(row));
  }
  hits.Print();

  // (2) Work skew and switching.
  std::printf("\n(2) Sample:Train skew and dynamic switching (1S + 1T on PA)\n");
  TablePrinter skew({"Sampler", "K = T_t/T_s", "epoch w/o DS", "epoch w/ DS", "switched"});
  for (const Workload* workload : {&khop, &cluster}) {
    double k_ratio = 0.0;
    std::string without;
    std::string with;
    std::size_t switched = 0;
    for (const bool ds : {false, true}) {
      EngineOptions options;
      options.num_gpus = 2;
      options.num_samplers = 1;
      options.dynamic_switching = ds;
      options.gpu_memory = flags.GpuMemory();
      options.epochs = flags.epochs;
      options.seed = flags.seed;
      Engine engine(pa, *workload, options);
      const RunReport report = engine.Run();
      if (report.oom) {
        (ds ? with : without) = "OOM";
        continue;
      }
      k_ratio = report.k_ratio;
      (ds ? with : without) = Fmt(report.AvgEpochTime(), 3);
      if (ds) {
        switched = report.epochs.back().switched_batches;
      }
      report_builder.Add(std::string("abls.") + slug_of(workload) +
                             (ds ? ".switch.epoch_s" : ".no_switch.epoch_s"),
                         report.AvgEpochTime());
    }
    skew.AddRow({workload->name, Fmt(k_ratio, 1), without, with, std::to_string(switched)});
  }
  skew.Print();
  std::printf(
      "\nPaper shape: under subgraph sampling every policy converges to the\n"
      "same (training-set) hit rate, so PreSC's edge over Degree vanishes;\n"
      "meanwhile K explodes and the standby Trainer absorbs real work.\n");
  return FinishBench(report_builder, flags);
}
