// Table 5: per-epoch stage breakdown on TWO GPUs — DGL, T_SOTA and GNNLab
// (1 Sampler + 1 Trainer). S = G + M + C (sampling kernel, cache marking,
// queue copy), E annotated with (cache ratio %, hit rate %), and T.
#include "baselines/timeshare_runner.h"
#include "bench/bench_common.h"
#include "core/engine.h"
#include "obs/flow.h"
#include "obs/health.h"
#include "obs/snapshot.h"
#include "report/table.h"

using namespace gnnlab;  // NOLINT

namespace {

void AddStageSeries(BenchReportBuilder* report_builder, const std::string& prefix,
                    const StageBreakdown& stage) {
  report_builder->Add(prefix + ".sample_s", stage.SampleTotal());
  report_builder->Add(prefix + ".extract_s", stage.extract);
  report_builder->Add(prefix + ".train_s", stage.train);
}

std::vector<std::string> TimeShareCells(const Dataset& ds, const Workload& workload,
                                        const TimeShareOptions& base,
                                        const BenchFlags& flags,
                                        BenchReportBuilder* report_builder,
                                        const std::string& prefix) {
  TimeShareOptions options = base;
  options.num_gpus = 2;
  options.gpu_memory = flags.GpuMemory();
  options.epochs = flags.epochs;
  options.seed = flags.seed;
  TimeShareRunner runner(ds, workload, options);
  const RunReport report = runner.Run();
  if (report.oom) {
    return {"OOM", "OOM", "OOM"};
  }
  const StageBreakdown stage = report.AvgStage();
  const ExtractStats extract = report.TotalExtract();
  AddStageSeries(report_builder, prefix, stage);
  return {Fmt(stage.SampleTotal()),
          Fmt(stage.extract) + " (" + FmtPercent(report.cache_ratio) + "," +
              FmtPercent(extract.HitRate()) + ")",
          Fmt(stage.train)};
}

std::vector<std::string> GnnlabCells(const Dataset& ds, const Workload& workload,
                                     const BenchFlags& flags, TraceRecorder* trace,
                                     FlowTracer* flows, MetricRegistry* metrics,
                                     std::vector<TelemetrySample>* snapshots,
                                     BenchReportBuilder* report_builder,
                                     const std::string& prefix) {
  EngineOptions options;
  options.num_gpus = 2;
  options.num_samplers = 1;
  options.dynamic_switching = false;  // Pure 1S1T, as in the paper's table.
  options.gpu_memory = flags.GpuMemory();
  options.epochs = flags.epochs;
  options.seed = flags.seed;
  options.policy = flags.PolicyOr(options.policy);
  if (trace != nullptr) {
    trace->Clear();  // The sweep reuses one recorder; keep only the last run.
    options.trace = trace;
  }
  if (flows != nullptr) {
    flows->Clear();  // As above: the flow trace covers the last run only.
    options.flows = flows;
  }
  options.metrics = metrics;
  Engine engine(ds, workload, options);
  const RunReport report = engine.Run();
  if (snapshots != nullptr) {
    *snapshots = report.snapshots;
  }
  if (report.oom) {
    return {"OOM", "OOM", "OOM"};
  }
  const StageBreakdown stage = report.AvgStage();
  const ExtractStats extract = report.TotalExtract();
  AddStageSeries(report_builder, prefix, stage);
  report_builder->Add(prefix + ".hit_rate", extract.HitRate() * 100.0, "%");
  return {Fmt(stage.SampleTotal()) + " = " + Fmt(stage.sample_graph) + "+" +
              Fmt(stage.sample_mark) + "+" + Fmt(stage.sample_copy),
          Fmt(stage.extract) + " (" + FmtPercent(report.cache_ratio) + "," +
              FmtPercent(extract.HitRate()) + ")",
          Fmt(stage.train)};
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBenchHeader("Table 5: stage breakdown on 2 GPUs (GNNLab = 1S1T)", flags);

  TraceRecorder trace;
  FlowTracer flows;
  MetricRegistry metrics;
  std::vector<TelemetrySample> snapshots;
  TraceRecorder* trace_ptr = flags.trace_out.empty() ? nullptr : &trace;
  FlowTracer* flows_ptr = flags.flow_out.empty() ? nullptr : &flows;
  MetricRegistry* metrics_ptr = flags.prom_out.empty() ? nullptr : &metrics;
  std::vector<TelemetrySample>* snapshots_ptr =
      flags.metrics_out.empty() ? nullptr : &snapshots;

  BenchReportBuilder report_builder = MakeBenchReportBuilder("table5_stage_breakdown", flags);
  TablePrinter table({"Model", "DS", "DGL S", "DGL E", "DGL T", "TSOTA S",
                      "TSOTA E(R,H)", "TSOTA T", "GNNLab S=G+M+C", "GNNLab E(R,H)",
                      "GNNLab T"});
  for (const GnnModelKind kind :
       {GnnModelKind::kGcn, GnnModelKind::kGraphSage, GnnModelKind::kPinSage}) {
    const Workload workload = StandardWorkload(kind);
    const char* model = kind == GnnModelKind::kGcn        ? "gcn"
                        : kind == GnnModelKind::kGraphSage ? "sage"
                                                           : "pinsage";
    bool first = true;
    for (const DatasetId id : kAllDatasets) {
      const Dataset& ds = GetDataset(id, flags);
      const std::string cell = std::string("t5.") + model + "." + ds.name;
      const auto dgl = TimeShareCells(ds, workload, DglOptions(), flags, &report_builder,
                                      cell + ".dgl");
      const auto tsota = TimeShareCells(ds, workload, TsotaOptions(), flags,
                                        &report_builder, cell + ".tsota");
      const auto gnnlab =
          GnnlabCells(ds, workload, flags, trace_ptr, flows_ptr, metrics_ptr, snapshots_ptr,
                      &report_builder, cell + ".gnnlab");
      if (first) {
        table.AddSeparator();
      }
      table.AddRow({first ? workload.name : "", ds.name, dgl[0], dgl[1], dgl[2], tsota[0],
                    tsota[1], tsota[2], gnnlab[0], gnnlab[1], gnnlab[2]});
      first = false;
    }
  }
  table.Print();
  if (trace_ptr != nullptr && trace.WriteChromeTrace(flags.trace_out)) {
    std::printf("\nwrote %zu trace spans (last GNNLab run) to %s\n", trace.size(),
                flags.trace_out.c_str());
  }
  if (flows_ptr != nullptr && flows.WriteChromeTrace(flags.flow_out)) {
    std::printf("wrote %zu flow steps (last GNNLab run) to %s\n", flows.size(),
                flags.flow_out.c_str());
  }
  // Republish the headline series as bench.* gauges (and write --json=)
  // before the exposition snapshot so they land in the same scrape.
  const int finish_rc = FinishBench(report_builder, flags, metrics_ptr);
  if (metrics_ptr != nullptr) {
    HealthMonitor::Options health_options;
    health_options.exposition_path = flags.prom_out;
    HealthMonitor health(&metrics, health_options);
    if (health.WriteExposition()) {
      std::printf("wrote Prometheus exposition (last GNNLab run) to %s\n",
                  flags.prom_out.c_str());
    }
  }
  if (snapshots_ptr != nullptr &&
      WriteTelemetryJsonLines(snapshots, flags.metrics_out)) {
    std::printf("wrote %zu telemetry snapshots (last GNNLab run) to %s\n",
                snapshots.size(), flags.metrics_out.c_str());
  }
  std::printf(
      "\nPaper shape: GNNLab's Sample stage adds small M and C terms over\n"
      "T_SOTA's but its Extract collapses (hit rates ~90-99%% vs T_SOTA's\n"
      "capacity-squeezed cache); DGL's CPU extract dominates its epoch.\n");
  return finish_rc;
}
