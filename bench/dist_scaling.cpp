// Distributed scaling: the paper's factored-vs-time-sharing question
// re-asked at cluster scale. Sweeps node count {1,2,4,8} x partition
// strategy {edge-cut, vertex-cut} x cache policy {degree, PreSC#1} for the
// factored per-node pipeline and the sequential time-sharing baseline, all
// under DistEngine's modeled NIC (dist/comm_manager.h). Reports per-config
// epoch time, speedup vs the N=1 run of the same mode/policy, remote
// feature-fetch bytes and the all-reduce share of epoch time; --json=<path>
// writes the full sweep (with per-node remote-fetch counters) as JSON.
//
// Runs the OGB-Papers stand-in (the only one whose features overflow the
// cache at every scale) over a 10GbE-class NIC; the CommParams default
// models a far slower link and would drown the sweep in all-reduce time.
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "dist/dist_engine.h"
#include "report/table.h"

using namespace gnnlab;  // NOLINT

namespace {

constexpr int kNodeCounts[] = {1, 2, 4, 8};
constexpr PartitionStrategy kStrategies[] = {PartitionStrategy::kEdgeCut,
                                             PartitionStrategy::kVertexCut};
constexpr CachePolicyKind kPolicies[] = {CachePolicyKind::kDegree,
                                         CachePolicyKind::kPreSC1};

struct SweepPoint {
  int nodes = 0;
  PartitionStrategy strategy = PartitionStrategy::kEdgeCut;
  CachePolicyKind policy = CachePolicyKind::kDegree;
  bool time_sharing = false;
  bool oom = false;
  double epoch_time = 0.0;
  double speedup = 1.0;  // vs the N=1 point of the same mode/policy.
  double allreduce_share = 0.0;
  ByteCount remote_bytes = 0;
  // Sampled edges whose adjacency the sampling node's shard does not hold
  // (counted, not priced) — this is where edge-cut and vertex-cut differ;
  // feature traffic is identical because both own features by the same
  // contiguous vertex split.
  double remote_adj_edges = 0.0;
  std::vector<std::pair<std::uint64_t, ByteCount>> per_node;  // fetches, bytes
};

SweepPoint RunPoint(const Dataset& ds, const Workload& workload, int nodes,
                    PartitionStrategy strategy, CachePolicyKind policy,
                    bool time_sharing, const BenchFlags& flags) {
  DistOptions options;
  options.num_nodes = nodes;
  options.strategy = strategy;
  options.comm.nic_bandwidth = static_cast<ByteCount>(1.25 * kGiB);  // 10GbE.
  options.time_sharing = time_sharing;
  options.gpus_per_node = 4;
  options.gpu_memory = flags.GpuMemory();
  options.num_samplers = time_sharing ? 0 : 1;
  options.dynamic_switching = false;
  options.policy = flags.PolicyOr(policy);
  options.epochs = flags.epochs;
  options.seed = flags.seed;
  DistEngine engine(ds, workload, options);
  const DistRunReport report = engine.Run();

  SweepPoint point;
  point.nodes = nodes;
  point.strategy = strategy;
  point.policy = options.policy;
  point.time_sharing = time_sharing;
  point.oom = report.oom;
  if (report.oom) {
    return point;
  }
  point.epoch_time = report.AvgEpochTime();
  point.allreduce_share = report.AllReduceShare();
  point.remote_bytes = report.TotalRemoteBytes();
  for (const DistNodeReport& node : report.nodes) {
    std::uint64_t fetches = 0;
    ByteCount bytes = 0;
    for (const DistNodeEpochReport& e : node.epochs) {
      fetches += e.remote_fetches;
      bytes += e.bytes_remote;
      point.remote_adj_edges += e.remote_adj_edges;
    }
    point.per_node.emplace_back(fetches, bytes);
  }
  return point;
}

std::string SweepToJson(const std::vector<SweepPoint>& points, const BenchFlags& flags) {
  char buf[256];
  std::string out = "{\n  \"bench\": \"dist_scaling\",\n";
  std::snprintf(buf, sizeof(buf), "  \"scale\": %.4f,\n  \"epochs\": %zu,\n  \"seed\": %llu,\n",
                flags.scale, flags.epochs, static_cast<unsigned long long>(flags.seed));
  out += buf;
  out += "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"nodes\": %d, \"strategy\": \"%s\", \"policy\": \"%s\", "
                  "\"mode\": \"%s\", \"oom\": %s, ",
                  p.nodes, PartitionStrategyName(p.strategy), CachePolicyKindName(p.policy),
                  p.time_sharing ? "time_sharing" : "factored", p.oom ? "true" : "false");
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "\"epoch_time\": %.9g, \"speedup\": %.9g, \"allreduce_share\": %.9g, "
                  "\"remote_bytes\": %llu, \"remote_adj_edges\": %.9g, \"per_node\": [",
                  p.epoch_time, p.speedup, p.allreduce_share,
                  static_cast<unsigned long long>(p.remote_bytes), p.remote_adj_edges);
    out += buf;
    for (std::size_t n = 0; n < p.per_node.size(); ++n) {
      std::snprintf(buf, sizeof(buf),
                    "%s{\"node\": %zu, \"remote_fetches\": %llu, \"bytes_remote\": %llu}",
                    n == 0 ? "" : ", ", n,
                    static_cast<unsigned long long>(p.per_node[n].first),
                    static_cast<unsigned long long>(p.per_node[n].second));
      out += buf;
    }
    out += "]}";
    out += (i + 1 == points.size()) ? "\n" : ",\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBenchHeader("Distributed scaling: factored vs time-sharing, 1-8 nodes", flags);

  const Dataset& ds = GetDataset(DatasetId::kPapers, flags);
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  BenchReportBuilder report_builder = MakeBenchReportBuilder("dist_scaling", flags);

  std::vector<SweepPoint> points;
  for (const bool time_sharing : {false, true}) {
    std::printf("%s\n", time_sharing ? "Time-sharing baseline per node"
                                     : "Factored pipeline per node (1S per node)");
    TablePrinter table({"Nodes", "Partition", "Policy", "Epoch", "Speedup", "RemoteBytes",
                        "RemoteAdj", "AllReduce%"});
    for (const CachePolicyKind policy : kPolicies) {
      for (const PartitionStrategy strategy : kStrategies) {
        double base_time = 0.0;
        for (const int nodes : kNodeCounts) {
          SweepPoint p = RunPoint(ds, workload, nodes, strategy, policy, time_sharing, flags);
          if (!p.oom) {
            if (nodes == 1) {
              base_time = p.epoch_time;
            }
            p.speedup = (base_time > 0.0 && p.epoch_time > 0.0) ? base_time / p.epoch_time : 1.0;
          }
          table.AddRow({std::to_string(nodes), PartitionStrategyName(strategy),
                        CachePolicyKindName(p.policy),
                        p.oom ? "OOM" : Fmt(p.epoch_time),
                        p.oom ? "-" : Fmt(p.speedup),
                        p.oom ? "-" : FormatBytes(p.remote_bytes),
                        p.oom ? "-" : std::to_string(static_cast<long long>(p.remote_adj_edges)),
                        p.oom ? "-" : Fmt(100.0 * p.allreduce_share)});
          if (!p.oom) {
            const std::string prefix =
                std::string("dist.") + (time_sharing ? "timeshare" : "factored") + "." +
                PartitionStrategyName(strategy) + "." +
                (policy == CachePolicyKind::kDegree ? "degree" : "presc1") + ".n" +
                std::to_string(nodes);
            report_builder.Add(prefix + ".epoch_s", p.epoch_time);
            report_builder.Add(prefix + ".speedup", p.speedup, "x");
            report_builder.Add(prefix + ".remote_bytes",
                               static_cast<double>(p.remote_bytes), "bytes");
            report_builder.Add(prefix + ".allreduce_share", 100.0 * p.allreduce_share,
                               "%", BetterDirection::kLower);
          }
          points.push_back(std::move(p));
        }
      }
    }
    table.Print();
    std::printf("\n");
  }

  std::printf(
      "Expected shape: epoch time falls with node count while remote feature\n"
      "bytes grow (each node owns a shrinking slice of the rows it samples),\n"
      "and the fixed-size gradient all-reduce claims a growing share of the\n"
      "shrinking epoch -- the classic strong-scaling tax. PreSC#1 cuts remote\n"
      "traffic several-fold vs Degree at every N (the paper's cache story,\n"
      "now about the NIC). Factored leads at small N; once shards get tiny\n"
      "(N=8 here) the dedicated Sampler GPU stops paying for itself and\n"
      "time-sharing's extra Trainer catches up -- dynamic switching's case.\n");

  // The pre-schema per-node payload rides along under "extra" so consumers
  // of the old standalone format keep their data.
  report_builder.SetExtraJson(SweepToJson(points, flags));
  return FinishBench(report_builder, flags);
}
