// Table 6: preprocessing time for training GCN — disk -> DRAM (topology +
// features), DRAM -> GPU (topology, then feature cache), and PreSC#1's
// pre-sampling — across all four datasets, plus the amortization ratio
// against one training epoch.
#include "bench/bench_common.h"
#include "core/engine.h"
#include "report/table.h"

using namespace gnnlab;  // NOLINT

int main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBenchHeader("Table 6: preprocessing time for GCN", flags);

  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  BenchReportBuilder report_builder = MakeBenchReportBuilder("table6_preprocessing", flags);
  TablePrinter table({"Stage", "PR", "TW", "PA", "UK"});
  std::vector<std::string> disk{"Disk to DRAM (G & F)"};
  std::vector<std::string> topo{"Load graph topological data"};
  std::vector<std::string> cache{"Load feature cache"};
  std::vector<std::string> presample{"Pre-sampling for PreSC#1"};
  std::vector<std::string> epoch{"(one training epoch)"};

  for (const DatasetId id : kAllDatasets) {
    const Dataset& ds = GetDataset(id, flags);
    EngineOptions options;
    options.num_gpus = 8;
    options.gpu_memory = flags.GpuMemory();
    options.epochs = flags.epochs;
    options.seed = flags.seed;
    options.policy = flags.PolicyOr(options.policy);
    Engine engine(ds, workload, options);
    const RunReport report = engine.Run();
    if (report.oom) {
      for (auto* row : {&disk, &topo, &cache, &presample, &epoch}) {
        row->push_back("OOM");
      }
      continue;
    }
    disk.push_back(Fmt(report.preprocess.disk_load));
    topo.push_back(Fmt(report.preprocess.topo_load));
    cache.push_back(Fmt(report.preprocess.cache_load));
    presample.push_back(Fmt(report.preprocess.presample));
    epoch.push_back(Fmt(report.AvgEpochTime()));
    const std::string prefix = std::string("t6.") + ds.name;
    report_builder.Add(prefix + ".disk_s", report.preprocess.disk_load);
    report_builder.Add(prefix + ".topo_s", report.preprocess.topo_load);
    report_builder.Add(prefix + ".cache_s", report.preprocess.cache_load);
    report_builder.Add(prefix + ".presample_s", report.preprocess.presample);
    report_builder.Add(prefix + ".epoch_s", report.AvgEpochTime());
  }
  table.AddRow(disk);
  table.AddRow(topo);
  table.AddRow(cache);
  table.AddRow(presample);
  table.AddSeparator();
  table.AddRow(epoch);
  table.Print();
  std::printf(
      "\nPaper shape: disk loading dominates preprocessing; GPU loads are ~14x\n"
      "of one epoch and pre-sampling ~1.4x — both one-time costs amortized over\n"
      "the hundreds of epochs of a real training run.\n");
  return FinishBench(report_builder, flags);
}
