// Figure 11: PreSC in depth.
//  (a) Hit rate per policy (incl. PreSC#1/2/3) on the Twitter stand-in with
//      weighted sampling, cache ratio 10%.
//  (b) Hit rate vs cache ratio on the OGB-Papers stand-in with 3-hop
//      uniform sampling.
//  (c) Transferred data per epoch vs feature dimension at a fixed cache
//      byte budget (the paper's 5 GB / 16 GB card).
#include "bench/bench_common.h"
#include "cache/cache_policy.h"
#include "cache/feature_cache.h"
#include "core/workload.h"
#include "report/table.h"

using namespace gnnlab;  // NOLINT

namespace {

Footprint RecordEpoch(const Workload& workload, const Dataset& ds, const EdgeWeights* weights,
                      std::uint64_t seed) {
  Footprint fp(ds.graph.num_vertices());
  auto sampler = MakeSampler(workload, ds, weights);
  Rng shuffle(seed);
  Rng rng(seed ^ 0x5bd1e995u);
  EpochBatches batches(ds.train_set, ds.batch_size, &shuffle);
  while (batches.HasNext()) {
    fp.Accumulate(sampler->Sample(batches.NextBatch(), &rng, nullptr));
  }
  return fp;
}

EpochExtractionResult Measure(const Workload& workload, const Dataset& ds,
                              const EdgeWeights* weights,
                              const std::vector<VertexId>& ranked, double ratio,
                              std::uint32_t dim, std::uint64_t seed) {
  const FeatureCache cache = FeatureCache::Load(ranked, ratio, ds.graph.num_vertices(), dim);
  auto sampler = MakeSampler(workload, ds, weights);
  return MeasureEpochExtraction(sampler.get(), ds.train_set, ds.batch_size, cache, dim, seed);
}

CachePolicyContext ContextFor(const Dataset& ds, const Workload& workload,
                              const EdgeWeights* weights, std::uint64_t seed) {
  CachePolicyContext context;
  context.graph = &ds.graph;
  context.train_set = &ds.train_set;
  context.batch_size = ds.batch_size;
  context.seed = seed;
  context.sampler_factory = [&ds, &workload, weights] {
    return MakeSampler(workload, ds, weights);
  };
  return context;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBenchHeader("Figure 11: PreSC efficiency and robustness", flags);
  const std::uint64_t measure_seed = flags.seed + 1000;
  BenchReportBuilder report_builder = MakeBenchReportBuilder("fig11_presc", flags);

  // (a) TW + weighted sampling, policies including PreSC#K.
  {
    const Dataset& tw = GetDataset(DatasetId::kTwitter, flags);
    const Workload workload = WeightedGcnWorkload();
    const EdgeWeights weights = tw.MakeWeights();
    const CachePolicyContext context = ContextFor(tw, workload, &weights, flags.seed);
    auto oracle = MakeOptimalOracle(RecordEpoch(workload, tw, &weights, measure_seed));

    std::printf("(a) TW, 3-hop weighted sampling, cache ratio 10%%\n");
    TablePrinter table({"Policy", "hit rate"});
    struct Named {
      const char* name;
      const char* slug;
      std::unique_ptr<CachePolicy> policy;
    };
    Named policies[] = {
        {"Random", "random", MakeRandomPolicy()},
        {"Degree", "degree", MakeDegreePolicy()},
        {"PreSC#1", "presc1", MakePreSamplingPolicy(1)},
        {"PreSC#2", "presc2", MakePreSamplingPolicy(2)},
        {"PreSC#3", "presc3", MakePreSamplingPolicy(3)},
        {"Optimal", "optimal", std::move(oracle)},
    };
    for (Named& named : policies) {
      const auto result = Measure(workload, tw, &weights, named.policy->Rank(context), 0.10,
                                  tw.feature_dim, measure_seed);
      table.AddRow({named.name, FmtPercent(result.HitRate(), 1)});
      report_builder.Add(std::string("fig11a.") + named.slug + ".hit_rate",
                         result.HitRate() * 100.0, "%");
    }
    table.Print();
    std::printf("\n");
  }

  // (b) PA, hit rate vs cache ratio.
  {
    const Dataset& pa = GetDataset(DatasetId::kPapers, flags);
    const Workload workload = StandardWorkload(GnnModelKind::kGcn);
    const CachePolicyContext context = ContextFor(pa, workload, nullptr, flags.seed);
    const auto rank_random = MakeRandomPolicy()->Rank(context);
    const auto rank_degree = MakeDegreePolicy()->Rank(context);
    const auto rank_presc = MakePreSamplingPolicy(1)->Rank(context);
    const auto rank_optimal =
        MakeOptimalOracle(RecordEpoch(workload, pa, nullptr, measure_seed))->Rank(context);

    std::printf("(b) PA, 3-hop uniform sampling: hit rate vs cache ratio\n");
    TablePrinter table({"cache ratio", "Random", "Degree", "PreSC#1", "Optimal"});
    const struct {
      const char* slug;
      const std::vector<VertexId>* rank;
    } ranks[] = {{"random", &rank_random},
                 {"degree", &rank_degree},
                 {"presc1", &rank_presc},
                 {"optimal", &rank_optimal}};
    for (const double ratio : {0.01, 0.02, 0.05, 0.10, 0.20, 0.30}) {
      std::vector<std::string> row{FmtPercent(ratio)};
      for (const auto& named : ranks) {
        const double hit_rate =
            Measure(workload, pa, nullptr, *named.rank, ratio, pa.feature_dim, measure_seed)
                .HitRate();
        row.push_back(FmtPercent(hit_rate, 1));
        report_builder.Add("fig11b.r" + std::to_string(static_cast<int>(ratio * 100.0)) +
                               "." + named.slug + ".hit_rate",
                           hit_rate * 100.0, "%");
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }

  // (c) PA, transferred bytes vs feature dim at fixed cache bytes.
  {
    const Dataset& pa = GetDataset(DatasetId::kPapers, flags);
    const Workload workload = StandardWorkload(GnnModelKind::kGcn);
    const CachePolicyContext context = ContextFor(pa, workload, nullptr, flags.seed);
    const auto rank_random = MakeRandomPolicy()->Rank(context);
    const auto rank_degree = MakeDegreePolicy()->Rank(context);
    const auto rank_presc = MakePreSamplingPolicy(1)->Rank(context);
    const auto budget =
        static_cast<ByteCount>(static_cast<double>(flags.GpuMemory()) * 5.0 / 16.0);

    std::printf("(c) PA: transferred bytes/epoch vs feature dim (cache budget %s)\n",
                FormatBytes(budget).c_str());
    TablePrinter table({"feature dim", "Random", "Degree", "PreSC#1"});
    const struct {
      const char* slug;
      const std::vector<VertexId>* rank;
    } ranks[] = {{"random", &rank_random}, {"degree", &rank_degree}, {"presc1", &rank_presc}};
    for (const std::uint32_t dim : {100u, 300u, 500u, 700u, 900u}) {
      std::vector<std::string> row{std::to_string(dim)};
      for (const auto& named : ranks) {
        const FeatureCache cache =
            FeatureCache::LoadWithBudget(*named.rank, budget, pa.graph.num_vertices(), dim);
        auto sampler = MakeSampler(workload, pa, nullptr);
        const auto result = MeasureEpochExtraction(sampler.get(), pa.train_set,
                                                   pa.batch_size, cache, dim, measure_seed);
        row.push_back(FormatBytes(result.bytes_from_host));
        report_builder.Add("fig11c.dim" + std::to_string(dim) + "." + named.slug +
                               ".host_bytes",
                           static_cast<double>(result.bytes_from_host), "bytes");
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  std::printf(
      "\nPaper shape: PreSC#1 is already near-optimal (more stages add little);\n"
      "its hit rate rises steeply with ratio and its transferred bytes grow far\n"
      "slower with feature dimension than Degree/Random (~4x less at dim 900).\n");
  return FinishBench(report_builder, flags);
}
