// Figure 16: time-to-accuracy for GraphSAGE on the OGB-Papers stand-in.
//
// Real training (genuine forward/backward passes, Adam, synchronous
// data-parallel updates) produces the accuracy-per-epoch trajectory for
// each gradient-update group size: GNNLab trains with N_t = 6 GPUs worth of
// data parallelism after the scheduler reserves 2 Samplers, while DGL and
// T_SOTA aggregate over all 8 GPUs (fewer updates per epoch, more epochs to
// the target). Epoch wall-times come from each system's simulated runner,
// so time-to-accuracy = (epochs to target) x (that system's epoch time).
#include <algorithm>

#include "baselines/timeshare_runner.h"
#include "bench/bench_common.h"
#include "core/engine.h"
#include "obs/flow.h"
#include "obs/health.h"
#include "obs/snapshot.h"
#include "report/table.h"

using namespace gnnlab;  // NOLINT

namespace {

struct Trajectory {
  std::vector<double> accuracy;        // Per epoch.
  std::vector<std::size_t> updates;    // Cumulative gradient updates.
};

Trajectory TrainReal(const Dataset& ds, const RealTrainingOptions& real,
                     std::size_t sync_group, std::size_t epochs, std::uint64_t seed) {
  Workload workload = StandardWorkload(GnnModelKind::kGraphSage);
  EngineOptions options;
  options.num_gpus = 8;
  options.gpu_memory = 64 * kMiB;  // Ample: convergence only needs the schedule.
  options.epochs = epochs;
  options.seed = seed;
  options.sync_group_override = sync_group;
  options.real = &real;
  Engine engine(ds, workload, options);
  const RunReport report = engine.Run();
  if (report.oom) {
    std::fprintf(stderr, "real-training run OOM: %s\n", report.oom_detail.c_str());
    std::exit(1);
  }
  Trajectory trajectory;
  std::size_t cumulative = 0;
  for (const EpochReport& epoch : report.epochs) {
    cumulative += epoch.gradient_updates;
    trajectory.accuracy.push_back(epoch.eval_accuracy);
    trajectory.updates.push_back(cumulative);
  }
  return trajectory;
}

std::size_t EpochsToTarget(const Trajectory& t, double target) {
  for (std::size_t e = 0; e < t.accuracy.size(); ++e) {
    if (t.accuracy[e] >= target) {
      return e + 1;
    }
  }
  return t.accuracy.size();
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseBenchFlags(argc, argv);
  PrintBenchHeader("Figure 16: GraphSAGE convergence (real training)", flags);

  // Real training at a reduced scale: genuine dense math on one CPU core.
  const double train_scale = std::min(flags.scale, 0.1);
  const Dataset ds = MakeDataset(DatasetId::kPapers, train_scale, flags.seed);
  Rng rng(flags.seed);
  constexpr std::uint32_t kClasses = 8;
  const auto labels = MakeCommunityLabels(ds.graph.num_vertices(), 256, kClasses);
  const FeatureStore features =
      FeatureStore::Clustered(ds.graph.num_vertices(), 16, labels, kClasses, 0.6, &rng);
  std::vector<VertexId> eval;
  for (VertexId v = 1; v < ds.graph.num_vertices() && eval.size() < 400; v += 97) {
    eval.push_back(v);
  }
  RealTrainingOptions real;
  real.features = &features;
  real.labels = labels;
  real.eval_vertices = eval;
  real.num_classes = kClasses;
  real.hidden_dim = 16;
  // Parallel feature gather over all cores: host wall-clock only, the
  // simulated timeline and the gathered bytes are unchanged.
  real.extract_threads = 0;

  const std::size_t epochs = std::max<std::size_t>(flags.epochs, 10);
  // GNNLab's scheduler yields 2S6T for GraphSAGE/PA -> update group 6; the
  // 8-GPU time-sharing baselines aggregate over 8.
  const Trajectory gnnlab_traj = TrainReal(ds, real, 6, epochs, flags.seed);
  const Trajectory baseline_traj = TrainReal(ds, real, 8, epochs, flags.seed);

  // Epoch wall-times from the simulated systems at full measurement scale.
  const Dataset& pa = GetDataset(DatasetId::kPapers, flags);
  const Workload workload = StandardWorkload(GnnModelKind::kGraphSage);
  BenchReportBuilder report_builder = MakeBenchReportBuilder("fig16_convergence", flags);
  MetricRegistry metrics;
  double gnnlab_epoch = 0.0;
  {
    // The headline GNNLab run carries the optional telemetry artifacts.
    TraceRecorder trace;
    FlowTracer flows;
    EngineOptions options;
    options.num_gpus = 8;
    options.gpu_memory = flags.GpuMemory();
    options.epochs = 2;
    options.seed = flags.seed;
    if (!flags.trace_out.empty()) {
      options.trace = &trace;
    }
    if (!flags.flow_out.empty()) {
      options.flows = &flows;
    }
    if (!flags.prom_out.empty()) {
      options.metrics = &metrics;
    }
    Engine engine(pa, workload, options);
    const RunReport report = engine.Run();
    if (report.oom) {
      std::fprintf(stderr, "GNNLab epoch run OOM: %s\n", report.oom_detail.c_str());
      std::exit(1);
    }
    gnnlab_epoch = report.AvgEpochTime();
    if (!flags.trace_out.empty() && trace.WriteChromeTrace(flags.trace_out)) {
      std::printf("wrote %zu trace spans (GNNLab epoch run) to %s\n", trace.size(),
                  flags.trace_out.c_str());
    }
    if (!flags.flow_out.empty() && flows.WriteChromeTrace(flags.flow_out)) {
      std::printf("wrote %zu flow steps (GNNLab epoch run) to %s\n", flows.size(),
                  flags.flow_out.c_str());
    }
    if (!flags.metrics_out.empty() &&
        WriteTelemetryJsonLines(report.snapshots, flags.metrics_out)) {
      std::printf("wrote %zu telemetry snapshots (GNNLab epoch run) to %s\n",
                  report.snapshots.size(), flags.metrics_out.c_str());
    }
  }
  auto timeshare_epoch = [&](const TimeShareOptions& base) {
    TimeShareOptions options = base;
    options.num_gpus = 8;
    options.gpu_memory = flags.GpuMemory();
    options.epochs = 2;
    options.seed = flags.seed;
    TimeShareRunner runner(pa, workload, options);
    const RunReport report = runner.Run();
    if (report.oom) {
      std::fprintf(stderr, "time-sharing epoch run OOM: %s\n", report.oom_detail.c_str());
      std::exit(1);
    }
    return report.AvgEpochTime();
  };
  const double tsota_epoch = timeshare_epoch(TsotaOptions());
  const double dgl_epoch = timeshare_epoch(DglOptions());

  std::printf("accuracy trajectory (eval set %zu vertices, %u classes)\n", eval.size(),
              kClasses);
  TablePrinter curve({"epoch", "acc (group=6, GNNLab)", "acc (group=8, DGL/TSOTA)",
                      "updates g6", "updates g8"});
  for (std::size_t e = 0; e < epochs; ++e) {
    curve.AddRow({std::to_string(e + 1), FmtPercent(gnnlab_traj.accuracy[e], 1),
                  FmtPercent(baseline_traj.accuracy[e], 1),
                  std::to_string(gnnlab_traj.updates[e]),
                  std::to_string(baseline_traj.updates[e])});
  }
  curve.Print();

  const double best = std::min(
      *std::max_element(gnnlab_traj.accuracy.begin(), gnnlab_traj.accuracy.end()),
      *std::max_element(baseline_traj.accuracy.begin(), baseline_traj.accuracy.end()));
  const double target = 0.95 * best;
  const std::size_t gnnlab_epochs = EpochsToTarget(gnnlab_traj, target);
  const std::size_t baseline_epochs = EpochsToTarget(baseline_traj, target);

  std::printf("\ntarget accuracy %s (95%% of best common)\n", FmtPercent(target, 1).c_str());
  TablePrinter summary(
      {"System", "epoch(s)", "epochs to target", "grad updates", "time to target(s)"});
  summary.AddRow({"DGL", Fmt(dgl_epoch), std::to_string(baseline_epochs),
                  std::to_string(baseline_traj.updates[baseline_epochs - 1]),
                  Fmt(dgl_epoch * static_cast<double>(baseline_epochs))});
  summary.AddRow({"T_SOTA", Fmt(tsota_epoch), std::to_string(baseline_epochs),
                  std::to_string(baseline_traj.updates[baseline_epochs - 1]),
                  Fmt(tsota_epoch * static_cast<double>(baseline_epochs))});
  summary.AddRow({"GNNLab", Fmt(gnnlab_epoch), std::to_string(gnnlab_epochs),
                  std::to_string(gnnlab_traj.updates[gnnlab_epochs - 1]),
                  Fmt(gnnlab_epoch * static_cast<double>(gnnlab_epochs))});
  summary.Print();

  report_builder.Add("fig16.gnnlab.epoch_s", gnnlab_epoch);
  report_builder.Add("fig16.tsota.epoch_s", tsota_epoch);
  report_builder.Add("fig16.dgl.epoch_s", dgl_epoch);
  report_builder.Add("fig16.gnnlab.epochs_to_target",
                     static_cast<double>(gnnlab_epochs), "count");
  report_builder.Add("fig16.baseline.epochs_to_target",
                     static_cast<double>(baseline_epochs), "count");
  report_builder.Add("fig16.gnnlab.time_to_target_s",
                     gnnlab_epoch * static_cast<double>(gnnlab_epochs));
  report_builder.Add("fig16.tsota.time_to_target_s",
                     tsota_epoch * static_cast<double>(baseline_epochs));
  report_builder.Add("fig16.dgl.time_to_target_s",
                     dgl_epoch * static_cast<double>(baseline_epochs));
  report_builder.Add("fig16.target_accuracy", target * 100.0, "%");
  const int finish_rc =
      FinishBench(report_builder, flags, flags.prom_out.empty() ? nullptr : &metrics);
  if (!flags.prom_out.empty()) {
    HealthMonitor::Options health_options;
    health_options.exposition_path = flags.prom_out;
    HealthMonitor health(&metrics, health_options);
    if (health.WriteExposition()) {
      std::printf("wrote Prometheus exposition (GNNLab epoch run) to %s\n",
                  flags.prom_out.c_str());
    }
  }
  std::printf(
      "\nPaper shape: all systems converge to the same accuracy; GNNLab needs\n"
      "slightly fewer epochs (more gradient updates per epoch with 6 trainers\n"
      "vs 8) and each epoch is several times faster, compounding to ~10x over\n"
      "DGL and ~3.5x over T_SOTA in time-to-accuracy.\n");
  return finish_rc;
}
