file(REMOVE_RECURSE
  "libgnnlab_runtime.a"
)
