file(REMOVE_RECURSE
  "CMakeFiles/gnnlab_runtime.dir/runtime/thread_pool.cc.o"
  "CMakeFiles/gnnlab_runtime.dir/runtime/thread_pool.cc.o.d"
  "libgnnlab_runtime.a"
  "libgnnlab_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnlab_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
