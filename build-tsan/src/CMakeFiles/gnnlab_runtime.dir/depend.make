# Empty dependencies file for gnnlab_runtime.
# This may be replaced when dependencies are built.
