# Empty dependencies file for gnnlab_nn.
# This may be replaced when dependencies are built.
