file(REMOVE_RECURSE
  "libgnnlab_nn.a"
)
