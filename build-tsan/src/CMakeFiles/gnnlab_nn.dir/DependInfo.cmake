
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/aggregate.cc" "src/CMakeFiles/gnnlab_nn.dir/nn/aggregate.cc.o" "gcc" "src/CMakeFiles/gnnlab_nn.dir/nn/aggregate.cc.o.d"
  "/root/repo/src/nn/checkpoint.cc" "src/CMakeFiles/gnnlab_nn.dir/nn/checkpoint.cc.o" "gcc" "src/CMakeFiles/gnnlab_nn.dir/nn/checkpoint.cc.o.d"
  "/root/repo/src/nn/gat.cc" "src/CMakeFiles/gnnlab_nn.dir/nn/gat.cc.o" "gcc" "src/CMakeFiles/gnnlab_nn.dir/nn/gat.cc.o.d"
  "/root/repo/src/nn/grad_sync.cc" "src/CMakeFiles/gnnlab_nn.dir/nn/grad_sync.cc.o" "gcc" "src/CMakeFiles/gnnlab_nn.dir/nn/grad_sync.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/CMakeFiles/gnnlab_nn.dir/nn/layers.cc.o" "gcc" "src/CMakeFiles/gnnlab_nn.dir/nn/layers.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/CMakeFiles/gnnlab_nn.dir/nn/loss.cc.o" "gcc" "src/CMakeFiles/gnnlab_nn.dir/nn/loss.cc.o.d"
  "/root/repo/src/nn/model.cc" "src/CMakeFiles/gnnlab_nn.dir/nn/model.cc.o" "gcc" "src/CMakeFiles/gnnlab_nn.dir/nn/model.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/gnnlab_nn.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/gnnlab_nn.dir/nn/optimizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_sampling.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_runtime.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
