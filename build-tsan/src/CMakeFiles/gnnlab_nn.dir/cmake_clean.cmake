file(REMOVE_RECURSE
  "CMakeFiles/gnnlab_nn.dir/nn/aggregate.cc.o"
  "CMakeFiles/gnnlab_nn.dir/nn/aggregate.cc.o.d"
  "CMakeFiles/gnnlab_nn.dir/nn/checkpoint.cc.o"
  "CMakeFiles/gnnlab_nn.dir/nn/checkpoint.cc.o.d"
  "CMakeFiles/gnnlab_nn.dir/nn/gat.cc.o"
  "CMakeFiles/gnnlab_nn.dir/nn/gat.cc.o.d"
  "CMakeFiles/gnnlab_nn.dir/nn/grad_sync.cc.o"
  "CMakeFiles/gnnlab_nn.dir/nn/grad_sync.cc.o.d"
  "CMakeFiles/gnnlab_nn.dir/nn/layers.cc.o"
  "CMakeFiles/gnnlab_nn.dir/nn/layers.cc.o.d"
  "CMakeFiles/gnnlab_nn.dir/nn/loss.cc.o"
  "CMakeFiles/gnnlab_nn.dir/nn/loss.cc.o.d"
  "CMakeFiles/gnnlab_nn.dir/nn/model.cc.o"
  "CMakeFiles/gnnlab_nn.dir/nn/model.cc.o.d"
  "CMakeFiles/gnnlab_nn.dir/nn/optimizer.cc.o"
  "CMakeFiles/gnnlab_nn.dir/nn/optimizer.cc.o.d"
  "libgnnlab_nn.a"
  "libgnnlab_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnlab_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
