
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/csr_graph.cc" "src/CMakeFiles/gnnlab_graph.dir/graph/csr_graph.cc.o" "gcc" "src/CMakeFiles/gnnlab_graph.dir/graph/csr_graph.cc.o.d"
  "/root/repo/src/graph/dataset.cc" "src/CMakeFiles/gnnlab_graph.dir/graph/dataset.cc.o" "gcc" "src/CMakeFiles/gnnlab_graph.dir/graph/dataset.cc.o.d"
  "/root/repo/src/graph/edge_weights.cc" "src/CMakeFiles/gnnlab_graph.dir/graph/edge_weights.cc.o" "gcc" "src/CMakeFiles/gnnlab_graph.dir/graph/edge_weights.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/CMakeFiles/gnnlab_graph.dir/graph/generators.cc.o" "gcc" "src/CMakeFiles/gnnlab_graph.dir/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph_builder.cc" "src/CMakeFiles/gnnlab_graph.dir/graph/graph_builder.cc.o" "gcc" "src/CMakeFiles/gnnlab_graph.dir/graph/graph_builder.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/CMakeFiles/gnnlab_graph.dir/graph/graph_io.cc.o" "gcc" "src/CMakeFiles/gnnlab_graph.dir/graph/graph_io.cc.o.d"
  "/root/repo/src/graph/graph_stats.cc" "src/CMakeFiles/gnnlab_graph.dir/graph/graph_stats.cc.o" "gcc" "src/CMakeFiles/gnnlab_graph.dir/graph/graph_stats.cc.o.d"
  "/root/repo/src/graph/partition.cc" "src/CMakeFiles/gnnlab_graph.dir/graph/partition.cc.o" "gcc" "src/CMakeFiles/gnnlab_graph.dir/graph/partition.cc.o.d"
  "/root/repo/src/graph/training_set.cc" "src/CMakeFiles/gnnlab_graph.dir/graph/training_set.cc.o" "gcc" "src/CMakeFiles/gnnlab_graph.dir/graph/training_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
