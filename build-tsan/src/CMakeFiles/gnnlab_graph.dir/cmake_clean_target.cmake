file(REMOVE_RECURSE
  "libgnnlab_graph.a"
)
