file(REMOVE_RECURSE
  "CMakeFiles/gnnlab_graph.dir/graph/csr_graph.cc.o"
  "CMakeFiles/gnnlab_graph.dir/graph/csr_graph.cc.o.d"
  "CMakeFiles/gnnlab_graph.dir/graph/dataset.cc.o"
  "CMakeFiles/gnnlab_graph.dir/graph/dataset.cc.o.d"
  "CMakeFiles/gnnlab_graph.dir/graph/edge_weights.cc.o"
  "CMakeFiles/gnnlab_graph.dir/graph/edge_weights.cc.o.d"
  "CMakeFiles/gnnlab_graph.dir/graph/generators.cc.o"
  "CMakeFiles/gnnlab_graph.dir/graph/generators.cc.o.d"
  "CMakeFiles/gnnlab_graph.dir/graph/graph_builder.cc.o"
  "CMakeFiles/gnnlab_graph.dir/graph/graph_builder.cc.o.d"
  "CMakeFiles/gnnlab_graph.dir/graph/graph_io.cc.o"
  "CMakeFiles/gnnlab_graph.dir/graph/graph_io.cc.o.d"
  "CMakeFiles/gnnlab_graph.dir/graph/graph_stats.cc.o"
  "CMakeFiles/gnnlab_graph.dir/graph/graph_stats.cc.o.d"
  "CMakeFiles/gnnlab_graph.dir/graph/partition.cc.o"
  "CMakeFiles/gnnlab_graph.dir/graph/partition.cc.o.d"
  "CMakeFiles/gnnlab_graph.dir/graph/training_set.cc.o"
  "CMakeFiles/gnnlab_graph.dir/graph/training_set.cc.o.d"
  "libgnnlab_graph.a"
  "libgnnlab_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnlab_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
