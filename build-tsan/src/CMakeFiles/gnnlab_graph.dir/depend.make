# Empty dependencies file for gnnlab_graph.
# This may be replaced when dependencies are built.
