# Empty dependencies file for gnnlab_sampling.
# This may be replaced when dependencies are built.
