file(REMOVE_RECURSE
  "CMakeFiles/gnnlab_sampling.dir/sampling/fastgcn.cc.o"
  "CMakeFiles/gnnlab_sampling.dir/sampling/fastgcn.cc.o.d"
  "CMakeFiles/gnnlab_sampling.dir/sampling/footprint.cc.o"
  "CMakeFiles/gnnlab_sampling.dir/sampling/footprint.cc.o.d"
  "CMakeFiles/gnnlab_sampling.dir/sampling/khop_reservoir.cc.o"
  "CMakeFiles/gnnlab_sampling.dir/sampling/khop_reservoir.cc.o.d"
  "CMakeFiles/gnnlab_sampling.dir/sampling/khop_uniform.cc.o"
  "CMakeFiles/gnnlab_sampling.dir/sampling/khop_uniform.cc.o.d"
  "CMakeFiles/gnnlab_sampling.dir/sampling/khop_weighted.cc.o"
  "CMakeFiles/gnnlab_sampling.dir/sampling/khop_weighted.cc.o.d"
  "CMakeFiles/gnnlab_sampling.dir/sampling/random_walk.cc.o"
  "CMakeFiles/gnnlab_sampling.dir/sampling/random_walk.cc.o.d"
  "CMakeFiles/gnnlab_sampling.dir/sampling/sample_block.cc.o"
  "CMakeFiles/gnnlab_sampling.dir/sampling/sample_block.cc.o.d"
  "CMakeFiles/gnnlab_sampling.dir/sampling/sampler.cc.o"
  "CMakeFiles/gnnlab_sampling.dir/sampling/sampler.cc.o.d"
  "CMakeFiles/gnnlab_sampling.dir/sampling/subgraph.cc.o"
  "CMakeFiles/gnnlab_sampling.dir/sampling/subgraph.cc.o.d"
  "libgnnlab_sampling.a"
  "libgnnlab_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnlab_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
