file(REMOVE_RECURSE
  "libgnnlab_sampling.a"
)
