
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sampling/fastgcn.cc" "src/CMakeFiles/gnnlab_sampling.dir/sampling/fastgcn.cc.o" "gcc" "src/CMakeFiles/gnnlab_sampling.dir/sampling/fastgcn.cc.o.d"
  "/root/repo/src/sampling/footprint.cc" "src/CMakeFiles/gnnlab_sampling.dir/sampling/footprint.cc.o" "gcc" "src/CMakeFiles/gnnlab_sampling.dir/sampling/footprint.cc.o.d"
  "/root/repo/src/sampling/khop_reservoir.cc" "src/CMakeFiles/gnnlab_sampling.dir/sampling/khop_reservoir.cc.o" "gcc" "src/CMakeFiles/gnnlab_sampling.dir/sampling/khop_reservoir.cc.o.d"
  "/root/repo/src/sampling/khop_uniform.cc" "src/CMakeFiles/gnnlab_sampling.dir/sampling/khop_uniform.cc.o" "gcc" "src/CMakeFiles/gnnlab_sampling.dir/sampling/khop_uniform.cc.o.d"
  "/root/repo/src/sampling/khop_weighted.cc" "src/CMakeFiles/gnnlab_sampling.dir/sampling/khop_weighted.cc.o" "gcc" "src/CMakeFiles/gnnlab_sampling.dir/sampling/khop_weighted.cc.o.d"
  "/root/repo/src/sampling/random_walk.cc" "src/CMakeFiles/gnnlab_sampling.dir/sampling/random_walk.cc.o" "gcc" "src/CMakeFiles/gnnlab_sampling.dir/sampling/random_walk.cc.o.d"
  "/root/repo/src/sampling/sample_block.cc" "src/CMakeFiles/gnnlab_sampling.dir/sampling/sample_block.cc.o" "gcc" "src/CMakeFiles/gnnlab_sampling.dir/sampling/sample_block.cc.o.d"
  "/root/repo/src/sampling/sampler.cc" "src/CMakeFiles/gnnlab_sampling.dir/sampling/sampler.cc.o" "gcc" "src/CMakeFiles/gnnlab_sampling.dir/sampling/sampler.cc.o.d"
  "/root/repo/src/sampling/subgraph.cc" "src/CMakeFiles/gnnlab_sampling.dir/sampling/subgraph.cc.o" "gcc" "src/CMakeFiles/gnnlab_sampling.dir/sampling/subgraph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_runtime.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
