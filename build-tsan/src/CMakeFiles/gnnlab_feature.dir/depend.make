# Empty dependencies file for gnnlab_feature.
# This may be replaced when dependencies are built.
