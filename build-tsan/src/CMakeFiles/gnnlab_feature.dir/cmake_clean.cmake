file(REMOVE_RECURSE
  "CMakeFiles/gnnlab_feature.dir/feature/extractor.cc.o"
  "CMakeFiles/gnnlab_feature.dir/feature/extractor.cc.o.d"
  "CMakeFiles/gnnlab_feature.dir/feature/feature_store.cc.o"
  "CMakeFiles/gnnlab_feature.dir/feature/feature_store.cc.o.d"
  "libgnnlab_feature.a"
  "libgnnlab_feature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnlab_feature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
