file(REMOVE_RECURSE
  "libgnnlab_feature.a"
)
