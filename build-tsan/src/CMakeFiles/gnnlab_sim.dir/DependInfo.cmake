
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_model.cc" "src/CMakeFiles/gnnlab_sim.dir/sim/cost_model.cc.o" "gcc" "src/CMakeFiles/gnnlab_sim.dir/sim/cost_model.cc.o.d"
  "/root/repo/src/sim/device.cc" "src/CMakeFiles/gnnlab_sim.dir/sim/device.cc.o" "gcc" "src/CMakeFiles/gnnlab_sim.dir/sim/device.cc.o.d"
  "/root/repo/src/sim/sim_engine.cc" "src/CMakeFiles/gnnlab_sim.dir/sim/sim_engine.cc.o" "gcc" "src/CMakeFiles/gnnlab_sim.dir/sim/sim_engine.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/gnnlab_sim.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/gnnlab_sim.dir/sim/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
