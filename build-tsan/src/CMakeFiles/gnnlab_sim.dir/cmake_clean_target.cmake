file(REMOVE_RECURSE
  "libgnnlab_sim.a"
)
