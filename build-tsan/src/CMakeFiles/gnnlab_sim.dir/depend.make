# Empty dependencies file for gnnlab_sim.
# This may be replaced when dependencies are built.
