file(REMOVE_RECURSE
  "CMakeFiles/gnnlab_sim.dir/sim/cost_model.cc.o"
  "CMakeFiles/gnnlab_sim.dir/sim/cost_model.cc.o.d"
  "CMakeFiles/gnnlab_sim.dir/sim/device.cc.o"
  "CMakeFiles/gnnlab_sim.dir/sim/device.cc.o.d"
  "CMakeFiles/gnnlab_sim.dir/sim/sim_engine.cc.o"
  "CMakeFiles/gnnlab_sim.dir/sim/sim_engine.cc.o.d"
  "CMakeFiles/gnnlab_sim.dir/sim/trace.cc.o"
  "CMakeFiles/gnnlab_sim.dir/sim/trace.cc.o.d"
  "libgnnlab_sim.a"
  "libgnnlab_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnlab_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
