# Empty dependencies file for gnnlab_common.
# This may be replaced when dependencies are built.
