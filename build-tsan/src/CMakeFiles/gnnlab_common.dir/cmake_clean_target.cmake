file(REMOVE_RECURSE
  "libgnnlab_common.a"
)
