file(REMOVE_RECURSE
  "CMakeFiles/gnnlab_common.dir/common/logging.cc.o"
  "CMakeFiles/gnnlab_common.dir/common/logging.cc.o.d"
  "CMakeFiles/gnnlab_common.dir/common/rng.cc.o"
  "CMakeFiles/gnnlab_common.dir/common/rng.cc.o.d"
  "CMakeFiles/gnnlab_common.dir/common/units.cc.o"
  "CMakeFiles/gnnlab_common.dir/common/units.cc.o.d"
  "libgnnlab_common.a"
  "libgnnlab_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnlab_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
