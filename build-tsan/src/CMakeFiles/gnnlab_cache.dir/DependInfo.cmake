
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache_policy.cc" "src/CMakeFiles/gnnlab_cache.dir/cache/cache_policy.cc.o" "gcc" "src/CMakeFiles/gnnlab_cache.dir/cache/cache_policy.cc.o.d"
  "/root/repo/src/cache/degree_policy.cc" "src/CMakeFiles/gnnlab_cache.dir/cache/degree_policy.cc.o" "gcc" "src/CMakeFiles/gnnlab_cache.dir/cache/degree_policy.cc.o.d"
  "/root/repo/src/cache/feature_cache.cc" "src/CMakeFiles/gnnlab_cache.dir/cache/feature_cache.cc.o" "gcc" "src/CMakeFiles/gnnlab_cache.dir/cache/feature_cache.cc.o.d"
  "/root/repo/src/cache/optimal_policy.cc" "src/CMakeFiles/gnnlab_cache.dir/cache/optimal_policy.cc.o" "gcc" "src/CMakeFiles/gnnlab_cache.dir/cache/optimal_policy.cc.o.d"
  "/root/repo/src/cache/presampling_policy.cc" "src/CMakeFiles/gnnlab_cache.dir/cache/presampling_policy.cc.o" "gcc" "src/CMakeFiles/gnnlab_cache.dir/cache/presampling_policy.cc.o.d"
  "/root/repo/src/cache/random_policy.cc" "src/CMakeFiles/gnnlab_cache.dir/cache/random_policy.cc.o" "gcc" "src/CMakeFiles/gnnlab_cache.dir/cache/random_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_sampling.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_feature.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_runtime.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
