file(REMOVE_RECURSE
  "CMakeFiles/gnnlab_cache.dir/cache/cache_policy.cc.o"
  "CMakeFiles/gnnlab_cache.dir/cache/cache_policy.cc.o.d"
  "CMakeFiles/gnnlab_cache.dir/cache/degree_policy.cc.o"
  "CMakeFiles/gnnlab_cache.dir/cache/degree_policy.cc.o.d"
  "CMakeFiles/gnnlab_cache.dir/cache/feature_cache.cc.o"
  "CMakeFiles/gnnlab_cache.dir/cache/feature_cache.cc.o.d"
  "CMakeFiles/gnnlab_cache.dir/cache/optimal_policy.cc.o"
  "CMakeFiles/gnnlab_cache.dir/cache/optimal_policy.cc.o.d"
  "CMakeFiles/gnnlab_cache.dir/cache/presampling_policy.cc.o"
  "CMakeFiles/gnnlab_cache.dir/cache/presampling_policy.cc.o.d"
  "CMakeFiles/gnnlab_cache.dir/cache/random_policy.cc.o"
  "CMakeFiles/gnnlab_cache.dir/cache/random_policy.cc.o.d"
  "libgnnlab_cache.a"
  "libgnnlab_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnlab_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
