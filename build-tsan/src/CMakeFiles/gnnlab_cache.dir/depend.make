# Empty dependencies file for gnnlab_cache.
# This may be replaced when dependencies are built.
