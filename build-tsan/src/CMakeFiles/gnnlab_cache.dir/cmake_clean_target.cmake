file(REMOVE_RECURSE
  "libgnnlab_cache.a"
)
