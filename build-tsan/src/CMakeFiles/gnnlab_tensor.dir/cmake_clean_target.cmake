file(REMOVE_RECURSE
  "libgnnlab_tensor.a"
)
