# Empty dependencies file for gnnlab_tensor.
# This may be replaced when dependencies are built.
