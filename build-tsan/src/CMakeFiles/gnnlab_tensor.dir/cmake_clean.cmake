file(REMOVE_RECURSE
  "CMakeFiles/gnnlab_tensor.dir/tensor/ops.cc.o"
  "CMakeFiles/gnnlab_tensor.dir/tensor/ops.cc.o.d"
  "CMakeFiles/gnnlab_tensor.dir/tensor/tensor.cc.o"
  "CMakeFiles/gnnlab_tensor.dir/tensor/tensor.cc.o.d"
  "libgnnlab_tensor.a"
  "libgnnlab_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnlab_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
