# Empty dependencies file for gnnlab_core.
# This may be replaced when dependencies are built.
