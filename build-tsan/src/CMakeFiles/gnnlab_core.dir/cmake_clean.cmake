file(REMOVE_RECURSE
  "CMakeFiles/gnnlab_core.dir/core/engine.cc.o"
  "CMakeFiles/gnnlab_core.dir/core/engine.cc.o.d"
  "CMakeFiles/gnnlab_core.dir/core/executors.cc.o"
  "CMakeFiles/gnnlab_core.dir/core/executors.cc.o.d"
  "CMakeFiles/gnnlab_core.dir/core/global_queue.cc.o"
  "CMakeFiles/gnnlab_core.dir/core/global_queue.cc.o.d"
  "CMakeFiles/gnnlab_core.dir/core/scheduler.cc.o"
  "CMakeFiles/gnnlab_core.dir/core/scheduler.cc.o.d"
  "CMakeFiles/gnnlab_core.dir/core/stats.cc.o"
  "CMakeFiles/gnnlab_core.dir/core/stats.cc.o.d"
  "CMakeFiles/gnnlab_core.dir/core/switching.cc.o"
  "CMakeFiles/gnnlab_core.dir/core/switching.cc.o.d"
  "CMakeFiles/gnnlab_core.dir/core/threaded_engine.cc.o"
  "CMakeFiles/gnnlab_core.dir/core/threaded_engine.cc.o.d"
  "CMakeFiles/gnnlab_core.dir/core/workload.cc.o"
  "CMakeFiles/gnnlab_core.dir/core/workload.cc.o.d"
  "libgnnlab_core.a"
  "libgnnlab_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnlab_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
