file(REMOVE_RECURSE
  "libgnnlab_core.a"
)
