
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/gnnlab_core.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/gnnlab_core.dir/core/engine.cc.o.d"
  "/root/repo/src/core/executors.cc" "src/CMakeFiles/gnnlab_core.dir/core/executors.cc.o" "gcc" "src/CMakeFiles/gnnlab_core.dir/core/executors.cc.o.d"
  "/root/repo/src/core/global_queue.cc" "src/CMakeFiles/gnnlab_core.dir/core/global_queue.cc.o" "gcc" "src/CMakeFiles/gnnlab_core.dir/core/global_queue.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/CMakeFiles/gnnlab_core.dir/core/scheduler.cc.o" "gcc" "src/CMakeFiles/gnnlab_core.dir/core/scheduler.cc.o.d"
  "/root/repo/src/core/stats.cc" "src/CMakeFiles/gnnlab_core.dir/core/stats.cc.o" "gcc" "src/CMakeFiles/gnnlab_core.dir/core/stats.cc.o.d"
  "/root/repo/src/core/switching.cc" "src/CMakeFiles/gnnlab_core.dir/core/switching.cc.o" "gcc" "src/CMakeFiles/gnnlab_core.dir/core/switching.cc.o.d"
  "/root/repo/src/core/threaded_engine.cc" "src/CMakeFiles/gnnlab_core.dir/core/threaded_engine.cc.o" "gcc" "src/CMakeFiles/gnnlab_core.dir/core/threaded_engine.cc.o.d"
  "/root/repo/src/core/workload.cc" "src/CMakeFiles/gnnlab_core.dir/core/workload.cc.o" "gcc" "src/CMakeFiles/gnnlab_core.dir/core/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_cache.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_sampling.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_feature.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_nn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_runtime.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
