# Empty dependencies file for gnnlab_baselines.
# This may be replaced when dependencies are built.
