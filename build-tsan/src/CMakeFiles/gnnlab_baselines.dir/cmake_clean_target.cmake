file(REMOVE_RECURSE
  "libgnnlab_baselines.a"
)
