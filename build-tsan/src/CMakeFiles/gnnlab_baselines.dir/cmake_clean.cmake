file(REMOVE_RECURSE
  "CMakeFiles/gnnlab_baselines.dir/baselines/cpu_runner.cc.o"
  "CMakeFiles/gnnlab_baselines.dir/baselines/cpu_runner.cc.o.d"
  "CMakeFiles/gnnlab_baselines.dir/baselines/timeshare_runner.cc.o"
  "CMakeFiles/gnnlab_baselines.dir/baselines/timeshare_runner.cc.o.d"
  "libgnnlab_baselines.a"
  "libgnnlab_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnlab_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
