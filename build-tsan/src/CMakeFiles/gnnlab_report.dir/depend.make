# Empty dependencies file for gnnlab_report.
# This may be replaced when dependencies are built.
