file(REMOVE_RECURSE
  "libgnnlab_report.a"
)
