file(REMOVE_RECURSE
  "CMakeFiles/gnnlab_report.dir/report/json.cc.o"
  "CMakeFiles/gnnlab_report.dir/report/json.cc.o.d"
  "CMakeFiles/gnnlab_report.dir/report/table.cc.o"
  "CMakeFiles/gnnlab_report.dir/report/table.cc.o.d"
  "libgnnlab_report.a"
  "libgnnlab_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnlab_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
