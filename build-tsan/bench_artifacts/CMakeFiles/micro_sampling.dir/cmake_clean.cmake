file(REMOVE_RECURSE
  "../bench/micro_sampling"
  "../bench/micro_sampling.pdb"
  "CMakeFiles/micro_sampling.dir/micro_sampling.cpp.o"
  "CMakeFiles/micro_sampling.dir/micro_sampling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
