# Empty dependencies file for micro_sampling.
# This may be replaced when dependencies are built.
