file(REMOVE_RECURSE
  "../bench/table2_similarity"
  "../bench/table2_similarity.pdb"
  "CMakeFiles/table2_similarity.dir/table2_similarity.cpp.o"
  "CMakeFiles/table2_similarity.dir/table2_similarity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
