file(REMOVE_RECURSE
  "../bench/table5_stage_breakdown"
  "../bench/table5_stage_breakdown.pdb"
  "CMakeFiles/table5_stage_breakdown.dir/table5_stage_breakdown.cpp.o"
  "CMakeFiles/table5_stage_breakdown.dir/table5_stage_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_stage_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
