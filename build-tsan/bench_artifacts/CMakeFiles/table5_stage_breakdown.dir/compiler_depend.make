# Empty compiler generated dependencies file for table5_stage_breakdown.
# This may be replaced when dependencies are built.
