file(REMOVE_RECURSE
  "../bench/fig16_convergence"
  "../bench/fig16_convergence.pdb"
  "CMakeFiles/fig16_convergence.dir/fig16_convergence.cpp.o"
  "CMakeFiles/fig16_convergence.dir/fig16_convergence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
