file(REMOVE_RECURSE
  "../bench/micro_queue"
  "../bench/micro_queue.pdb"
  "CMakeFiles/micro_queue.dir/micro_queue.cpp.o"
  "CMakeFiles/micro_queue.dir/micro_queue.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
