file(REMOVE_RECURSE
  "../bench/fig13_policy_e2e"
  "../bench/fig13_policy_e2e.pdb"
  "CMakeFiles/fig13_policy_e2e.dir/fig13_policy_e2e.cpp.o"
  "CMakeFiles/fig13_policy_e2e.dir/fig13_policy_e2e.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_policy_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
