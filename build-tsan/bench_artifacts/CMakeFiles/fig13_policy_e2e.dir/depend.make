# Empty dependencies file for fig13_policy_e2e.
# This may be replaced when dependencies are built.
