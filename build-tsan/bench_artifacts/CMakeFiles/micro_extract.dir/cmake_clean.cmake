file(REMOVE_RECURSE
  "../bench/micro_extract"
  "../bench/micro_extract.pdb"
  "CMakeFiles/micro_extract.dir/micro_extract.cpp.o"
  "CMakeFiles/micro_extract.dir/micro_extract.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
