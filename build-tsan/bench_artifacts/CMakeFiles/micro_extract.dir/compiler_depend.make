# Empty compiler generated dependencies file for micro_extract.
# This may be replaced when dependencies are built.
