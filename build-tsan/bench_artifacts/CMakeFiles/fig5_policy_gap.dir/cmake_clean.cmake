file(REMOVE_RECURSE
  "../bench/fig5_policy_gap"
  "../bench/fig5_policy_gap.pdb"
  "CMakeFiles/fig5_policy_gap.dir/fig5_policy_gap.cpp.o"
  "CMakeFiles/fig5_policy_gap.dir/fig5_policy_gap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_policy_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
