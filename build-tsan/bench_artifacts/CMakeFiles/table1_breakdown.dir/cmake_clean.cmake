file(REMOVE_RECURSE
  "../bench/table1_breakdown"
  "../bench/table1_breakdown.pdb"
  "CMakeFiles/table1_breakdown.dir/table1_breakdown.cpp.o"
  "CMakeFiles/table1_breakdown.dir/table1_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
