file(REMOVE_RECURSE
  "../bench/fig17_switching"
  "../bench/fig17_switching.pdb"
  "CMakeFiles/fig17_switching.dir/fig17_switching.cpp.o"
  "CMakeFiles/fig17_switching.dir/fig17_switching.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
