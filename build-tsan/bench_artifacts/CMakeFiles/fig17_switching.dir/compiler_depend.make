# Empty compiler generated dependencies file for fig17_switching.
# This may be replaced when dependencies are built.
