# Empty compiler generated dependencies file for fig10_hitrate.
# This may be replaced when dependencies are built.
