file(REMOVE_RECURSE
  "../bench/fig10_hitrate"
  "../bench/fig10_hitrate.pdb"
  "CMakeFiles/fig10_hitrate.dir/fig10_hitrate.cpp.o"
  "CMakeFiles/fig10_hitrate.dir/fig10_hitrate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
