file(REMOVE_RECURSE
  "../bench/fig14_scalability"
  "../bench/fig14_scalability.pdb"
  "CMakeFiles/fig14_scalability.dir/fig14_scalability.cpp.o"
  "CMakeFiles/fig14_scalability.dir/fig14_scalability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
