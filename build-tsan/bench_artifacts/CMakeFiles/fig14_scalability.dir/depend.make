# Empty dependencies file for fig14_scalability.
# This may be replaced when dependencies are built.
