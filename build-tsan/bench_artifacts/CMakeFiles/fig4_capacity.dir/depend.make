# Empty dependencies file for fig4_capacity.
# This may be replaced when dependencies are built.
