file(REMOVE_RECURSE
  "../bench/fig4_capacity"
  "../bench/fig4_capacity.pdb"
  "CMakeFiles/fig4_capacity.dir/fig4_capacity.cpp.o"
  "CMakeFiles/fig4_capacity.dir/fig4_capacity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
