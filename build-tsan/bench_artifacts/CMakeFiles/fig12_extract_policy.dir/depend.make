# Empty dependencies file for fig12_extract_policy.
# This may be replaced when dependencies are built.
