file(REMOVE_RECURSE
  "../bench/fig12_extract_policy"
  "../bench/fig12_extract_policy.pdb"
  "CMakeFiles/fig12_extract_policy.dir/fig12_extract_policy.cpp.o"
  "CMakeFiles/fig12_extract_policy.dir/fig12_extract_policy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_extract_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
