file(REMOVE_RECURSE
  "../bench/fig3_memory"
  "../bench/fig3_memory.pdb"
  "CMakeFiles/fig3_memory.dir/fig3_memory.cpp.o"
  "CMakeFiles/fig3_memory.dir/fig3_memory.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
