# Empty dependencies file for fig11_presc.
# This may be replaced when dependencies are built.
