file(REMOVE_RECURSE
  "../bench/fig11_presc"
  "../bench/fig11_presc.pdb"
  "CMakeFiles/fig11_presc.dir/fig11_presc.cpp.o"
  "CMakeFiles/fig11_presc.dir/fig11_presc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_presc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
