file(REMOVE_RECURSE
  "../bench/table4_overall"
  "../bench/table4_overall.pdb"
  "CMakeFiles/table4_overall.dir/table4_overall.cpp.o"
  "CMakeFiles/table4_overall.dir/table4_overall.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
