
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table4_overall.cpp" "bench_artifacts/CMakeFiles/table4_overall.dir/table4_overall.cpp.o" "gcc" "bench_artifacts/CMakeFiles/table4_overall.dir/table4_overall.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_baselines.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_report.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_cache.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_feature.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_nn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_sampling.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_runtime.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/gnnlab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
