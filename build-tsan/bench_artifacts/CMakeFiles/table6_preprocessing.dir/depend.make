# Empty dependencies file for table6_preprocessing.
# This may be replaced when dependencies are built.
