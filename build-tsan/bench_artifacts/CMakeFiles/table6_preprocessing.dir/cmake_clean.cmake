file(REMOVE_RECURSE
  "../bench/table6_preprocessing"
  "../bench/table6_preprocessing.pdb"
  "CMakeFiles/table6_preprocessing.dir/table6_preprocessing.cpp.o"
  "CMakeFiles/table6_preprocessing.dir/table6_preprocessing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_preprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
