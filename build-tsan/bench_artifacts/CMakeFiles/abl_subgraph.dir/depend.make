# Empty dependencies file for abl_subgraph.
# This may be replaced when dependencies are built.
