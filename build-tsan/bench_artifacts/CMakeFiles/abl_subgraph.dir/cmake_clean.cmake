file(REMOVE_RECURSE
  "../bench/abl_subgraph"
  "../bench/abl_subgraph.pdb"
  "CMakeFiles/abl_subgraph.dir/abl_subgraph.cpp.o"
  "CMakeFiles/abl_subgraph.dir/abl_subgraph.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_subgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
