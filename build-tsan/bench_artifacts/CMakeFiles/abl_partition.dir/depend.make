# Empty dependencies file for abl_partition.
# This may be replaced when dependencies are built.
