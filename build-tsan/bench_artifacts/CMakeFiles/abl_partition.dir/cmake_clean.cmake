file(REMOVE_RECURSE
  "../bench/abl_partition"
  "../bench/abl_partition.pdb"
  "CMakeFiles/abl_partition.dir/abl_partition.cpp.o"
  "CMakeFiles/abl_partition.dir/abl_partition.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
