# Empty compiler generated dependencies file for fig15_allocation.
# This may be replaced when dependencies are built.
