file(REMOVE_RECURSE
  "../bench/fig15_allocation"
  "../bench/fig15_allocation.pdb"
  "CMakeFiles/fig15_allocation.dir/fig15_allocation.cpp.o"
  "CMakeFiles/fig15_allocation.dir/fig15_allocation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
