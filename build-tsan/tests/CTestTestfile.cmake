# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/common_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/graph_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/sampling_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/feature_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/cache_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/sim_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/runtime_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/tensor_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/nn_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/core_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/engine_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/baselines_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/report_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/extensions_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/property_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/threaded_engine_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/serialization_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/concurrency_test[1]_include.cmake")
