# Empty compiler generated dependencies file for gnnlab_cli.
# This may be replaced when dependencies are built.
