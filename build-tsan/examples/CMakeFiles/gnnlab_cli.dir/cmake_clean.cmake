file(REMOVE_RECURSE
  "CMakeFiles/gnnlab_cli.dir/gnnlab_cli.cpp.o"
  "CMakeFiles/gnnlab_cli.dir/gnnlab_cli.cpp.o.d"
  "gnnlab_cli"
  "gnnlab_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnlab_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
