# Empty dependencies file for train_convergence.
# This may be replaced when dependencies are built.
