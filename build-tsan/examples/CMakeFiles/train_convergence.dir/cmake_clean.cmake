file(REMOVE_RECURSE
  "CMakeFiles/train_convergence.dir/train_convergence.cpp.o"
  "CMakeFiles/train_convergence.dir/train_convergence.cpp.o.d"
  "train_convergence"
  "train_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
