# Empty dependencies file for factored_vs_timeshare.
# This may be replaced when dependencies are built.
