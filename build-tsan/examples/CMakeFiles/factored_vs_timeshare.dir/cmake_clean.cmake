file(REMOVE_RECURSE
  "CMakeFiles/factored_vs_timeshare.dir/factored_vs_timeshare.cpp.o"
  "CMakeFiles/factored_vs_timeshare.dir/factored_vs_timeshare.cpp.o.d"
  "factored_vs_timeshare"
  "factored_vs_timeshare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factored_vs_timeshare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
