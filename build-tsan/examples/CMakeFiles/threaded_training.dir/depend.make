# Empty dependencies file for threaded_training.
# This may be replaced when dependencies are built.
