file(REMOVE_RECURSE
  "CMakeFiles/threaded_training.dir/threaded_training.cpp.o"
  "CMakeFiles/threaded_training.dir/threaded_training.cpp.o.d"
  "threaded_training"
  "threaded_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
