# Empty dependencies file for single_gpu_training.
# This may be replaced when dependencies are built.
