file(REMOVE_RECURSE
  "CMakeFiles/single_gpu_training.dir/single_gpu_training.cpp.o"
  "CMakeFiles/single_gpu_training.dir/single_gpu_training.cpp.o.d"
  "single_gpu_training"
  "single_gpu_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_gpu_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
