// Example: the REAL concurrent GNNLab runtime — Sampler and Trainer
// threads linked by the bounded host-memory queue, PreSC cache, dynamic
// switching, and genuine asynchronous training with bounded staleness.
// This is the production counterpart of the simulated engine the benches
// use; wall-clock numbers here are real.
//
//   ./build/examples/threaded_training [samplers] [trainers] [epochs] [extract_threads]
//
// extract_threads sizes the shared CPU pool for the parallel hot paths
// (feature gather + k-hop expansion): 0 = all hardware threads (default),
// 1 = serial. Sampled blocks and gathered bytes are identical either way.
#include <cstdio>
#include <cstdlib>

#include "core/threaded_engine.h"
#include "nn/checkpoint.h"
#include "report/table.h"

using namespace gnnlab;  // NOLINT: example brevity.

int main(int argc, char** argv) {
  const int samplers = argc > 1 ? std::atoi(argv[1]) : 1;
  const int trainers = argc > 2 ? std::atoi(argv[2]) : 2;
  const std::size_t epochs = argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 6;
  const std::size_t extract_threads =
      argc > 4 ? static_cast<std::size_t>(std::atoll(argv[4])) : 0;

  const Dataset dataset = MakeDataset(DatasetId::kProducts, /*scale=*/0.5, /*seed=*/17);
  constexpr std::uint32_t kClasses = 10;
  const auto labels = MakeCommunityLabels(dataset.graph.num_vertices(), 128, kClasses);
  Rng rng(17);
  const FeatureStore features = FeatureStore::Clustered(
      dataset.graph.num_vertices(), /*dim=*/16, labels, kClasses, /*noise=*/0.5, &rng);
  std::vector<VertexId> eval;
  for (VertexId v = 7; v < dataset.graph.num_vertices() && eval.size() < 400; v += 13) {
    eval.push_back(v);
  }

  RealTrainingOptions real;
  real.features = &features;
  real.labels = labels;
  real.eval_vertices = eval;
  real.num_classes = kClasses;
  real.hidden_dim = 16;

  ThreadedEngineOptions options;
  options.num_samplers = samplers;
  options.num_trainers = trainers;
  options.epochs = epochs;
  options.seed = 17;
  options.policy = CachePolicyKind::kPreSC1;
  options.cache_ratio = 0.2;
  options.staleness_bound = 4;
  options.extract_threads = extract_threads;
  options.real = &real;

  std::printf("threaded GNNLab: %dS %dT on %s (%u vertices), PreSC cache 20%%, pool=%zu\n\n",
              samplers, trainers, dataset.name.c_str(), dataset.graph.num_vertices(),
              ThreadPool::ResolveThreads(extract_threads));
  ThreadedEngine engine(dataset, StandardWorkload(GnnModelKind::kGraphSage), options);
  const ThreadedRunReport report = engine.Run();

  TablePrinter table({"epoch", "wall(s)", "loss", "eval acc", "hit%", "switched"});
  for (std::size_t e = 0; e < report.epochs.size(); ++e) {
    const ThreadedEpochReport& epoch = report.epochs[e];
    table.AddRow({std::to_string(e + 1), Fmt(epoch.wall_seconds, 3),
                  Fmt(epoch.mean_loss, 3), FmtPercent(epoch.eval_accuracy, 1),
                  FmtPercent(epoch.extract.HitRate()), std::to_string(epoch.switched_batches)});
  }
  table.Print();
  std::printf(
      "\nEvery number above is real: OS threads, a blocking MPMC queue, live\n"
      "gradient descent. The same design elements the simulator models —\n"
      "PreSC, cache marking, dynamic switching — run here for real.\n");
  return 0;
}
