// Example: the REAL concurrent GNNLab runtime — Sampler and Trainer
// threads linked by the bounded host-memory queue, PreSC cache, dynamic
// switching, and genuine asynchronous training with bounded staleness.
// This is the production counterpart of the simulated engine the benches
// use; wall-clock numbers here are real.
//
//   ./build/examples/threaded_training [samplers] [trainers] [epochs] [extract_threads]
//       [--cache-mb=MB] [--host-cache-mb=MB] [--host-policy=POLICY] [--ssd-mbps=MB]
//       [--trace-out=FILE] [--flow-out=FILE] [--metrics-out=FILE] [--report-out=FILE]
//       [--prom-out=FILE] [--prom-port=N] [--alert=RULE] [--snapshot-ms=N]
//       [--load-checkpoint=FILE] [--save-checkpoint=FILE]
//       [--dump-dir=DIR] [--abort-after-batches=N] [--log-json] [--stream]
//
// extract_threads sizes the shared CPU pool for the parallel hot paths
// (feature gather + k-hop expansion): 0 = all hardware threads (default),
// 1 = serial. Sampled blocks and gathered bytes are identical either way.
//
// --trace-out writes a Chrome/Perfetto trace (one lane per Sampler/Trainer
// thread, one span per stage), --flow-out writes the per-minibatch flow
// trace (one flow per batch, linked across lanes with Perfetto flow
// arrows), --metrics-out streams periodic JSON-lines telemetry snapshots,
// --report-out writes the full run report (per-stage p50/p95/p99 latencies,
// critical-path attribution, switch decision log + snapshot series) as
// JSON. --prom-out writes a Prometheus text exposition of the final metric
// state; --prom-port serves the same live on 127.0.0.1 (0 = ephemeral
// port). --alert adds a health rule, e.g. --alert="queue.depth > 32" or
// --alert="slow_train: stage.train p99 > 0.5" (repeatable); firing rules
// surface as alert.* gauges and in the switch decision log.
// --cache-mb gives the GPU cache tier a byte budget (overrides the default
// 20% ratio); --host-cache-mb enables the host tier of the tiered feature
// store (GPU-cache misses hit host DRAM, overflowing to a modeled SSD),
// --host-policy picks its eviction policy (belady|lru|degree|random),
// --ssd-mbps sets the modeled SSD read bandwidth.
// --load-checkpoint warm-starts the model from a saved checkpoint;
// --save-checkpoint persists the trained weights for later warm starts or
// the serving example.
// --dump-dir arms the diagnostics layer: fatal signals and alert rising
// edges write a self-contained crash bundle (gnnlab_diag.*.json) into DIR,
// and GET /debug/dump on the --prom-port server returns the same bundle
// live. --abort-after-batches=N injects a std::abort() after N trained
// batches (crash-bundle smoke tests). --log-json switches the log sink to
// structured JSONL.
// --stream swaps the static Products stand-in for a seeded temporal-growth
// graph whose newest 30% of edges are ingested at epoch boundaries while
// the Sampler/Trainer threads run (temporal k-hop sampling + incremental
// cache re-ranking — the ingest-while-training smoke).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/threaded_engine.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "nn/checkpoint.h"
#include "obs/diagnostics.h"
#include "obs/health.h"
#include "report/json.h"
#include "report/table.h"
#include "stream/drift_harness.h"

using namespace gnnlab;  // NOLINT: example brevity.

int main(int argc, char** argv) {
  int positional[4] = {1, 2, 6, 0};
  int num_positional = 0;
  std::string trace_out;
  std::string flow_out;
  std::string metrics_out;
  std::string report_out;
  std::string prom_out;
  std::string load_checkpoint;
  std::string save_checkpoint;
  std::string dump_dir;
  std::size_t abort_after_batches = 0;
  double cache_mb = 0.0;
  double host_cache_mb = 0.0;
  double ssd_mbps = 0.0;
  HostEvictPolicy host_policy = HostEvictPolicy::kBelady;
  int prom_port = -1;
  std::vector<AlertRule> alert_rules;
  double snapshot_ms = 50.0;
  bool stream = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      trace_out = arg + 12;
    } else if (std::strncmp(arg, "--flow-out=", 11) == 0) {
      flow_out = arg + 11;
    } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      metrics_out = arg + 14;
    } else if (std::strncmp(arg, "--report-out=", 13) == 0) {
      report_out = arg + 13;
    } else if (std::strncmp(arg, "--prom-out=", 11) == 0) {
      prom_out = arg + 11;
    } else if (std::strncmp(arg, "--prom-port=", 12) == 0) {
      prom_port = std::atoi(arg + 12);
    } else if (std::strncmp(arg, "--alert=", 8) == 0) {
      AlertRule rule;
      std::string error;
      if (!ParseAlertRule(arg + 8, &rule, &error)) {
        std::fprintf(stderr, "bad --alert rule: %s\n", error.c_str());
        return 1;
      }
      alert_rules.push_back(std::move(rule));
    } else if (std::strncmp(arg, "--snapshot-ms=", 14) == 0) {
      snapshot_ms = std::atof(arg + 14);
    } else if (std::strncmp(arg, "--cache-mb=", 11) == 0) {
      cache_mb = std::atof(arg + 11);
    } else if (std::strncmp(arg, "--host-cache-mb=", 16) == 0) {
      host_cache_mb = std::atof(arg + 16);
    } else if (std::strncmp(arg, "--ssd-mbps=", 11) == 0) {
      ssd_mbps = std::atof(arg + 11);
    } else if (std::strncmp(arg, "--host-policy=", 14) == 0) {
      const auto parsed = ParseHostEvictPolicy(arg + 14);
      if (!parsed) {
        std::fprintf(stderr, "unknown --host-policy '%s' (want belady|lru|degree|random)\n",
                     arg + 14);
        return 1;
      }
      host_policy = *parsed;
    } else if (std::strncmp(arg, "--load-checkpoint=", 18) == 0) {
      load_checkpoint = arg + 18;
    } else if (std::strncmp(arg, "--save-checkpoint=", 18) == 0) {
      save_checkpoint = arg + 18;
    } else if (std::strncmp(arg, "--dump-dir=", 11) == 0) {
      dump_dir = arg + 11;
    } else if (std::strncmp(arg, "--abort-after-batches=", 22) == 0) {
      abort_after_batches = static_cast<std::size_t>(std::atoi(arg + 22));
    } else if (std::strcmp(arg, "--log-json") == 0) {
      SetLogFormat(LogFormat::kJsonl);
    } else if (std::strcmp(arg, "--stream") == 0) {
      stream = true;
    } else if (num_positional < 4) {
      positional[num_positional++] = std::atoi(arg);
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg);
      return 1;
    }
  }
  const int samplers = positional[0];
  const int trainers = positional[1];
  const auto epochs = static_cast<std::size_t>(positional[2]);
  const auto extract_threads = static_cast<std::size_t>(positional[3]);

  // --stream: a seeded temporal-growth graph; the oldest 70% of edges form
  // the snapshot the cache is profiled on, the rest stream in per epoch.
  Dataset dataset;
  std::optional<DynamicGraph> live;
  std::vector<std::vector<TimestampedEdge>> schedule(epochs);
  std::size_t stream_rest = 0;
  if (stream) {
    TemporalGrowthParams growth;
    growth.num_vertices = 20000;
    growth.edges_per_vertex = 8;
    growth.churn_edges_per_vertex = 3;
    Rng growth_rng(17);
    std::vector<TimestampedEdge> events;
    GenerateTemporalGrowth(growth, &growth_rng, &events);
    const std::size_t base_count = events.size() * 7 / 10;
    GraphBuilder builder(growth.num_vertices);
    builder.AddTimestampedEdges(
        std::vector<TimestampedEdge>(events.begin(),
                                     events.begin() + static_cast<std::ptrdiff_t>(base_count)));
    std::string error;
    std::optional<TemporalGraph> base = std::move(builder).BuildTemporal(&error);
    if (!base.has_value()) {
      std::fprintf(stderr, "temporal snapshot invalid: %s\n", error.c_str());
      return 1;
    }
    dataset.id = DatasetId::kProducts;
    dataset.name = "temporal-growth";
    dataset.graph = base->graph;
    Rng train_rng(18);
    dataset.train_set = TrainingSet::SelectUniform(growth.num_vertices, 2048, &train_rng);
    dataset.feature_dim = 16;
    dataset.batch_size = 64;
    live.emplace(std::move(*base));
    stream_rest = events.size() - base_count;
    if (epochs > 1 && stream_rest > 0) {
      const std::size_t chunk = (stream_rest + epochs - 2) / (epochs - 1);
      std::size_t cursor = base_count;
      for (std::size_t e = 1; e < epochs && cursor < events.size(); ++e) {
        const std::size_t end = std::min(events.size(), cursor + chunk);
        schedule[e].assign(events.begin() + static_cast<std::ptrdiff_t>(cursor),
                           events.begin() + static_cast<std::ptrdiff_t>(end));
        cursor = end;
      }
    }
  } else {
    dataset = MakeDataset(DatasetId::kProducts, /*scale=*/0.5, /*seed=*/17);
  }
  constexpr std::uint32_t kClasses = 10;
  const auto labels = MakeCommunityLabels(dataset.graph.num_vertices(), 128, kClasses);
  Rng rng(17);
  const FeatureStore features = FeatureStore::Clustered(
      dataset.graph.num_vertices(), /*dim=*/16, labels, kClasses, /*noise=*/0.5, &rng);
  std::vector<VertexId> eval;
  for (VertexId v = 7; v < dataset.graph.num_vertices() && eval.size() < 400; v += 13) {
    eval.push_back(v);
  }

  RealTrainingOptions real;
  real.features = &features;
  real.labels = labels;
  real.eval_vertices = eval;
  real.num_classes = kClasses;
  real.hidden_dim = 16;

  RuntimeTracer tracer;
  FlowTracer flows;
  MetricRegistry metrics;
  HealthMonitor::Options health_options;
  health_options.rules = alert_rules;
  health_options.exposition_path = prom_out;
  HealthMonitor health(&metrics, health_options);
  if (!dump_dir.empty()) {
    DiagnosticsHub* hub = DiagnosticsHub::Global();
    hub->SetDumpDir(dump_dir);
    hub->SetConfig("example", "threaded_training");
    InstallCrashHandlers();
    InstallLogRecorderBridge();
    ArmAlertEdgeDumps(&health);
  }
  if (prom_port >= 0) {
    const int port = health.StartServer(prom_port);
    if (port < 0) {
      return 1;
    }
    std::printf("serving Prometheus metrics on http://127.0.0.1:%d/metrics\n", port);
  }

  ThreadedEngineOptions options;
  options.num_samplers = samplers;
  options.num_trainers = trainers;
  options.epochs = epochs;
  options.seed = 17;
  options.policy = CachePolicyKind::kPreSC1;
  options.cache_ratio = 0.2;
  options.staleness_bound = 4;
  options.cache_budget_bytes = static_cast<ByteCount>(cache_mb * static_cast<double>(kMiB));
  options.tiers.host_budget_bytes =
      static_cast<ByteCount>(host_cache_mb * static_cast<double>(kMiB));
  options.tiers.host_policy = host_policy;
  if (ssd_mbps > 0.0) {
    options.tiers.ssd_read_bandwidth = ssd_mbps * static_cast<double>(kMiB);
  }
  options.extract_threads = extract_threads;
  options.real = &real;
  const Workload workload = stream ? TemporalGcnWorkload(/*window=*/0.35f)
                                   : StandardWorkload(GnnModelKind::kGraphSage);
  std::unique_ptr<StreamEngineHooks> hooks;
  if (stream) {
    StreamEngineHooksOptions hook_options;
    hook_options.fanouts = workload.fanouts;
    hook_options.window = workload.temporal_window;
    hook_options.mode = RerankMode::kIncremental;
    hook_options.feature_dim = dataset.feature_dim;
    hook_options.metrics = &metrics;
    hooks = std::make_unique<StreamEngineHooks>(&*live, std::move(schedule), hook_options);
    options.stream = hooks.get();
  }
  if (!trace_out.empty()) {
    options.tracer = &tracer;
  }
  if (!flow_out.empty()) {
    options.flows = &flows;
  }
  options.health = &health;
  options.metrics = &metrics;
  options.metrics_out = metrics_out;
  options.snapshot_interval_seconds = snapshot_ms / 1000.0;
  options.load_checkpoint = load_checkpoint;
  options.save_checkpoint = save_checkpoint;
  options.debug_abort_after_batches = abort_after_batches;

  std::printf("threaded GNNLab: %dS %dT on %s (%u vertices), PreSC cache 20%%, pool=%zu\n\n",
              samplers, trainers, dataset.name.c_str(), dataset.graph.num_vertices(),
              ThreadPool::ResolveThreads(extract_threads));
  ThreadedEngine engine(dataset, workload, options);
  const ThreadedRunReport report = engine.Run();

  if (hooks != nullptr) {
    std::printf("stream ingest: %zu edges applied (%zu duplicates dropped), "
                "%zu compactions, %zu rows admitted / %zu evicted by re-ranking\n",
                hooks->ingestor().total_applied(), hooks->ingestor().total_duplicates(),
                hooks->ingestor().total_compactions(), hooks->total_admitted(),
                hooks->total_evicted());
    if (hooks->ingestor().total_applied() + hooks->ingestor().total_duplicates() !=
        stream_rest) {
      std::fprintf(stderr, "stream ingest lost events: applied+duplicates != scheduled\n");
      return 1;
    }
  }

  TablePrinter table({"epoch", "wall(s)", "loss", "eval acc", "hit%", "switched",
                      "train p50(ms)", "train p99(ms)"});
  for (std::size_t e = 0; e < report.epochs.size(); ++e) {
    const ThreadedEpochReport& epoch = report.epochs[e];
    table.AddRow({std::to_string(e + 1), Fmt(epoch.wall_seconds, 3),
                  Fmt(epoch.mean_loss, 3), FmtPercent(epoch.eval_accuracy, 1),
                  FmtPercent(epoch.extract.HitRate()), std::to_string(epoch.switched_batches),
                  Fmt(epoch.latency.train.p50 * 1e3, 2),
                  Fmt(epoch.latency.train.p99 * 1e3, 2)});
  }
  table.Print();

  for (std::size_t e = 0; e < report.epochs.size(); ++e) {
    const TierEpochStats& tiers = report.epochs[e].tiers;
    if (tiers.Any()) {
      std::printf("epoch %zu tiers: host hits %zu, ssd fetches %zu (host hit %.1f%%)\n",
                  e + 1, tiers.host_hits, tiers.ssd_fetches, 100.0 * tiers.HostHitRate());
    }
  }

  // Where did minibatch latency go (critical-path fold over the flow DAGs)?
  if (report.attribution.flows > 0) {
    const StageBlame fractions = report.attribution.Fractions();
    std::printf("\ncritical-path attribution over %zu flows (dominant: %s):\n",
                report.attribution.flows, report.attribution.DominantStage());
    for (std::size_t i = 0; i < kNumBlameStages; ++i) {
      std::printf("  %-13s %5.1f%%\n", kBlameStageNames[i],
                  100.0 * fractions.Component(i));
    }
  }
  std::size_t pressure_fetches = 0;
  for (const SwitchDecision& d : report.switch_decisions) {
    if (d.pressure_override) {
      ++pressure_fetches;
    }
  }
  if (!report.switch_decisions.empty()) {
    std::printf("switch decisions logged: %zu (%zu forced by queue-pressure alerts)\n",
                report.switch_decisions.size(), pressure_fetches);
  }
  for (const AlertState& state : health.Evaluate(/*force=*/true)) {
    std::printf("alert %-24s %s (value %.4g, threshold %c %.4g)\n",
                state.rule.name.c_str(), state.firing ? "FIRING" : "ok", state.value,
                state.rule.op, state.rule.threshold);
  }

  if (!trace_out.empty()) {
    if (tracer.WriteChromeTrace(trace_out)) {
      std::printf("\nwrote %zu trace spans to %s (load in chrome://tracing or Perfetto)\n",
                  tracer.size(), trace_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n", trace_out.c_str());
      return 1;
    }
  }
  if (!flow_out.empty()) {
    if (flows.WriteChromeTrace(flow_out)) {
      std::printf("wrote %zu flow steps to %s (Perfetto arrows link each minibatch)\n",
                  flows.size(), flow_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write flow trace to %s\n", flow_out.c_str());
      return 1;
    }
  }
  if (!prom_out.empty()) {
    if (!health.WriteExposition()) {
      return 1;
    }
    std::printf("wrote Prometheus exposition to %s\n", prom_out.c_str());
  }
  if (!metrics_out.empty()) {
    std::printf("streamed %zu telemetry snapshots to %s\n", report.snapshots.size(),
                metrics_out.c_str());
  }
  if (!report_out.empty()) {
    if (!WriteThreadedRunReportJson(report, report_out)) {
      return 1;
    }
    std::printf("wrote run report JSON to %s\n", report_out.c_str());
  }
  if (!load_checkpoint.empty()) {
    std::printf("warm-started from checkpoint %s\n", load_checkpoint.c_str());
  }
  if (!save_checkpoint.empty()) {
    std::printf("saved model checkpoint to %s\n", save_checkpoint.c_str());
  }
  std::printf(
      "\nEvery number above is real: OS threads, a blocking MPMC queue, live\n"
      "gradient descent. The same design elements the simulator models —\n"
      "PreSC, cache marking, dynamic switching — run here for real.\n");
  return 0;
}
