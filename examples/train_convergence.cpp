// Example: genuine end-to-end GNN training through the factored engine — a
// product-recommendation-style scenario: classify items of a co-purchase
// graph into departments from noisy embeddings, using GraphSAGE with real
// forward/backward passes, Adam, and synchronous data-parallel updates.
//
//   ./build/examples/train_convergence [epochs]
#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "report/table.h"

using namespace gnnlab;  // NOLINT: example brevity.

int main(int argc, char** argv) {
  const std::size_t epochs = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 8;

  // A co-purchase graph whose communities define ground-truth departments.
  const Dataset dataset = MakeDataset(DatasetId::kProducts, /*scale=*/0.5, /*seed=*/3);
  constexpr std::uint32_t kClasses = 10;
  constexpr VertexId kCommunity = 128;  // Matches the generator's community size.
  const auto labels = MakeCommunityLabels(dataset.graph.num_vertices(), kCommunity, kClasses);
  Rng rng(3);
  const FeatureStore features = FeatureStore::Clustered(
      dataset.graph.num_vertices(), /*dim=*/16, labels, kClasses, /*noise=*/0.6, &rng);

  // Held-out evaluation vertices.
  std::vector<VertexId> eval;
  for (VertexId v = 3; v < dataset.graph.num_vertices() && eval.size() < 500; v += 11) {
    eval.push_back(v);
  }

  RealTrainingOptions real;
  real.features = &features;
  real.labels = labels;
  real.eval_vertices = eval;
  real.num_classes = kClasses;
  real.hidden_dim = 16;
  real.adam.lr = 1e-2;

  const Workload workload = StandardWorkload(GnnModelKind::kGraphSage);
  EngineOptions options;
  options.num_gpus = 4;
  options.gpu_memory = 32 * kMiB;
  options.epochs = epochs;
  options.seed = 3;
  options.real = &real;

  Engine engine(dataset, workload, options);
  const RunReport report = engine.Run();
  if (report.oom) {
    std::printf("OOM: %s\n", report.oom_detail.c_str());
    return 1;
  }

  std::printf("GraphSAGE on %s | %dS%dT | %zu batches/epoch | %u classes\n\n",
              dataset.name.c_str(), report.num_samplers, report.num_trainers,
              report.epochs[0].batches, kClasses);
  TablePrinter table({"epoch", "loss", "eval acc", "grad updates", "sim time(s)"});
  double elapsed = 0.0;
  for (std::size_t e = 0; e < report.epochs.size(); ++e) {
    const EpochReport& epoch = report.epochs[e];
    elapsed += epoch.epoch_time;
    table.AddRow({std::to_string(e + 1), Fmt(epoch.mean_loss, 3),
                  FmtPercent(epoch.eval_accuracy, 1), std::to_string(epoch.gradient_updates),
                  Fmt(elapsed, 3)});
  }
  table.Print();
  std::printf(
      "\nLoss falls and held-out accuracy climbs well past the 1/%u random\n"
      "baseline: the Sampler/Trainer pipeline, the PreSC cache and the real\n"
      "GraphSAGE layers are all exercised end to end.\n",
      kClasses);
  return 0;
}
