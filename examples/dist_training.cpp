// Example: simulated multi-node GNN training. Partitions the graph across
// --nodes machines, runs the factored per-node pipeline (or the
// time-sharing baseline with --time-sharing) under one discrete-event
// clock, prices remote feature fetches on the modeled NIC, and closes each
// gradient group with a ring or tree all-reduce.
//
//   ./build/examples/dist_training [--nodes=N] [--strategy=edge_cut|vertex_cut]
//       [--allreduce=ring|tree] [--policy=none|degree|presc1|...]
//       [--gpus=N] [--epochs=N] [--scale=F] [--seed=N] [--nic-gbps=F]
//       [--time-sharing] [--report-out=FILE] [--prom-out=FILE] [--dump-dir=DIR]
//
// --report-out writes the full DistRunReport (per-node epochs with
// remote-fetch counters, merged critical-path attribution, comm totals) as
// JSON; --prom-out writes the final metric state — per-node counters under
// gnnlab_dist_n<k>_*, cluster all-reduce totals under gnnlab_dist_* — in
// Prometheus text exposition. --dump-dir arms the diagnostics layer (crash
// bundles carry the registry snapshot plus kComm flight events for the
// all-reduce rounds and remote fetches).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dist/dist_engine.h"
#include "obs/diagnostics.h"
#include "obs/health.h"
#include "report/json.h"
#include "report/table.h"

using namespace gnnlab;  // NOLINT: example brevity.

int main(int argc, char** argv) {
  DistOptions options;
  options.num_nodes = 4;
  options.gpus_per_node = 4;
  options.num_samplers = 1;
  options.dynamic_switching = false;
  options.epochs = 3;
  options.seed = 17;
  double scale = 0.5;
  double nic_gbps = 10.0;  // 10GbE default; CommParams' default is far slower.
  std::string report_out;
  std::string prom_out;
  std::string dump_dir;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--nodes=", 8) == 0) {
      options.num_nodes = std::atoi(arg + 8);
    } else if (std::strncmp(arg, "--strategy=", 11) == 0) {
      const char* name = arg + 11;
      if (std::strcmp(name, "edge_cut") == 0) {
        options.strategy = PartitionStrategy::kEdgeCut;
      } else if (std::strcmp(name, "vertex_cut") == 0) {
        options.strategy = PartitionStrategy::kVertexCut;
      } else {
        std::fprintf(stderr, "unknown strategy '%s' (edge_cut|vertex_cut)\n", name);
        return 1;
      }
    } else if (std::strncmp(arg, "--allreduce=", 12) == 0) {
      const char* name = arg + 12;
      if (std::strcmp(name, "ring") == 0) {
        options.allreduce = AllReduceAlgo::kRing;
      } else if (std::strcmp(name, "tree") == 0) {
        options.allreduce = AllReduceAlgo::kTree;
      } else {
        std::fprintf(stderr, "unknown all-reduce '%s' (ring|tree)\n", name);
        return 1;
      }
    } else if (std::strncmp(arg, "--policy=", 9) == 0) {
      const auto policy = ParseCachePolicyKind(arg + 9);
      if (!policy) {
        std::fprintf(stderr, "unknown policy '%s'\n", arg + 9);
        return 1;
      }
      options.policy = *policy;
    } else if (std::strncmp(arg, "--gpus=", 7) == 0) {
      options.gpus_per_node = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--epochs=", 9) == 0) {
      options.epochs = static_cast<std::size_t>(std::atoll(arg + 9));
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      scale = std::atof(arg + 8);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      options.seed = static_cast<std::uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--nic-gbps=", 11) == 0) {
      nic_gbps = std::atof(arg + 11);
    } else if (std::strcmp(arg, "--time-sharing") == 0) {
      options.time_sharing = true;
      options.num_samplers = 0;
    } else if (std::strncmp(arg, "--report-out=", 13) == 0) {
      report_out = arg + 13;
    } else if (std::strncmp(arg, "--prom-out=", 11) == 0) {
      prom_out = arg + 11;
    } else if (std::strncmp(arg, "--dump-dir=", 11) == 0) {
      dump_dir = arg + 11;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg);
      return 1;
    }
  }

  // GPU memory scales with the data so the cache stays partial (the
  // interesting regime: misses split into local PCIe vs remote NIC).
  options.gpu_memory = static_cast<ByteCount>(static_cast<double>(64 * kMiB) * scale);
  options.comm.nic_bandwidth = static_cast<ByteCount>(nic_gbps * 1e9 / 8.0);

  MetricRegistry metrics;
  options.metrics = &metrics;
  if (!dump_dir.empty()) {
    DiagnosticsHub* hub = DiagnosticsHub::Global();
    hub->SetDumpDir(dump_dir);
    hub->SetConfig("example", "dist_training");
    hub->SetConfig("nodes", std::to_string(options.num_nodes));
    hub->SetConfig("gpus_per_node", std::to_string(options.gpus_per_node));
    hub->BindRegistry(&metrics);
    InstallCrashHandlers();
    InstallLogRecorderBridge();
  }

  const Dataset dataset = MakeDataset(DatasetId::kPapers, scale, /*seed=*/42);
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);

  std::printf("dist GNNLab: %d nodes x %d GPUs on %s (%u vertices), %s partition, %s "
              "all-reduce, %s\n\n",
              options.num_nodes, options.gpus_per_node, dataset.name.c_str(),
              dataset.graph.num_vertices(), PartitionStrategyName(options.strategy),
              AllReduceAlgoName(options.allreduce),
              options.time_sharing ? "time-sharing per node" : "factored per node");

  DistEngine engine(dataset, workload, options);
  const DistRunReport report = engine.Run();
  if (report.oom) {
    std::fprintf(stderr, "OOM: %s\n", report.oom_detail.c_str());
    return 1;
  }

  TablePrinter cluster({"epoch", "makespan(s)", "allreduce(s)"});
  for (std::size_t e = 0; e < report.epoch_times.size(); ++e) {
    cluster.AddRow({std::to_string(e + 1), Fmt(report.epoch_times[e], 4),
                    Fmt(report.epoch_allreduce[e], 4)});
  }
  cluster.Print();
  std::printf("avg epoch %.4fs, all-reduce share %.1f%%, gradient bytes/round %s\n\n",
              report.AvgEpochTime(), 100.0 * report.AllReduceShare(),
              FormatBytes(report.gradient_bytes).c_str());

  TablePrinter table({"node", "S/T", "cache%", "train vtx", "remote fetches", "remote bytes",
                      "allreduce wait(s)"});
  for (const DistNodeReport& node : report.nodes) {
    std::uint64_t fetches = 0;
    ByteCount bytes = 0;
    double wait = 0.0;
    for (const DistNodeEpochReport& e : node.epochs) {
      fetches += e.remote_fetches;
      bytes += e.bytes_remote;
      wait += e.allreduce_wait;
    }
    table.AddRow({std::to_string(node.node),
                  std::to_string(node.num_samplers) + "/" + std::to_string(node.num_trainers),
                  FmtPercent(node.cache_ratio), std::to_string(node.train_vertices),
                  std::to_string(fetches), FormatBytes(bytes), Fmt(wait, 4)});
  }
  table.Print();

  if (report.attribution.flows > 0) {
    std::printf("\ncluster critical-path attribution over %zu flows (dominant: %s)\n",
                report.attribution.flows, report.attribution.DominantStage());
  }
  std::printf("comm: %llu feature messages, %s over the NIC; %zu all-reduce rounds, %s on "
              "the wire\n",
              static_cast<unsigned long long>(report.comm.feature_messages),
              FormatBytes(report.comm.feature_bytes).c_str(), report.comm.allreduce_rounds,
              FormatBytes(report.comm.allreduce_wire_bytes).c_str());

  if (!report_out.empty()) {
    if (!WriteDistRunReportJson(report, report_out)) {
      std::fprintf(stderr, "failed to write %s\n", report_out.c_str());
      return 1;
    }
    std::printf("wrote run report JSON to %s\n", report_out.c_str());
  }
  if (!prom_out.empty()) {
    const std::string text = RegistryToPrometheusText(metrics);
    std::FILE* file = std::fopen(prom_out.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "failed to write %s\n", prom_out.c_str());
      return 1;
    }
    std::fputs(text.c_str(), file);
    std::fclose(file);
    std::printf("wrote Prometheus exposition to %s\n", prom_out.c_str());
  }

  std::printf(
      "\nAn N=1 run of this engine matches the single-machine simulator bit for\n"
      "bit; at N>1 the same per-node pipeline pays for what distribution adds —\n"
      "remote feature rows on the NIC and an all-reduce after every sync group.\n");
  return 0;
}
