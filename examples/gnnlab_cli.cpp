// gnnlab_cli: run any system/workload/dataset combination from the command
// line and print the epoch report — the kitchen-sink driver for exploring
// the simulator without writing code.
//
//   ./build/examples/gnnlab_cli --system=gnnlab --model=gcn --dataset=pa
//       --gpus=8 --policy=presc1 --epochs=3 --scale=1.0 [--samplers=2]
//       [--no-switching] [--cache-ratio=0.2] [--seed=7]
//       [--trace-out=FILE] [--flow-out=FILE] [--metrics-out=FILE]
//       [--report-out=FILE] [--prom-out=FILE] [--alert=RULE]
//
// --trace-out dumps a Chrome/Perfetto trace of the simulated timeline,
// --flow-out the per-minibatch flow trace (Perfetto flow arrows linking
// each batch's sample -> queue_wait -> extract -> train steps),
// --metrics-out one JSON-lines telemetry snapshot per trained batch, and
// --report-out the full run report (stage breakdowns, per-stage latency
// percentiles, critical-path attribution, switch decision log, snapshot
// series) as JSON. --prom-out writes a Prometheus text exposition of the
// final metric state; --alert adds a health rule (repeatable, gnnlab
// system only), e.g. --alert="queue.depth > 32".
// --load-checkpoint / --save-checkpoint (gnnlab system only) turn on a
// small real-training setup (synthetic clustered features) so the model's
// weights can be warm-started from / persisted to a checkpoint file.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/cpu_runner.h"
#include "baselines/timeshare_runner.h"
#include "cache/cache_policy.h"
#include "common/rng.h"
#include "core/engine.h"
#include "feature/feature_store.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "report/json.h"
#include "report/table.h"

using namespace gnnlab;  // NOLINT: example brevity.

namespace {

struct CliOptions {
  std::string system = "gnnlab";  // gnnlab | tsota | dgl | pyg
  std::string model = "gcn";      // gcn | sage | pinsage | gcnw | cluster
  std::string dataset = "pa";     // pr | tw | pa | uk
  int gpus = 8;
  int samplers = 0;
  bool switching = true;
  std::string policy = "presc1";  // none | random | degree | presc1/2/3 | optimal
  double cache_ratio = -1.0;
  double cache_mb = 0.0;       // --cache-mb: GPU-tier byte budget (0 = off).
  double host_cache_mb = 0.0;  // --host-cache-mb: host tier budget (0 = off).
  std::string host_policy = "belady";  // belady | lru | degree | random
  double ssd_mbps = 0.0;  // --ssd-mbps: SSD read bandwidth (0 = default).
  double scale = 1.0;
  std::size_t epochs = 3;
  std::uint64_t seed = 42;
  std::string trace_path;    // --trace-out=FILE (or legacy --trace=FILE).
  std::string flow_path;     // --flow-out=FILE: per-minibatch flow trace.
  std::string metrics_path;  // --metrics-out=FILE: JSON-lines snapshots.
  std::string report_path;   // --report-out=FILE: run report JSON.
  std::string prom_path;     // --prom-out=FILE: Prometheus exposition.
  std::string load_checkpoint;  // --load-checkpoint=FILE: warm start.
  std::string save_checkpoint;  // --save-checkpoint=FILE: persist weights.
  std::vector<AlertRule> alerts;  // --alert=RULE (repeatable).
};

bool ParseArg(const char* arg, const char* key, std::string* out) {
  const std::size_t len = std::strlen(key);
  if (std::strncmp(arg, key, len) == 0) {
    *out = arg + len;
    return true;
  }
  return false;
}

[[noreturn]] void Usage() {
  std::printf(
      "usage: gnnlab_cli [--system=gnnlab|tsota|dgl|pyg] [--model=gcn|sage|pinsage|gcnw|"
      "cluster|gat]\n                  [--dataset=pr|tw|pa|uk] [--gpus=N] [--samplers=N]\n"
      "                  [--no-switching] [--policy=none|random|degree|presc1|presc2|"
      "presc3|optimal]\n                  [--cache-ratio=F] [--cache-mb=MB] "
      "[--host-cache-mb=MB]\n                  [--host-policy=belady|lru|degree|random] "
      "[--ssd-mbps=MB]\n                  [--scale=F] [--epochs=N] "
      "[--seed=N]\n                  [--trace-out=FILE] [--flow-out=FILE] "
      "[--metrics-out=FILE]\n                  [--report-out=FILE] [--prom-out=FILE] "
      "[--alert=RULE]\n                  [--load-checkpoint=FILE] "
      "[--save-checkpoint=FILE]\n");
  std::exit(2);
}

CliOptions Parse(int argc, char** argv) {
  CliOptions options;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (ParseArg(arg, "--system=", &value)) {
      options.system = value;
    } else if (ParseArg(arg, "--model=", &value)) {
      options.model = value;
    } else if (ParseArg(arg, "--dataset=", &value)) {
      options.dataset = value;
    } else if (ParseArg(arg, "--gpus=", &value)) {
      options.gpus = std::atoi(value.c_str());
    } else if (ParseArg(arg, "--samplers=", &value)) {
      options.samplers = std::atoi(value.c_str());
    } else if (std::strcmp(arg, "--no-switching") == 0) {
      options.switching = false;
    } else if (ParseArg(arg, "--policy=", &value)) {
      options.policy = value;
    } else if (ParseArg(arg, "--cache-ratio=", &value)) {
      options.cache_ratio = std::atof(value.c_str());
    } else if (ParseArg(arg, "--cache-mb=", &value)) {
      options.cache_mb = std::atof(value.c_str());
    } else if (ParseArg(arg, "--host-cache-mb=", &value)) {
      options.host_cache_mb = std::atof(value.c_str());
    } else if (ParseArg(arg, "--host-policy=", &value)) {
      options.host_policy = value;
    } else if (ParseArg(arg, "--ssd-mbps=", &value)) {
      options.ssd_mbps = std::atof(value.c_str());
    } else if (ParseArg(arg, "--scale=", &value)) {
      options.scale = std::atof(value.c_str());
    } else if (ParseArg(arg, "--epochs=", &value)) {
      options.epochs = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (ParseArg(arg, "--seed=", &value)) {
      options.seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    } else if (ParseArg(arg, "--trace-out=", &value) || ParseArg(arg, "--trace=", &value)) {
      options.trace_path = value;
    } else if (ParseArg(arg, "--flow-out=", &value)) {
      options.flow_path = value;
    } else if (ParseArg(arg, "--metrics-out=", &value)) {
      options.metrics_path = value;
    } else if (ParseArg(arg, "--report-out=", &value)) {
      options.report_path = value;
    } else if (ParseArg(arg, "--prom-out=", &value)) {
      options.prom_path = value;
    } else if (ParseArg(arg, "--load-checkpoint=", &value)) {
      options.load_checkpoint = value;
    } else if (ParseArg(arg, "--save-checkpoint=", &value)) {
      options.save_checkpoint = value;
    } else if (ParseArg(arg, "--alert=", &value)) {
      AlertRule rule;
      std::string error;
      if (!ParseAlertRule(value, &rule, &error)) {
        std::fprintf(stderr, "bad --alert rule: %s\n", error.c_str());
        Usage();
      }
      options.alerts.push_back(std::move(rule));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      Usage();
    }
  }
  return options;
}

DatasetId DatasetFor(const std::string& name) {
  if (name == "pr") {
    return DatasetId::kProducts;
  }
  if (name == "tw") {
    return DatasetId::kTwitter;
  }
  if (name == "pa") {
    return DatasetId::kPapers;
  }
  if (name == "uk") {
    return DatasetId::kUk;
  }
  std::fprintf(stderr, "unknown dataset: %s\n", name.c_str());
  Usage();
}

Workload WorkloadFor(const std::string& name) {
  if (name == "gcn") {
    return StandardWorkload(GnnModelKind::kGcn);
  }
  if (name == "sage") {
    return StandardWorkload(GnnModelKind::kGraphSage);
  }
  if (name == "pinsage") {
    return StandardWorkload(GnnModelKind::kPinSage);
  }
  if (name == "gcnw") {
    return WeightedGcnWorkload();
  }
  if (name == "cluster") {
    return ClusterGcnWorkload();
  }
  if (name == "gat") {
    return StandardWorkload(GnnModelKind::kGat);
  }
  std::fprintf(stderr, "unknown model: %s\n", name.c_str());
  Usage();
}

CachePolicyKind PolicyFor(const std::string& name) {
  if (const auto kind = ParseCachePolicyKind(name)) {
    return *kind;
  }
  std::fprintf(stderr, "unknown policy: %s\n", name.c_str());
  Usage();
}

void PrintReport(const RunReport& report) {
  if (report.oom) {
    std::printf("OOM: %s\n", report.oom_detail.c_str());
    return;
  }
  std::printf("allocation: %dS %dT (K=%.2f) | cache ratio %s | preprocess %.2fs\n",
              report.num_samplers, report.num_trainers, report.k_ratio,
              FmtPercent(report.cache_ratio).c_str(), report.preprocess.Total());
  TablePrinter table({"epoch", "time(s)", "S", "E", "T", "hit%", "host bytes", "switched"});
  for (std::size_t e = 0; e < report.epochs.size(); ++e) {
    const EpochReport& epoch = report.epochs[e];
    table.AddRow({std::to_string(e), Fmt(epoch.epoch_time, 3),
                  Fmt(epoch.stage.SampleTotal(), 3), Fmt(epoch.stage.extract, 3),
                  Fmt(epoch.stage.train, 3), FmtPercent(epoch.extract.HitRate()),
                  FormatBytes(epoch.extract.bytes_from_host),
                  std::to_string(epoch.switched_batches)});
  }
  table.Print();
  for (std::size_t e = 0; e < report.epochs.size(); ++e) {
    const TierEpochStats& tiers = report.epochs[e].tiers;
    if (tiers.Any()) {
      std::printf(
          "epoch %zu tiers: host hits %zu, ssd fetches %zu (host hit %.1f%%, ssd %.3fs)\n",
          e, tiers.host_hits, tiers.ssd_fetches, 100.0 * tiers.HostHitRate(),
          tiers.ssd_seconds);
    }
  }
  std::printf("avg epoch: %.3fs | queue peak depth %zu (%s)\n", report.AvgEpochTime(),
              report.queue.max_depth, FormatBytes(report.queue.max_stored_bytes).c_str());
  if (report.attribution.flows > 0) {
    const StageBlame fractions = report.attribution.Fractions();
    std::printf("critical path over %zu flows (dominant: %s):", report.attribution.flows,
                report.attribution.DominantStage());
    for (std::size_t i = 0; i < kNumBlameStages; ++i) {
      std::printf(" %s %.1f%%", kBlameStageNames[i], 100.0 * fractions.Component(i));
    }
    std::printf("\n");
  }
  if (!report.switch_decisions.empty()) {
    std::size_t fetches = 0;
    std::size_t overrides = 0;
    for (const SwitchDecision& d : report.switch_decisions) {
      fetches += d.fetched ? 1 : 0;
      overrides += d.pressure_override ? 1 : 0;
    }
    std::printf("switch decisions: %zu logged, %zu fetches, %zu pressure overrides\n",
                report.switch_decisions.size(), fetches, overrides);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = Parse(argc, argv);
  const Dataset dataset = MakeDataset(DatasetFor(cli.dataset), cli.scale, cli.seed);
  const Workload workload = WorkloadFor(cli.model);
  const auto gpu_memory =
      static_cast<ByteCount>(static_cast<double>(64 * kMiB) * cli.scale);
  std::printf("%s | %s on %s | %d GPUs x %s | policy %s\n\n", cli.system.c_str(),
              workload.name.c_str(), dataset.name.c_str(), cli.gpus,
              FormatBytes(gpu_memory).c_str(), cli.policy.c_str());

  if (cli.system == "gnnlab") {
    EngineOptions options;
    options.num_gpus = cli.gpus;
    options.num_samplers = cli.samplers;
    options.dynamic_switching = cli.switching;
    options.gpu_memory = gpu_memory;
    options.policy = PolicyFor(cli.policy);
    options.cache_ratio_override = cli.cache_ratio;
    options.cache_budget_override =
        static_cast<ByteCount>(cli.cache_mb * static_cast<double>(kMiB));
    options.tiers.host_budget_bytes =
        static_cast<ByteCount>(cli.host_cache_mb * static_cast<double>(kMiB));
    const std::optional<HostEvictPolicy> host_policy =
        ParseHostEvictPolicy(cli.host_policy);
    if (!host_policy) {
      std::fprintf(stderr, "unknown host policy: %s\n", cli.host_policy.c_str());
      Usage();
    }
    options.tiers.host_policy = *host_policy;
    if (cli.ssd_mbps > 0.0) {
      options.tiers.ssd_read_bandwidth = cli.ssd_mbps * static_cast<double>(kMiB);
    }
    options.epochs = cli.epochs;
    options.seed = cli.seed;
    TraceRecorder trace;
    if (!cli.trace_path.empty()) {
      options.trace = &trace;
    }
    FlowTracer flows;
    if (!cli.flow_path.empty()) {
      options.flows = &flows;
    }
    MetricRegistry metrics;
    options.metrics = &metrics;
    HealthMonitor::Options health_options;
    health_options.rules = cli.alerts;
    health_options.exposition_path = cli.prom_path;
    HealthMonitor health(&metrics, health_options);
    options.health = &health;
    // Checkpoint flags need a model to load into / save from, so they turn
    // on a small real-training setup over synthetic clustered features.
    constexpr std::uint32_t kClasses = 10;
    std::vector<std::uint32_t> labels;
    FeatureStore real_features;
    RealTrainingOptions real;
    if (!cli.load_checkpoint.empty() || !cli.save_checkpoint.empty()) {
      labels = MakeCommunityLabels(dataset.graph.num_vertices(), 128, kClasses);
      Rng feature_rng(cli.seed);
      real_features =
          FeatureStore::Clustered(dataset.graph.num_vertices(), dataset.feature_dim,
                                  labels, kClasses, /*noise=*/0.5, &feature_rng);
      real.features = &real_features;
      real.labels = labels;
      real.num_classes = kClasses;
      real.hidden_dim = 16;
      options.real = &real;
      options.load_checkpoint = cli.load_checkpoint;
      options.save_checkpoint = cli.save_checkpoint;
    }
    Engine engine(dataset, workload, options);
    const RunReport report = engine.Run();
    PrintReport(report);
    for (const AlertState& state : health.Evaluate(/*force=*/true)) {
      std::printf("alert %-24s %s (value %.4g, threshold %c %.4g)\n",
                  state.rule.name.c_str(), state.firing ? "FIRING" : "ok", state.value,
                  state.rule.op, state.rule.threshold);
    }
    if (!cli.trace_path.empty() && trace.WriteChromeTrace(cli.trace_path)) {
      std::printf("wrote %zu trace spans to %s (open in chrome://tracing)\n", trace.size(),
                  cli.trace_path.c_str());
    }
    if (!cli.flow_path.empty() && flows.WriteChromeTrace(cli.flow_path)) {
      std::printf("wrote %zu flow steps to %s (Perfetto arrows link each minibatch)\n",
                  flows.size(), cli.flow_path.c_str());
    }
    if (!cli.prom_path.empty() && health.WriteExposition()) {
      std::printf("wrote Prometheus exposition to %s\n", cli.prom_path.c_str());
    }
    if (!cli.metrics_path.empty() &&
        WriteTelemetryJsonLines(report.snapshots, cli.metrics_path)) {
      std::printf("wrote %zu telemetry snapshots to %s\n", report.snapshots.size(),
                  cli.metrics_path.c_str());
    }
    if (!cli.report_path.empty() && WriteRunReportJson(report, cli.report_path)) {
      std::printf("wrote run report JSON to %s\n", cli.report_path.c_str());
    }
  } else if (cli.system == "tsota" || cli.system == "dgl") {
    TimeShareOptions options = cli.system == "dgl" ? DglOptions() : TsotaOptions();
    options.num_gpus = cli.gpus;
    options.gpu_memory = gpu_memory;
    if (cli.policy != "presc1" || cli.system == "tsota") {
      // Respect an explicit policy; keep each preset's default otherwise.
      if (cli.policy != "presc1") {
        options.policy = PolicyFor(cli.policy);
      }
    }
    options.cache_ratio_override = cli.cache_ratio;
    options.epochs = cli.epochs;
    options.seed = cli.seed;
    TimeShareRunner runner(dataset, workload, options);
    PrintReport(runner.Run());
  } else if (cli.system == "pyg") {
    CpuRunnerOptions options;
    options.num_gpus = cli.gpus;
    options.epochs = cli.epochs;
    options.seed = cli.seed;
    CpuRunner runner(dataset, workload, options);
    PrintReport(runner.Run());
  } else {
    std::fprintf(stderr, "unknown system: %s\n", cli.system.c_str());
    Usage();
  }
  return 0;
}
