// Example: the paper's headline comparison as an API walkthrough — train
// the same GCN workload on the Twitter stand-in with the PyG-style CPU
// runner, DGL-style and T_SOTA-style time sharing, and GNNLab's factored
// engine, then break an epoch down per stage.
//
//   ./build/examples/factored_vs_timeshare [scale]
#include <cstdio>
#include <cstdlib>

#include "baselines/cpu_runner.h"
#include "baselines/timeshare_runner.h"
#include "core/engine.h"
#include "report/table.h"

using namespace gnnlab;  // NOLINT: example brevity.

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.5;
  const auto gpu_memory =
      static_cast<ByteCount>(static_cast<double>(64 * kMiB) * scale);
  const Dataset dataset = MakeDataset(DatasetId::kTwitter, scale, 7);
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  std::printf("GCN on %s: %u vertices, %llu edges, features %s, GPUs 8 x %s\n\n",
              dataset.name.c_str(), dataset.graph.num_vertices(),
              static_cast<unsigned long long>(dataset.graph.num_edges()),
              FormatBytes(dataset.FeatureBytes()).c_str(),
              FormatBytes(gpu_memory).c_str());

  TablePrinter table({"System", "design", "epoch(s)", "S", "E", "T", "hit%"});

  {
    CpuRunnerOptions options;
    options.num_gpus = 8;
    options.epochs = 3;
    CpuRunner runner(dataset, workload, options);
    const RunReport report = runner.Run();
    const StageBreakdown stage = report.AvgStage();
    table.AddRow({"PyG-style", "CPU sampling", Fmt(report.AvgEpochTime()),
                  Fmt(stage.SampleTotal()), Fmt(stage.extract), Fmt(stage.train), "-"});
  }
  for (const bool tsota : {false, true}) {
    TimeShareOptions options = tsota ? TsotaOptions() : DglOptions();
    options.num_gpus = 8;
    options.gpu_memory = gpu_memory;
    options.epochs = 3;
    TimeShareRunner runner(dataset, workload, options);
    const RunReport report = runner.Run();
    if (report.oom) {
      table.AddRow({tsota ? "T_SOTA-style" : "DGL-style", "time sharing", "OOM", "-", "-",
                    "-", "-"});
      continue;
    }
    const StageBreakdown stage = report.AvgStage();
    table.AddRow({tsota ? "T_SOTA-style" : "DGL-style", "time sharing",
                  Fmt(report.AvgEpochTime()), Fmt(stage.SampleTotal()), Fmt(stage.extract),
                  Fmt(stage.train), FmtPercent(report.TotalExtract().HitRate())});
  }
  {
    EngineOptions options;
    options.num_gpus = 8;
    options.gpu_memory = gpu_memory;
    options.epochs = 3;
    Engine engine(dataset, workload, options);
    const RunReport report = engine.Run();
    if (report.oom) {
      std::printf("GNNLab OOM: %s\n", report.oom_detail.c_str());
      return 1;
    }
    const StageBreakdown stage = report.AvgStage();
    table.AddRow({"GNNLab (" + std::to_string(report.num_samplers) + "S" +
                      std::to_string(report.num_trainers) + "T)",
                  "space sharing", Fmt(report.AvgEpochTime()), Fmt(stage.SampleTotal()),
                  Fmt(stage.extract), Fmt(stage.train),
                  FmtPercent(report.TotalExtract().HitRate())});
  }
  table.Print();
  std::printf(
      "\nThe factored design keeps topology and cache on different GPUs, so the\n"
      "cache is larger, the hit rate higher, and the Extract column collapses.\n");
  return 0;
}
