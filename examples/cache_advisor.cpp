// Example: capacity planning with the caching API. Given a workload and a
// per-GPU memory budget, compare the built-in caching policies at the
// affordable cache ratio and report what each would cost per epoch in
// host->GPU feature traffic — the decision a user makes before dedicating
// Trainer GPUs.
//
//   ./build/examples/cache_advisor [pr|tw|pa|uk] [gcn|sage|pinsage|gcnw]
#include <cstdio>
#include <cstring>
#include <optional>

#include "common/units.h"
#include "cache/cache_policy.h"
#include "cache/feature_cache.h"
#include "core/workload.h"
#include "report/table.h"

using namespace gnnlab;  // NOLINT: example brevity.

int main(int argc, char** argv) {
  DatasetId id = DatasetId::kPapers;
  if (argc > 1) {
    const std::string name = argv[1];
    if (name == "pr") {
      id = DatasetId::kProducts;
    } else if (name == "tw") {
      id = DatasetId::kTwitter;
    } else if (name == "uk") {
      id = DatasetId::kUk;
    }
  }
  Workload workload = StandardWorkload(GnnModelKind::kGcn);
  if (argc > 2) {
    const std::string model = argv[2];
    if (model == "sage") {
      workload = StandardWorkload(GnnModelKind::kGraphSage);
    } else if (model == "pinsage") {
      workload = StandardWorkload(GnnModelKind::kPinSage);
    } else if (model == "gcnw") {
      workload = WeightedGcnWorkload();
    }
  }

  const double scale = 0.5;
  const Dataset dataset = MakeDataset(id, scale, 11);
  std::optional<EdgeWeights> weights;
  if (workload.sampling == SamplingAlgorithm::kKhopWeighted) {
    weights.emplace(dataset.MakeWeights());
  }
  const EdgeWeights* w = weights ? &*weights : nullptr;

  // A dedicated Trainer GPU: everything but the training workspace is cache.
  const auto gpu_memory =
      static_cast<ByteCount>(static_cast<double>(64 * kMiB) * scale);
  const auto budget = static_cast<ByteCount>(
      static_cast<double>(gpu_memory) * (1.0 - workload.trainer_ws_fraction));

  std::printf("workload %s on %s | features %s | cache budget per Trainer GPU %s\n\n",
              workload.name.c_str(), dataset.name.c_str(),
              FormatBytes(dataset.FeatureBytes()).c_str(), FormatBytes(budget).c_str());

  CachePolicyContext context;
  context.graph = &dataset.graph;
  context.train_set = &dataset.train_set;
  context.batch_size = dataset.batch_size;
  context.seed = 11;
  context.sampler_factory = [&dataset, &workload, w] {
    return MakeSampler(workload, dataset, w);
  };

  struct Candidate {
    const char* name;
    std::unique_ptr<CachePolicy> policy;
  };
  Candidate candidates[] = {
      {"Random", MakeRandomPolicy()},
      {"Degree (PaGraph)", MakeDegreePolicy()},
      {"PreSC#1 (GNNLab)", MakePreSamplingPolicy(1)},
      {"PreSC#2", MakePreSamplingPolicy(2)},
  };

  TablePrinter table({"Policy", "cache ratio", "hit rate", "host bytes/epoch"});
  for (Candidate& candidate : candidates) {
    const FeatureCache cache =
        FeatureCache::LoadWithBudget(candidate.policy->Rank(context), budget,
                                     dataset.graph.num_vertices(), dataset.feature_dim);
    auto sampler = MakeSampler(workload, dataset, w);
    const EpochExtractionResult result = MeasureEpochExtraction(
        sampler.get(), dataset.train_set, dataset.batch_size, cache, dataset.feature_dim,
        /*epoch_seed=*/99);
    table.AddRow({std::string(candidate.name), FmtPercent(cache.ratio()), FmtPercent(result.HitRate(), 1),
                  FormatBytes(result.bytes_from_host)});
  }
  table.Print();
  std::printf(
      "\nPreSC pre-samples with the workload's own algorithm, so it adapts to\n"
      "graph shape, training set and sampling bias; degree ranking does not.\n");
  return 0;
}
