// online_serving: stand up the inference server over a synthetic dataset,
// drive it with the deterministic load generator, and print the serving
// report — the command-line face of the serving layer and the binary the
// verify script smoke-tests.
//
//   ./build/examples/online_serving --mode=open --rate=2000 --requests=500
//       --slo-ms=50 [--max-batch=16] [--workers=1] [--standby-workers=0]
//       [--clients=4] [--no-shed] [--linger-ms=2] [--scale=0.1] [--seed=42]
//       [--load-checkpoint=FILE] [--report-out=FILE] [--alert=RULE]
//       [--prom-port=N] [--port-file=FILE] [--hold-ms=N] [--dump-dir=DIR]
//
// --prom-port starts the HealthMonitor HTTP exporter (0 = ephemeral port)
// serving GET /metrics and GET /healthz; --port-file writes the bound port
// so scripts can find it, and --hold-ms keeps the exporter up that long
// after the load drains (for external probes). --dump-dir arms the
// diagnostics layer: crash handlers + alert-edge bundle dumps into DIR, and
// GET /debug/dump on the exporter returns a live diagnostics bundle. --alert adds a health rule
// (repeatable); without any, a default serve.queue.depth backlog rule wires
// the queue-pressure override standby reclaim uses. --load-checkpoint
// warm-starts the served model from weights saved by the training drivers
// (the same architecture threaded_training checkpoints: 2-layer GraphSAGE,
// dim 16, hidden 16, 10 classes). --report-out writes the ServeReport JSON.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "cache/feature_cache.h"
#include "cache/tiered_store.h"
#include "common/rng.h"
#include "core/workload.h"
#include "feature/feature_store.h"
#include "graph/dataset.h"
#include "nn/checkpoint.h"
#include "nn/model.h"
#include "obs/diagnostics.h"
#include "obs/flow.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "report/json.h"
#include "serve/load_generator.h"
#include "serve/server.h"

using namespace gnnlab;  // NOLINT: example brevity.

namespace {

struct CliOptions {
  std::string mode = "open";  // open | closed
  double rate = 2000.0;
  std::size_t requests = 500;
  std::size_t clients = 4;
  double slo_ms = 50.0;
  std::size_t max_batch = 16;
  std::size_t workers = 1;
  std::size_t standby_workers = 0;
  bool shedding = true;
  double linger_ms = 2.0;
  double scale = 0.1;
  std::uint64_t seed = 42;
  std::string load_checkpoint;
  std::string report_path;
  std::vector<AlertRule> alerts;
  int prom_port = -1;  // -1 = no HTTP exporter.
  std::string port_file;
  int hold_ms = 0;
  std::string dump_dir;
};

bool ParseArg(const char* arg, const char* key, std::string* out) {
  const std::size_t len = std::strlen(key);
  if (std::strncmp(arg, key, len) == 0) {
    *out = arg + len;
    return true;
  }
  return false;
}

[[noreturn]] void Usage() {
  std::printf(
      "usage: online_serving [--mode=open|closed] [--rate=RPS] [--requests=N]\n"
      "                      [--clients=N] [--slo-ms=F] [--max-batch=N] "
      "[--workers=N]\n                      [--standby-workers=N] [--no-shed] "
      "[--linger-ms=F]\n                      [--scale=F] [--seed=N] "
      "[--load-checkpoint=FILE]\n                      [--report-out=FILE] "
      "[--alert=RULE] [--prom-port=N]\n                      [--port-file=FILE] "
      "[--hold-ms=N]\n");
  std::exit(2);
}

CliOptions Parse(int argc, char** argv) {
  CliOptions options;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (ParseArg(arg, "--mode=", &value)) {
      options.mode = value;
    } else if (ParseArg(arg, "--rate=", &value)) {
      options.rate = std::atof(value.c_str());
    } else if (ParseArg(arg, "--requests=", &value)) {
      options.requests = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (ParseArg(arg, "--clients=", &value)) {
      options.clients = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (ParseArg(arg, "--slo-ms=", &value)) {
      options.slo_ms = std::atof(value.c_str());
    } else if (ParseArg(arg, "--max-batch=", &value)) {
      options.max_batch = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (ParseArg(arg, "--workers=", &value)) {
      options.workers = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (ParseArg(arg, "--standby-workers=", &value)) {
      options.standby_workers = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (std::strcmp(arg, "--no-shed") == 0) {
      options.shedding = false;
    } else if (ParseArg(arg, "--linger-ms=", &value)) {
      options.linger_ms = std::atof(value.c_str());
    } else if (ParseArg(arg, "--scale=", &value)) {
      options.scale = std::atof(value.c_str());
    } else if (ParseArg(arg, "--seed=", &value)) {
      options.seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    } else if (ParseArg(arg, "--load-checkpoint=", &value)) {
      options.load_checkpoint = value;
    } else if (ParseArg(arg, "--report-out=", &value)) {
      options.report_path = value;
    } else if (ParseArg(arg, "--alert=", &value)) {
      AlertRule rule;
      std::string error;
      if (!ParseAlertRule(value, &rule, &error)) {
        std::fprintf(stderr, "bad --alert rule: %s\n", error.c_str());
        Usage();
      }
      options.alerts.push_back(std::move(rule));
    } else if (ParseArg(arg, "--prom-port=", &value)) {
      options.prom_port = std::atoi(value.c_str());
    } else if (ParseArg(arg, "--port-file=", &value)) {
      options.port_file = value;
    } else if (ParseArg(arg, "--hold-ms=", &value)) {
      options.hold_ms = std::atoi(value.c_str());
    } else if (ParseArg(arg, "--dump-dir=", &value)) {
      options.dump_dir = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      Usage();
    }
  }
  if (options.mode != "open" && options.mode != "closed") {
    std::fprintf(stderr, "unknown mode: %s\n", options.mode.c_str());
    Usage();
  }
  return options;
}

void PrintSummary(const char* label, const LatencySummary& summary) {
  std::printf("  %-8s p50 %7.2fms  p95 %7.2fms  p99 %7.2fms  max %7.2fms\n", label,
              summary.p50 * 1e3, summary.p95 * 1e3, summary.p99 * 1e3,
              summary.max * 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = Parse(argc, argv);

  // Serving stack: the same synthetic setup the training drivers use for
  // checkpoints — clustered features over community labels, a GraphSAGE
  // model, and the degree-ranked half-capacity feature cache.
  const Dataset dataset = MakeDataset(DatasetId::kProducts, cli.scale, cli.seed);
  Workload workload = StandardWorkload(GnnModelKind::kGraphSage);
  workload.fanouts = {4, 4};
  const VertexId nv = dataset.graph.num_vertices();
  constexpr std::uint32_t kClasses = 10;  // Matches the training drivers.
  constexpr std::uint32_t kDim = 16;
  Rng rng(cli.seed + 1);
  const std::vector<std::uint32_t> labels = MakeCommunityLabels(nv, 128, kClasses);
  const FeatureStore features =
      FeatureStore::Clustered(nv, kDim, labels, kClasses, 0.3, &rng);
  std::vector<VertexId> ranked(nv);
  std::iota(ranked.begin(), ranked.end(), VertexId{0});
  const TieredFeatureStore store =
      TieredFeatureStore::FromCache(FeatureCache::Load(ranked, 0.5, nv, kDim));
  ModelConfig config;
  config.kind = GnnModelKind::kGraphSage;
  config.num_layers = 2;
  config.in_dim = kDim;
  config.hidden_dim = 16;
  config.num_classes = kClasses;
  Rng model_rng(cli.seed + 2);
  GnnModel model(config, &model_rng);
  if (!cli.load_checkpoint.empty()) {
    if (!LoadModel(&model, cli.load_checkpoint)) {
      std::fprintf(stderr, "cannot load checkpoint %s\n", cli.load_checkpoint.c_str());
      return 1;
    }
    std::printf("warm-started model from %s\n", cli.load_checkpoint.c_str());
  }

  // Observability: registry + flows + health. Without explicit --alert
  // rules, a default backlog rule on serve.queue.depth arms the same
  // queue-pressure override the standby reclaim gate consults.
  MetricRegistry metrics;
  FlowTracer flows;
  HealthMonitor::Options health_options;
  health_options.rules = cli.alerts;
  if (health_options.rules.empty()) {
    AlertRule rule;
    std::string error;
    const std::string default_rule = "serve_backlog: serve.queue.depth > " +
                                     std::to_string(4 * cli.max_batch);
    if (!ParseAlertRule(default_rule, &rule, &error)) {
      std::fprintf(stderr, "bad default alert rule: %s\n", error.c_str());
      return 1;
    }
    health_options.rules.push_back(std::move(rule));
  }
  HealthMonitor health(&metrics, health_options);
  if (!cli.dump_dir.empty()) {
    DiagnosticsHub* hub = DiagnosticsHub::Global();
    hub->SetDumpDir(cli.dump_dir);
    hub->SetConfig("example", "online_serving");
    hub->SetConfig("mode", cli.mode);
    hub->SetConfig("workers", std::to_string(cli.workers));
    hub->SetConfig("standby_workers", std::to_string(cli.standby_workers));
    hub->BindRegistry(&metrics);
    InstallCrashHandlers();
    InstallLogRecorderBridge();
    ArmAlertEdgeDumps(&health);
  }
  if (cli.prom_port >= 0) {
    const int port = health.StartServer(cli.prom_port);
    if (port < 0) {
      std::fprintf(stderr, "cannot start metrics HTTP server\n");
      return 1;
    }
    std::printf("metrics at http://127.0.0.1:%d/metrics, liveness at /healthz\n", port);
    if (!cli.port_file.empty()) {
      std::FILE* file = std::fopen(cli.port_file.c_str(), "w");
      if (file == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", cli.port_file.c_str());
        return 1;
      }
      std::fprintf(file, "%d\n", port);
      std::fclose(file);
    }
  }

  ServeOptions serve;
  serve.max_batch = cli.max_batch;
  serve.workers = cli.workers;
  serve.standby_workers = cli.standby_workers;
  serve.shedding = cli.shedding;
  serve.max_linger_seconds = cli.linger_ms / 1e3;
  serve.seed = cli.seed;
  serve.metrics = &metrics;
  serve.flows = &flows;
  serve.health = &health;
  InferenceServer server(dataset, workload, features, &store, &model, serve);

  LoadGenOptions load;
  load.mode = cli.mode == "open" ? LoadMode::kOpen : LoadMode::kClosed;
  load.rate_rps = cli.rate;
  load.num_requests = cli.requests;
  load.num_clients = cli.clients;
  load.requests_per_client =
      cli.clients > 0 ? std::max<std::size_t>(1, cli.requests / cli.clients) : 0;
  load.slo_seconds = cli.slo_ms / 1e3;
  load.seed = cli.seed;

  std::printf("%s-loop load: %zu requests%s, slo %.1fms | batch<=%zu workers=%zu+%zu "
              "shed=%s\n\n",
              cli.mode.c_str(), cli.requests,
              load.mode == LoadMode::kOpen
                  ? (" at " + std::to_string(static_cast<long long>(cli.rate)) + " rps")
                        .c_str()
                  : (" from " + std::to_string(cli.clients) + " clients").c_str(),
              cli.slo_ms, cli.max_batch, cli.workers, cli.standby_workers,
              cli.shedding ? "on" : "off");

  server.Start();
  const LoadReport client = RunLoad(&server, load);
  if (cli.hold_ms > 0) {  // Keep /metrics and /healthz probe-able.
    std::this_thread::sleep_for(std::chrono::milliseconds(cli.hold_ms));
  }
  server.Stop();
  const ServeReport report = server.Report();

  std::printf("served %llu/%llu | shed %llu (queue_full %llu, overload %llu) | "
              "slo violations %llu\n",
              static_cast<unsigned long long>(report.served),
              static_cast<unsigned long long>(report.offered),
              static_cast<unsigned long long>(report.shed_queue_full +
                                              report.shed_overload),
              static_cast<unsigned long long>(report.shed_queue_full),
              static_cast<unsigned long long>(report.shed_overload),
              static_cast<unsigned long long>(report.slo_violations));
  std::printf("throughput %.0f rps over %.2fs | %llu batches (%llu standby) | "
              "cache hit %.1f%%\n",
              report.throughput_rps, report.duration_seconds,
              static_cast<unsigned long long>(report.batches),
              static_cast<unsigned long long>(report.standby_batches),
              report.cache_hits + report.host_misses > 0
                  ? 100.0 * static_cast<double>(report.cache_hits) /
                        static_cast<double>(report.cache_hits + report.host_misses)
                  : 0.0);
  PrintSummary("queue", report.queue_latency);
  PrintSummary("batch", report.batch_latency);
  PrintSummary("e2e", report.e2e_latency);
  if (!report.switch_decisions.empty()) {
    std::size_t fetches = 0;
    std::size_t overrides = 0;
    for (const SwitchDecision& d : report.switch_decisions) {
      fetches += d.fetched ? 1 : 0;
      overrides += d.pressure_override ? 1 : 0;
    }
    std::printf("standby gate: %zu decisions, %zu fetches, %zu pressure overrides\n",
                report.switch_decisions.size(), fetches, overrides);
  }
  for (const AlertState& state : health.Evaluate(/*force=*/true)) {
    std::printf("alert %-24s %s (value %.4g, threshold %c %.4g)\n",
                state.rule.name.c_str(), state.firing ? "FIRING" : "ok", state.value,
                state.rule.op, state.rule.threshold);
  }
  if (!cli.report_path.empty() && WriteServeReportJson(report, cli.report_path)) {
    std::printf("wrote serve report JSON to %s\n", cli.report_path.c_str());
  }

  // Client/server conservation: the two views must agree exactly.
  if (client.served != report.served ||
      client.shed != report.shed_queue_full + report.shed_overload) {
    std::fprintf(stderr, "FAIL: client (%llu served, %llu shed) disagrees with server\n",
                 static_cast<unsigned long long>(client.served),
                 static_cast<unsigned long long>(client.shed));
    return 1;
  }
  return 0;
}
