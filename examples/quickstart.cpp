// Quickstart: train GCN on the scaled OGB-Papers stand-in with GNNLab's
// factored engine, and print what the paper's Table 5 would show — the
// flexible-scheduling decision, the cache the PreSC policy built, and the
// per-epoch stage breakdown.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/engine.h"
#include "report/table.h"

using namespace gnnlab;  // NOLINT: example brevity.

int main() {
  // 1. Load a dataset. MakeDataset synthesizes a scaled stand-in for the
  //    paper's graphs (here PA = OGB-Papers: citation structure, 128-dim
  //    features, 1.1% training set). scale=0.3 keeps this demo snappy.
  const Dataset dataset = MakeDataset(DatasetId::kPapers, /*scale=*/0.3, /*seed=*/42);
  std::printf("dataset %s: %u vertices, %llu edges, dim %u, %zu training vertices\n",
              dataset.name.c_str(), dataset.graph.num_vertices(),
              static_cast<unsigned long long>(dataset.graph.num_edges()), dataset.feature_dim,
              dataset.train_set.size());

  // 2. Pick a workload: GCN with 3-hop random neighborhood sampling,
  //    fanouts {15, 10, 5}, exactly the paper's §7.1 configuration.
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);

  // 3. Configure the engine: 8 simulated V100-class GPUs (64MB each at this
  //    scale; ratios to data volumes match the paper's 16GB cards), the
  //    PreSC#1 caching policy, and automatic Sampler/Trainer allocation.
  EngineOptions options;
  options.num_gpus = 8;
  options.policy = CachePolicyKind::kPreSC1;
  options.epochs = 3;
  options.seed = 1;

  Engine engine(dataset, workload, options);
  const RunReport report = engine.Run();
  if (report.oom) {
    std::printf("OOM: %s\n", report.oom_detail.c_str());
    return 1;
  }

  // 4. Inspect the run.
  std::printf("\nflexible scheduling: %dS %dT (K = T_t/T_s = %.2f)\n", report.num_samplers,
              report.num_trainers, report.k_ratio);
  std::printf("feature cache: ratio %s on Trainer GPUs (policy PreSC#1)\n",
              FmtPercent(report.cache_ratio).c_str());
  std::printf("preprocessing: disk %.2fs, topo->GPU %.3fs, cache->GPU %.3fs, presample %.3fs\n",
              report.preprocess.disk_load, report.preprocess.topo_load,
              report.preprocess.cache_load, report.preprocess.presample);

  TablePrinter table({"epoch", "time(s)", "S=G+M+C", "E", "T", "hit%", "host-bytes"});
  for (std::size_t e = 0; e < report.epochs.size(); ++e) {
    const EpochReport& epoch = report.epochs[e];
    table.AddRow({std::to_string(e), Fmt(epoch.epoch_time, 4),
                  Fmt(epoch.stage.SampleTotal(), 4), Fmt(epoch.stage.extract, 4),
                  Fmt(epoch.stage.train, 4), FmtPercent(epoch.extract.HitRate()),
                  FormatBytes(epoch.extract.bytes_from_host)});
  }
  table.Print();

  std::printf("\nglobal queue: %zu blocks enqueued, max depth %zu, peak host memory %s\n",
              report.queue.total_enqueued, report.queue.max_depth,
              FormatBytes(report.queue.max_stored_bytes).c_str());
  return 0;
}
