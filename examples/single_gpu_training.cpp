// Example: GNNLab on a single GPU (paper §7.9) — the degenerate case of
// dynamic switching. The lone GPU samples the whole epoch into the
// host-memory global queue, then the standby Trainer replaces the Sampler
// and drains it. Shows the queue's peak host footprint and the comparison
// against DGL-style time sharing on the same GPU.
//
//   ./build/examples/single_gpu_training
#include <cstdio>

#include "baselines/timeshare_runner.h"
#include "core/engine.h"
#include "report/table.h"

using namespace gnnlab;  // NOLINT: example brevity.

int main() {
  const double scale = 0.5;
  const auto gpu_memory =
      static_cast<ByteCount>(static_cast<double>(64 * kMiB) * scale);
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);

  TablePrinter table({"Dataset", "DGL 1-GPU", "GNNLab 1-GPU", "speedup", "queue peak",
                      "switched"});
  for (const DatasetId id : kAllDatasets) {
    const Dataset dataset = MakeDataset(id, scale, 5);

    TimeShareOptions dgl_options = DglOptions();
    dgl_options.num_gpus = 1;
    dgl_options.gpu_memory = gpu_memory;
    dgl_options.epochs = 3;
    TimeShareRunner dgl(dataset, workload, dgl_options);
    const RunReport dgl_report = dgl.Run();

    EngineOptions options;
    options.num_gpus = 1;  // 1 Sampler, 0 Trainers: switching once an epoch.
    options.gpu_memory = gpu_memory;
    options.epochs = 3;
    Engine engine(dataset, workload, options);
    const RunReport report = engine.Run();

    if (report.oom || dgl_report.oom) {
      table.AddRow({dataset.name, dgl_report.oom ? "OOM" : Fmt(dgl_report.AvgEpochTime()),
                    report.oom ? "OOM" : Fmt(report.AvgEpochTime()), "-", "-", "-"});
      continue;
    }
    table.AddRow({dataset.name, Fmt(dgl_report.AvgEpochTime()), Fmt(report.AvgEpochTime()),
                  Fmt(dgl_report.AvgEpochTime() / report.AvgEpochTime(), 1) + "x",
                  FormatBytes(report.queue.max_stored_bytes),
                  std::to_string(report.epochs[0].switched_batches) + "/" +
                      std::to_string(report.epochs[0].batches)});
  }
  table.Print();
  std::printf(
      "\nEvery batch is trained by the standby Trainer (switched == batches);\n"
      "storing one epoch of sample blocks in host memory is cheap, and the\n"
      "PreSC cache still pays off against cache-less time sharing.\n");
  return 0;
}
