#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite, then smoke
# the telemetry pipeline end to end — a threaded run with --trace-out /
# --metrics-out / --report-out must produce non-empty, well-formed JSON
# artifacts, and micro_obs must show the hooks staying under their 5%
# overhead budget.
#
#   scripts/verify.sh              # full pipeline in build/
#   scripts/verify.sh --fast       # skip the cmake configure step
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"
build_dir="build"

if [ "${1:-}" != "--fast" ]; then
  cmake -B "${build_dir}" -S .
fi
cmake --build "${build_dir}" -j"$(nproc)"
ctest --test-dir "${build_dir}" --output-on-failure

# --- telemetry smoke run -----------------------------------------------------
out_dir="$(mktemp -d)"
trap 'rm -rf "${out_dir}"' EXIT
trace="${out_dir}/run.trace.json"
metrics="${out_dir}/run.metrics.jsonl"
report="${out_dir}/run.report.json"

"${build_dir}/examples/threaded_training" 1 2 2 0 \
  --trace-out="${trace}" --metrics-out="${metrics}" --report-out="${report}" \
  --snapshot-ms=10

check_json() {
  # Non-empty and well-formed: parse with python3 when available, otherwise
  # fall back to a shape check on the serialized text.
  local path="$1" mode="$2"
  [ -s "${path}" ] || { echo "FAIL: ${path} is empty" >&2; exit 1; }
  if command -v python3 >/dev/null 2>&1; then
    if [ "${mode}" = "lines" ]; then
      python3 - "${path}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    lines = [line for line in f if line.strip()]
assert lines, "no JSON lines"
for line in lines:
    json.loads(line)
EOF
    else
      python3 - "${path}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    json.load(f)
EOF
    fi
  else
    head -c1 "${path}" | grep -q '[{[]' || {
      echo "FAIL: ${path} does not look like JSON" >&2; exit 1; }
  fi
  echo "ok: ${path}"
}

check_json "${trace}" object
check_json "${metrics}" lines
check_json "${report}" object

grep -q '"traceEvents"' "${trace}" || {
  echo "FAIL: trace has no traceEvents array" >&2; exit 1; }
grep -q '"latency"' "${report}" || {
  echo "FAIL: report has no per-stage latency summaries" >&2; exit 1; }

# --- hook overhead budget ----------------------------------------------------
"${build_dir}/bench/micro_obs" --rows=50000 --repeats=5 --trials=3

echo
echo "verify: build + tests + telemetry smoke + overhead budget all green"
