#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite, then smoke
# the telemetry pipeline end to end — a threaded run with --trace-out /
# --flow-out / --metrics-out / --report-out / --prom-out must produce
# non-empty, well-formed artifacts (JSON, plus a Prometheus text exposition
# scraped once and checked line by line), a 4-node simulated cluster epoch
# must export the dist.* metric families, micro_obs must show the hooks
# staying under their 5% overhead budget, and the curated bench suite must
# pass the noise-aware perf-regression gate against bench/baselines/.
#
#   scripts/verify.sh              # full pipeline in build/
#   scripts/verify.sh --fast       # skip the cmake configure step
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"
build_dir="build"

if [ "${1:-}" != "--fast" ]; then
  cmake -B "${build_dir}" -S .
fi
cmake --build "${build_dir}" -j"$(nproc)"
ctest --test-dir "${build_dir}" --output-on-failure

# --- stage-pipeline cross-driver guarantee -----------------------------------
# The count-equality suite (sim engine vs threaded engine vs time-sharing
# baseline over the shared src/pipeline stage bodies) is the refactor's
# headline invariant; surface it by name even though the full run above
# already includes it.
ctest --test-dir "${build_dir}" -R "CountEquality" --output-on-failure

# --- telemetry smoke run -----------------------------------------------------
out_dir="$(mktemp -d)"
trap 'rm -rf "${out_dir}"' EXIT
trace="${out_dir}/run.trace.json"
flow="${out_dir}/run.flow.json"
metrics="${out_dir}/run.metrics.jsonl"
report="${out_dir}/run.report.json"
prom="${out_dir}/run.prom.txt"

"${build_dir}/examples/threaded_training" 1 2 2 0 \
  --trace-out="${trace}" --flow-out="${flow}" --metrics-out="${metrics}" \
  --report-out="${report}" --prom-out="${prom}" \
  --alert="backlog: queue.depth > 1000000" --snapshot-ms=10

check_json() {
  # Non-empty and well-formed: parse with python3 when available, otherwise
  # fall back to a shape check on the serialized text.
  local path="$1" mode="$2"
  [ -s "${path}" ] || { echo "FAIL: ${path} is empty" >&2; exit 1; }
  if command -v python3 >/dev/null 2>&1; then
    if [ "${mode}" = "lines" ]; then
      python3 - "${path}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    lines = [line for line in f if line.strip()]
assert lines, "no JSON lines"
for line in lines:
    json.loads(line)
EOF
    else
      python3 - "${path}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    json.load(f)
EOF
    fi
  else
    head -c1 "${path}" | grep -q '[{[]' || {
      echo "FAIL: ${path} does not look like JSON" >&2; exit 1; }
  fi
  echo "ok: ${path}"
}

check_json "${trace}" object
check_json "${flow}" object
check_json "${metrics}" lines
check_json "${report}" object

grep -q '"traceEvents"' "${trace}" || {
  echo "FAIL: trace has no traceEvents array" >&2; exit 1; }
grep -q '"ph":"s"' "${flow}" || {
  echo "FAIL: flow trace has no Perfetto flow-start events" >&2; exit 1; }
grep -q '"latency"' "${report}" || {
  echo "FAIL: report has no per-stage latency summaries" >&2; exit 1; }
grep -q '"attribution"' "${report}" || {
  echo "FAIL: report has no critical-path attribution" >&2; exit 1; }
grep -q '"switch_decisions"' "${report}" || {
  echo "FAIL: report has no switch decision log" >&2; exit 1; }

# --- Prometheus exposition scrape --------------------------------------------
# One scrape: a known metric family must be present, the alert rule must have
# evaluated into an alert gauge, and no line may be malformed.
[ -s "${prom}" ] || { echo "FAIL: ${prom} is empty" >&2; exit 1; }
grep -q '^gnnlab_queue_enqueued_total ' "${prom}" || {
  echo "FAIL: exposition is missing gnnlab_queue_enqueued_total" >&2; exit 1; }
grep -q '^gnnlab_alert_backlog ' "${prom}" || {
  echo "FAIL: exposition is missing the alert gauge" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "${prom}" <<'EOF'
import re, sys
line_re = re.compile(
    r'^gnnlab_[A-Za-z0-9_:]+(\{[A-Za-z0-9_]+="[^"]*"(,[A-Za-z0-9_]+="[^"]*")*\})?'
    r' -?([0-9.eE+-]+|[Nn]a[Nn]|[+-]?[Ii]nf)$')
bad = [line for line in open(sys.argv[1]) if line.strip()
       and not line.startswith('#') and not line_re.match(line.rstrip('\n'))]
assert not bad, f"malformed exposition lines: {bad!r}"
EOF
else
  grep -v '^#' "${prom}" | grep -v '^$' | grep -vq '^gnnlab_' && {
    echo "FAIL: exposition has non-gnnlab lines" >&2; exit 1; } || true
fi
echo "ok: ${prom}"

# --- serving smoke run -------------------------------------------------------
# Start the inference server with its HTTP exporter, drive a short open-loop
# load, and probe /metrics (serve.* families present) and /healthz (200 from
# a quiet alert state) while the example holds the exporter up; the example
# itself exits nonzero if the client and server disagree on served/shed.
serve_report="${out_dir}/serve.report.json"
serve_port_file="${out_dir}/serve.port"
serve_log="${out_dir}/serve.log"
"${build_dir}/examples/online_serving" --mode=open --rate=2000 --requests=300 \
  --slo-ms=50 --standby-workers=1 --prom-port=0 \
  --port-file="${serve_port_file}" --hold-ms=6000 \
  --report-out="${serve_report}" > "${serve_log}" 2>&1 &
serve_pid=$!
for _ in $(seq 100); do
  [ -s "${serve_port_file}" ] && break
  sleep 0.1
done
[ -s "${serve_port_file}" ] || {
  echo "FAIL: online_serving never published its port" >&2
  cat "${serve_log}" >&2; exit 1; }
serve_port="$(cat "${serve_port_file}")"
sleep 2  # Let the load drain so the scrape sees final serve.* counts.

fetch() {  # curl when present, else a bash /dev/tcp probe.
  local path="$1"
  if command -v curl >/dev/null 2>&1; then
    curl -s "http://127.0.0.1:${serve_port}${path}"
  else
    exec 3<>"/dev/tcp/127.0.0.1/${serve_port}"
    printf 'GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n' \
      "${path}" >&3
    cat <&3
    exec 3<&- 3>&-
  fi
}

serve_metrics="$(fetch /metrics)"
echo "${serve_metrics}" | grep -q '^gnnlab_serve_served_total ' || {
  echo "FAIL: /metrics is missing gnnlab_serve_served_total" >&2
  cat "${serve_log}" >&2; exit 1; }
echo "${serve_metrics}" | grep -q 'gnnlab_serve_e2e_seconds' || {
  echo "FAIL: /metrics is missing the serve e2e latency family" >&2; exit 1; }
fetch /healthz | grep -q 'ok' || {
  echo "FAIL: /healthz did not answer ok" >&2
  cat "${serve_log}" >&2; exit 1; }
echo "ok: /metrics + /healthz on port ${serve_port}"

wait "${serve_pid}" || {
  echo "FAIL: online_serving exited nonzero" >&2
  cat "${serve_log}" >&2; exit 1; }
check_json "${serve_report}" object
grep -q '"e2e_latency"' "${serve_report}" || {
  echo "FAIL: serve report has no e2e latency summary" >&2; exit 1; }
grep -q '"shed_overload"' "${serve_report}" || {
  echo "FAIL: serve report has no shed counters" >&2; exit 1; }

# --- distributed smoke run ---------------------------------------------------
# A 4-node simulated cluster epoch: the run report must carry per-node
# remote-fetch counters and the merged attribution, and the exposition must
# carry the dist.* families (per-node counters under gnnlab_dist_n<k>_*,
# cluster all-reduce totals under gnnlab_dist_allreduce_*).
dist_report="${out_dir}/dist.report.json"
dist_prom="${out_dir}/dist.prom.txt"
"${build_dir}/examples/dist_training" --nodes=4 --scale=0.2 --epochs=1 \
  --report-out="${dist_report}" --prom-out="${dist_prom}"
check_json "${dist_report}" object
grep -q '"bytes_remote"' "${dist_report}" || {
  echo "FAIL: dist report has no remote-fetch counters" >&2; exit 1; }
grep -q '"allreduce_share"' "${dist_report}" || {
  echo "FAIL: dist report has no all-reduce share" >&2; exit 1; }
grep -q '"attribution"' "${dist_report}" || {
  echo "FAIL: dist report has no merged attribution" >&2; exit 1; }
[ -s "${dist_prom}" ] || { echo "FAIL: ${dist_prom} is empty" >&2; exit 1; }
grep -q '^gnnlab_dist_nodes ' "${dist_prom}" || {
  echo "FAIL: dist exposition is missing gnnlab_dist_nodes" >&2; exit 1; }
grep -q '^gnnlab_dist_n0_remote_bytes_total ' "${dist_prom}" || {
  echo "FAIL: dist exposition is missing per-node remote-fetch counters" >&2; exit 1; }
grep -q '^gnnlab_dist_allreduce_rounds_total ' "${dist_prom}" || {
  echo "FAIL: dist exposition is missing all-reduce round counters" >&2; exit 1; }
echo "ok: ${dist_report} + ${dist_prom}"

# --- hook overhead budget ----------------------------------------------------
"${build_dir}/bench/micro_obs" --rows=50000 --repeats=10 --trials=3

# --- perf-regression gate ----------------------------------------------------
# The curated bench suite at its pinned config vs the committed baselines in
# bench/baselines/ (deterministic series only, so the verdict holds on any
# machine). Skipped, not failed, when no baselines are committed yet.
scripts/bench.sh --build-dir="${build_dir}"

echo
echo "verify: build + tests + telemetry smoke + serving smoke + overhead budget + perf gate all green"
