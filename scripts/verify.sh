#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite, then smoke
# the telemetry pipeline end to end — a threaded run with --trace-out /
# --flow-out / --metrics-out / --report-out / --prom-out must produce
# non-empty, well-formed artifacts (JSON, plus a Prometheus text exposition
# scraped once and checked line by line), a crash-injected run must leave a
# schema-valid diagnostics bundle behind, the serving exporter must answer
# /metrics + /healthz + /debug/dump while gnnlab_top renders live frames off
# it, a 4-node simulated cluster epoch must export the dist.* metric
# families, micro_obs must show the hooks staying under their 5% overhead
# budget, and the curated bench suite must pass the noise-aware
# perf-regression gate against bench/baselines/.
#
#   scripts/verify.sh              # full pipeline in build/
#   scripts/verify.sh --fast       # skip the cmake configure step
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"
build_dir="build"

if [ "${1:-}" != "--fast" ]; then
  cmake -B "${build_dir}" -S .
fi
cmake --build "${build_dir}" -j"$(nproc)"
ctest --test-dir "${build_dir}" --output-on-failure

# --- stage-pipeline cross-driver guarantee -----------------------------------
# The count-equality suite (sim engine vs threaded engine vs time-sharing
# baseline over the shared src/pipeline stage bodies) is the refactor's
# headline invariant; surface it by name even though the full run above
# already includes it.
ctest --test-dir "${build_dir}" -R "CountEquality" --output-on-failure

# --- telemetry smoke run -----------------------------------------------------
out_dir="$(mktemp -d)"
trap 'rm -rf "${out_dir}"' EXIT
trace="${out_dir}/run.trace.json"
flow="${out_dir}/run.flow.json"
metrics="${out_dir}/run.metrics.jsonl"
report="${out_dir}/run.report.json"
prom="${out_dir}/run.prom.txt"

"${build_dir}/examples/threaded_training" 1 2 2 0 \
  --trace-out="${trace}" --flow-out="${flow}" --metrics-out="${metrics}" \
  --report-out="${report}" --prom-out="${prom}" \
  --alert="backlog: queue.depth > 1000000" --snapshot-ms=10

check_json() {
  # Non-empty and well-formed: parse with python3 when available, otherwise
  # fall back to a shape check on the serialized text.
  local path="$1" mode="$2"
  [ -s "${path}" ] || { echo "FAIL: ${path} is empty" >&2; exit 1; }
  if command -v python3 >/dev/null 2>&1; then
    if [ "${mode}" = "lines" ]; then
      python3 - "${path}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    lines = [line for line in f if line.strip()]
assert lines, "no JSON lines"
for line in lines:
    json.loads(line)
EOF
    else
      python3 - "${path}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    json.load(f)
EOF
    fi
  else
    head -c1 "${path}" | grep -q '[{[]' || {
      echo "FAIL: ${path} does not look like JSON" >&2; exit 1; }
  fi
  echo "ok: ${path}"
}

check_json "${trace}" object
check_json "${flow}" object
check_json "${metrics}" lines
check_json "${report}" object

grep -q '"traceEvents"' "${trace}" || {
  echo "FAIL: trace has no traceEvents array" >&2; exit 1; }
grep -q '"ph":"s"' "${flow}" || {
  echo "FAIL: flow trace has no Perfetto flow-start events" >&2; exit 1; }
grep -q '"latency"' "${report}" || {
  echo "FAIL: report has no per-stage latency summaries" >&2; exit 1; }
grep -q '"attribution"' "${report}" || {
  echo "FAIL: report has no critical-path attribution" >&2; exit 1; }
grep -q '"switch_decisions"' "${report}" || {
  echo "FAIL: report has no switch decision log" >&2; exit 1; }

# --- Prometheus exposition scrape --------------------------------------------
# One scrape: a known metric family must be present, the alert rule must have
# evaluated into an alert gauge, and no line may be malformed.
[ -s "${prom}" ] || { echo "FAIL: ${prom} is empty" >&2; exit 1; }
grep -q '^gnnlab_queue_enqueued_total ' "${prom}" || {
  echo "FAIL: exposition is missing gnnlab_queue_enqueued_total" >&2; exit 1; }
grep -q '^gnnlab_alert_backlog ' "${prom}" || {
  echo "FAIL: exposition is missing the alert gauge" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "${prom}" <<'EOF'
import re, sys
line_re = re.compile(
    r'^gnnlab_[A-Za-z0-9_:]+(\{[A-Za-z0-9_]+="[^"]*"(,[A-Za-z0-9_]+="[^"]*")*\})?'
    r' -?([0-9.eE+-]+|[Nn]a[Nn]|[+-]?[Ii]nf)$')
bad = [line for line in open(sys.argv[1]) if line.strip()
       and not line.startswith('#') and not line_re.match(line.rstrip('\n'))]
assert not bad, f"malformed exposition lines: {bad!r}"
EOF
else
  grep -v '^#' "${prom}" | grep -v '^$' | grep -vq '^gnnlab_' && {
    echo "FAIL: exposition has non-gnnlab lines" >&2; exit 1; } || true
fi
echo "ok: ${prom}"

# --- streaming ingest-while-training smoke -----------------------------------
# A real-threads run over a temporal-growth graph: edges stream in at epoch
# boundaries while Sampler/Trainer threads run, the incremental re-ranker
# refreshes the cache, and the ingest stage shows up in the critical-path
# attribution. The example itself exits nonzero if any scheduled event is
# neither applied nor dropped as a duplicate.
stream_log="${out_dir}/stream.log"
"${build_dir}/examples/threaded_training" 1 2 3 0 --stream > "${stream_log}" 2>&1 || {
  echo "FAIL: ingest-while-training run exited nonzero" >&2
  cat "${stream_log}" >&2; exit 1; }
grep -q '^stream ingest: ' "${stream_log}" || {
  echo "FAIL: stream run reported no ingest summary" >&2
  cat "${stream_log}" >&2; exit 1; }
grep -Eq '^\s+ingest\s' "${stream_log}" || {
  echo "FAIL: stream run has no ingest row in the attribution" >&2
  cat "${stream_log}" >&2; exit 1; }
echo "ok: ingest-while-training smoke ($(grep '^stream ingest: ' "${stream_log}"))"

# graph_check must reject a bad graph file with exit 2 and a diagnostic
# (the duplicate-edge / timestamp-regression cases are pinned in ctest).
set +e
"${build_dir}/tools/graph_check" "${out_dir}/no-such-graph.gnng" \
  > /dev/null 2> "${out_dir}/graph_check.err"
graph_check_rc=$?
set -e
[ "${graph_check_rc}" = 2 ] || {
  echo "FAIL: graph_check exited ${graph_check_rc} (want 2) on a bad file" >&2; exit 1; }
grep -q 'REJECTED' "${out_dir}/graph_check.err" || {
  echo "FAIL: graph_check printed no REJECTED diagnostic" >&2; exit 1; }
echo "ok: graph_check rejects invalid input with exit 2"

# --- crash-dump smoke --------------------------------------------------------
# Abort a threaded run mid-epoch (a worker thread calls abort() after a few
# trained batches) and assert the fatal-signal handler leaves behind a
# schema-valid diagnostics bundle: JSON that parses, the v1 schema tag, a
# crash reason, the config echo, and a non-empty flight-recorder section.
crash_dir="${out_dir}/crash_dumps"
mkdir -p "${crash_dir}"
crash_log="${out_dir}/crash.log"
set +e
"${build_dir}/examples/threaded_training" 1 2 2 0 \
  --dump-dir="${crash_dir}" --abort-after-batches=3 > "${crash_log}" 2>&1
crash_rc=$?
set -e
[ "${crash_rc}" -ne 0 ] || {
  echo "FAIL: crash-injected run exited zero" >&2; exit 1; }
grep -q 'crash bundle:' "${crash_log}" || {
  echo "FAIL: crash handler never announced a bundle" >&2
  cat "${crash_log}" >&2; exit 1; }
crash_bundle="$(ls "${crash_dir}"/gnnlab_diag.crash_*.json 2>/dev/null | head -1)"
[ -n "${crash_bundle}" ] && [ -s "${crash_bundle}" ] || {
  echo "FAIL: no crash bundle written in ${crash_dir}" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "${crash_bundle}" <<'EOF'
import json, sys
bundle = json.load(open(sys.argv[1]))
assert bundle["schema"] == "gnnlab.diagnostics.v1", bundle["schema"]
assert bundle["reason"].startswith("crash_"), bundle["reason"]
assert bundle["config"].get("example") == "threaded_training", bundle["config"]
assert isinstance(bundle["pid"], int) and bundle["pid"] > 0
flight = bundle["flight_recorder"]
assert flight["total_recorded"] > 0 and flight["events"], "empty flight recorder"
assert any(e["label"] == "epoch_begin" for e in flight["events"]), \
    "no epoch_begin mark before the crash"
assert isinstance(bundle["log_tail"], list) and bundle["log_tail"], "empty log tail"
EOF
else
  grep -q '"schema":"gnnlab.diagnostics.v1"' "${crash_bundle}" || {
    echo "FAIL: crash bundle has wrong schema" >&2; exit 1; }
fi
echo "ok: ${crash_bundle} (exit ${crash_rc})"

# --- serving smoke run -------------------------------------------------------
# Start the inference server with its HTTP exporter, drive a short open-loop
# load, and probe /metrics (serve.* families present) and /healthz (200 from
# a quiet alert state) while the example holds the exporter up; the example
# itself exits nonzero if the client and server disagree on served/shed.
serve_report="${out_dir}/serve.report.json"
serve_port_file="${out_dir}/serve.port"
serve_log="${out_dir}/serve.log"
serve_dump_dir="${out_dir}/serve_dumps"
mkdir -p "${serve_dump_dir}"
"${build_dir}/examples/online_serving" --mode=open --rate=2000 --requests=300 \
  --slo-ms=50 --standby-workers=1 --prom-port=0 \
  --port-file="${serve_port_file}" --hold-ms=8000 \
  --dump-dir="${serve_dump_dir}" \
  --report-out="${serve_report}" > "${serve_log}" 2>&1 &
serve_pid=$!
for _ in $(seq 100); do
  [ -s "${serve_port_file}" ] && break
  sleep 0.1
done
[ -s "${serve_port_file}" ] || {
  echo "FAIL: online_serving never published its port" >&2
  cat "${serve_log}" >&2; exit 1; }
serve_port="$(cat "${serve_port_file}")"
sleep 2  # Let the load drain so the scrape sees final serve.* counts.

fetch() {  # Body only: curl when present, else a bash /dev/tcp probe.
  local path="$1"
  if command -v curl >/dev/null 2>&1; then
    curl -s "http://127.0.0.1:${serve_port}${path}"
  else
    exec 3<>"/dev/tcp/127.0.0.1/${serve_port}"
    printf 'GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n' \
      "${path}" >&3
    cat <&3 | tr -d '\r' | sed '1,/^$/d'
    exec 3<&- 3>&-
  fi
}

serve_metrics="$(fetch /metrics)"
echo "${serve_metrics}" | grep -q '^gnnlab_serve_served_total ' || {
  echo "FAIL: /metrics is missing gnnlab_serve_served_total" >&2
  cat "${serve_log}" >&2; exit 1; }
echo "${serve_metrics}" | grep -q 'gnnlab_serve_e2e_seconds' || {
  echo "FAIL: /metrics is missing the serve e2e latency family" >&2; exit 1; }
fetch /healthz | grep -q 'ok' || {
  echo "FAIL: /healthz did not answer ok" >&2
  cat "${serve_log}" >&2; exit 1; }
echo "ok: /metrics + /healthz on port ${serve_port}"

# /debug/dump beside /metrics: a schema-valid diagnostics bundle on demand.
debug_dump="${out_dir}/debug_dump.json"
fetch /debug/dump > "${debug_dump}"
[ -s "${debug_dump}" ] || { echo "FAIL: /debug/dump returned no body" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "${debug_dump}" <<'EOF'
import json, sys
bundle = json.load(open(sys.argv[1]))
assert bundle["schema"] == "gnnlab.diagnostics.v1", bundle["schema"]
assert bundle["reason"] == "http_debug_dump", bundle["reason"]
assert bundle["metrics"] is not None, "bundle is missing the registry snapshot"
EOF
else
  grep -q '"schema":"gnnlab.diagnostics.v1"' "${debug_dump}" || {
    echo "FAIL: /debug/dump body has wrong schema" >&2; exit 1; }
fi
echo "ok: /debug/dump on port ${serve_port}"

# Live dashboard smoke: two plain-mode frames scraped off the same exporter
# must render the serve table and the build stamp while the server holds.
top_log="${out_dir}/top.log"
"${build_dir}/tools/gnnlab_top" --port="${serve_port}" --frames=2 \
  --interval-ms=300 --plain > "${top_log}" 2>&1 || {
  echo "FAIL: gnnlab_top exited nonzero" >&2
  cat "${top_log}" >&2; exit 1; }
grep -q 'gnnlab_top' "${top_log}" || {
  echo "FAIL: gnnlab_top rendered no header" >&2
  cat "${top_log}" >&2; exit 1; }
grep -q 'serve' "${top_log}" || {
  echo "FAIL: gnnlab_top rendered no serve section" >&2
  cat "${top_log}" >&2; exit 1; }
echo "ok: gnnlab_top rendered 2 live frames"

wait "${serve_pid}" || {
  echo "FAIL: online_serving exited nonzero" >&2
  cat "${serve_log}" >&2; exit 1; }
check_json "${serve_report}" object
grep -q '"e2e_latency"' "${serve_report}" || {
  echo "FAIL: serve report has no e2e latency summary" >&2; exit 1; }
grep -q '"shed_overload"' "${serve_report}" || {
  echo "FAIL: serve report has no shed counters" >&2; exit 1; }

# --- distributed smoke run ---------------------------------------------------
# A 4-node simulated cluster epoch: the run report must carry per-node
# remote-fetch counters and the merged attribution, and the exposition must
# carry the dist.* families (per-node counters under gnnlab_dist_n<k>_*,
# cluster all-reduce totals under gnnlab_dist_allreduce_*).
dist_report="${out_dir}/dist.report.json"
dist_prom="${out_dir}/dist.prom.txt"
"${build_dir}/examples/dist_training" --nodes=4 --scale=0.2 --epochs=1 \
  --report-out="${dist_report}" --prom-out="${dist_prom}"
check_json "${dist_report}" object
grep -q '"bytes_remote"' "${dist_report}" || {
  echo "FAIL: dist report has no remote-fetch counters" >&2; exit 1; }
grep -q '"allreduce_share"' "${dist_report}" || {
  echo "FAIL: dist report has no all-reduce share" >&2; exit 1; }
grep -q '"attribution"' "${dist_report}" || {
  echo "FAIL: dist report has no merged attribution" >&2; exit 1; }
[ -s "${dist_prom}" ] || { echo "FAIL: ${dist_prom} is empty" >&2; exit 1; }
grep -q '^gnnlab_dist_nodes ' "${dist_prom}" || {
  echo "FAIL: dist exposition is missing gnnlab_dist_nodes" >&2; exit 1; }
grep -q '^gnnlab_dist_n0_remote_bytes_total ' "${dist_prom}" || {
  echo "FAIL: dist exposition is missing per-node remote-fetch counters" >&2; exit 1; }
grep -q '^gnnlab_dist_allreduce_rounds_total ' "${dist_prom}" || {
  echo "FAIL: dist exposition is missing all-reduce round counters" >&2; exit 1; }
echo "ok: ${dist_report} + ${dist_prom}"

# --- hook overhead budget ----------------------------------------------------
"${build_dir}/bench/micro_obs" --rows=50000 --repeats=10 --trials=3

# --- perf-regression gate ----------------------------------------------------
# The curated bench suite at its pinned config vs the committed baselines in
# bench/baselines/ (deterministic series only, so the verdict holds on any
# machine). Skipped, not failed, when no baselines are committed yet.
scripts/bench.sh --build-dir="${build_dir}"

echo
echo "verify: build + tests + telemetry smoke + ingest-while-training smoke + crash-dump smoke + serving/dashboard smoke + overhead budget + perf gate all green"
