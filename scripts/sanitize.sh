#!/usr/bin/env bash
# Build and run the concurrency-sensitive tests under a sanitizer.
#
#   scripts/sanitize.sh thread    # TSan: data races, lock-order inversions
#   scripts/sanitize.sh address   # ASan: buffer overflows, use-after-free
#
# Uses a dedicated build directory per sanitizer (build-tsan/ or build-asan/)
# so sanitized objects never mix with the regular build/. Pass extra ctest
# args after the sanitizer name, e.g. `scripts/sanitize.sh thread -R Queue`.
set -euo pipefail

sanitizer="${1:-thread}"
shift || true
case "${sanitizer}" in
  thread)  build_dir="build-tsan" ;;
  address) build_dir="build-asan" ;;
  *) echo "usage: $0 {thread|address} [ctest args...]" >&2; exit 2 ;;
esac

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"

cmake -B "${build_dir}" -S . -DGNNLAB_SANITIZE="${sanitizer}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${build_dir}" -j"$(nproc)" --target \
  concurrency_test runtime_test threaded_engine_test obs_test flow_health_test \
  pipeline_test serve_test dist_test diagnostics_test tiered_store_test stream_test

# The threaded/concurrency suites are the ones exercising real parallelism,
# the pipeline suite drives the shared stage bodies through all four
# drivers, the serve suite runs the inference server's dispatch/standby
# threads against concurrent training cache marks, and the diagnostics
# suite hammers the flight recorder's seqlock rings and the per-site log
# rate limiter from racing writers under a concurrent snapshot reader; the
# purely simulated
# suites are single-threaded by design and add little here. The dist
# battery rides along anyway: its N=1 bit-exactness and cross-repeat
# determinism checks are the contracts a latent race would corrupt first.
# The stream battery covers epoch-boundary ingest + cache re-ranking racing
# the threaded engine's worker threads, and the inference server answering
# against a live DynamicGraph.
if [ "$#" -eq 0 ]; then
  set -- -R "Concurrency|MpmcQueue|ParallelFor|ParallelExtract|ParallelSampling|ThreadPool|ThreadedEngine|Runtime|Histogram|Counter|MetricRegistry|RuntimeTracer|Snapshot|FlowTracer|CriticalPath|HealthMonitor|AlertRule|Prometheus|CountEquality|BatchStreams|CacheBuilder|SwitchGate|ReportAssembler|Serve|BatchFormer|Admission|LoadGen|Partitioner|CommManager|Dist|FlightRecorder|DiagnosticsHub|LogRateLimiter|StructuredLog|TieredStore|Belady|StreamEngine|StreamServe|DynamicGraph"
fi
# report_signal_unsafe=0: the crash-bundle handler deliberately allocates
# inside the signal handler (documented best-effort trade-off in
# obs/diagnostics.cc); TSan would otherwise halt the death-test child on
# that report before the bundle is written. Race detection is unaffected.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:report_signal_unsafe=0}" \
  ctest --test-dir "${build_dir}" --output-on-failure "$@"
