#!/usr/bin/env bash
# Benchmark observatory runner: executes the curated bench suite at a pinned
# small-scale config, consolidates the per-bench BenchReports into one
# BENCH_<date>.json trajectory file at the repo root, and gates the run
# against the committed baselines in bench/baselines/ with tools/benchdiff.
#
#   scripts/bench.sh                     # run suite + gate vs baselines
#   scripts/bench.sh --refresh-baselines # rewrite bench/baselines/*.json
#   scripts/bench.sh --gate=all          # also gate wall-clock series
#   scripts/bench.sh --no-gate           # run + consolidate only
#
# The suite config is pinned (scale/epochs/seed below): committed baselines
# are only meaningful at one config, and benchdiff refuses to compare
# reports whose configs differ. Only deterministic (simulated-timeline)
# series gate by default, so the committed baselines hold on any machine.
# With no baselines committed yet the gate is skipped, not failed.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"
build_dir="build"
baseline_dir="bench/baselines"
gate_mode="deterministic"
refresh=0
run_gate=1

for arg in "$@"; do
  case "${arg}" in
    --build-dir=*) build_dir="${arg#--build-dir=}" ;;
    --refresh-baselines) refresh=1 ;;
    --gate=*) gate_mode="${arg#--gate=}" ;;
    --no-gate) run_gate=0 ;;
    --help)
      sed -n '2,16p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *)
      echo "bench.sh: unknown flag: ${arg}" >&2
      exit 2
      ;;
  esac
done

bench_bin="${build_dir}/bench"
diff_bin="${build_dir}/tools/benchdiff"
[ -x "${diff_bin}" ] || {
  echo "bench.sh: ${diff_bin} not built (cmake --build ${build_dir})" >&2
  exit 2
}

# The curated suite: one representative per layer (end-to-end factored vs
# baselines, cache policy, policy e2e, distributed, microbenchmarks — the
# extract kernel and the observability-hook budget), each fast enough at
# the pinned scale that the suite stays under a minute.
pinned="--scale=0.04 --epochs=2 --seed=42"
declare -A suite=(
  [table1_breakdown]="${pinned}"
  [fig10_hitrate]="${pinned}"
  [fig13_policy_e2e]="${pinned}"
  [dist_scaling]="${pinned}"
  [micro_extract]="--seed=42 --rows=50000 --dim=32"
  [micro_obs]="--seed=42 --rows=50000 --repeats=10 --trials=3"
  [fig_capacity_tiers]="${pinned}"
  # The drift scenario sizes its own graph; it needs >= 3 epochs of drift
  # signal, so it pins epochs itself instead of taking the suite's 2.
  [fig_drift]="--seed=42 --epochs=6"
)

out_dir="$(mktemp -d)"
trap 'rm -rf "${out_dir}"' EXIT
reports=()
for bench in table1_breakdown fig10_hitrate fig13_policy_e2e dist_scaling micro_extract micro_obs fig_capacity_tiers fig_drift; do
  report="${out_dir}/${bench}.json"
  echo "bench.sh: running ${bench} ${suite[${bench}]}"
  # shellcheck disable=SC2086
  "${bench_bin}/${bench}" ${suite[${bench}]} --json="${report}" > "${out_dir}/${bench}.log" 2>&1 || {
    echo "bench.sh: ${bench} exited nonzero:" >&2
    tail -20 "${out_dir}/${bench}.log" >&2
    exit 1
  }
  [ -s "${report}" ] || { echo "bench.sh: ${bench} wrote no report" >&2; exit 1; }
  reports+=("${report}")
done

# Consolidate: one suite object whose "reports" array holds each bench's
# report verbatim (every report is a single JSON line by construction).
date_tag="$(date +%Y%m%d)"
git_tag="$(git describe --always --dirty 2>/dev/null || echo unknown)"
suite_file="BENCH_${date_tag}.json"
{
  printf '{"schema":"gnnlab.bench_suite.v1","date":"%s","git":"%s","reports":[' \
    "${date_tag}" "${git_tag}"
  first=1
  for report in "${reports[@]}"; do
    [ "${first}" = 1 ] || printf ','
    first=0
    tr -d '\n' < "${report}"
  done
  printf ']}\n'
} > "${suite_file}"
echo "bench.sh: wrote ${suite_file}"

if [ "${refresh}" = 1 ]; then
  mkdir -p "${baseline_dir}"
  for report in "${reports[@]}"; do
    cp "${report}" "${baseline_dir}/$(basename "${report}")"
  done
  echo "bench.sh: refreshed ${baseline_dir}/ ($(ls "${baseline_dir}" | wc -l) baselines)"
  exit 0
fi

if [ "${run_gate}" = 0 ]; then
  echo "bench.sh: gate skipped (--no-gate)"
  exit 0
fi
if ! ls "${baseline_dir}"/*.json >/dev/null 2>&1; then
  echo "bench.sh: no baselines in ${baseline_dir}/, gate skipped" \
       "(run scripts/bench.sh --refresh-baselines to record them)"
  exit 0
fi

echo "bench.sh: gating against ${baseline_dir}/ (--gate=${gate_mode})"
"${diff_bin}" --gate="${gate_mode}" "${baseline_dir}" "${reports[@]}" || {
  rc=$?
  if [ "${rc}" = 1 ]; then
    echo "bench.sh: PERF REGRESSION — see the table above;" \
         "if intentional, refresh with scripts/bench.sh --refresh-baselines" >&2
  fi
  exit "${rc}"
}
echo "bench.sh: perf gate clean"
