// Cross-system integration tests: the paper's headline relations, checked
// at test scale across the full stack (engine + baselines + caching).
#include <gtest/gtest.h>

#include "baselines/cpu_runner.h"
#include "baselines/timeshare_runner.h"
#include "core/engine.h"

namespace gnnlab {
namespace {

const Dataset& Papers() {
  static const Dataset* ds = new Dataset(MakeDataset(DatasetId::kPapers, 0.05, 42));
  return *ds;
}
const Dataset& Twitter() {
  static const Dataset* ds = new Dataset(MakeDataset(DatasetId::kTwitter, 0.05, 42));
  return *ds;
}

constexpr ByteCount kGpuMem = 8 * kMiB;

double GnnlabEpoch(const Dataset& ds, const Workload& workload, int gpus) {
  EngineOptions options;
  options.num_gpus = gpus;
  options.gpu_memory = kGpuMem;
  options.epochs = 2;
  Engine engine(ds, workload, options);
  const RunReport report = engine.Run();
  EXPECT_FALSE(report.oom) << report.oom_detail;
  return report.AvgEpochTime();
}

double TsotaEpoch(const Dataset& ds, const Workload& workload, int gpus) {
  TimeShareOptions options = TsotaOptions();
  options.num_gpus = gpus;
  options.gpu_memory = kGpuMem;
  options.epochs = 2;
  TimeShareRunner runner(ds, workload, options);
  const RunReport report = runner.Run();
  EXPECT_FALSE(report.oom) << report.oom_detail;
  return report.AvgEpochTime();
}

double DglEpoch(const Dataset& ds, const Workload& workload, int gpus) {
  TimeShareOptions options = DglOptions();
  options.num_gpus = gpus;
  options.gpu_memory = kGpuMem;
  options.epochs = 2;
  TimeShareRunner runner(ds, workload, options);
  const RunReport report = runner.Run();
  EXPECT_FALSE(report.oom) << report.oom_detail;
  return report.AvgEpochTime();
}

double PygEpoch(const Dataset& ds, const Workload& workload, int gpus) {
  CpuRunnerOptions options;
  options.num_gpus = gpus;
  options.epochs = 2;
  CpuRunner runner(ds, workload, options);
  return runner.Run().AvgEpochTime();
}

// Table 4's ordering on every model: GNNLab < T_SOTA < DGL < PyG.
class SystemOrderingTest : public ::testing::TestWithParam<GnnModelKind> {};

TEST_P(SystemOrderingTest, PaperOrderingHolds) {
  const Workload workload = StandardWorkload(GetParam());
  const Dataset& ds = Papers();
  const double gnnlab = GnnlabEpoch(ds, workload, 8);
  const double tsota = TsotaEpoch(ds, workload, 8);
  const double dgl = DglEpoch(ds, workload, 8);
  EXPECT_LT(gnnlab, tsota) << "GNNLab must beat T_SOTA";
  EXPECT_LT(tsota, dgl) << "T_SOTA must beat DGL";
  // Headline magnitude (paper: 2.4x-9.1x over DGL). Train-bound PinSAGE
  // compresses the gap at this reduced test scale.
  EXPECT_GT(dgl / gnnlab, GetParam() == GnnModelKind::kPinSage ? 1.2 : 2.0);
  if (GetParam() != GnnModelKind::kPinSage) {
    // The paper does not run PyG on PinSAGE (Table 4 marks it unsupported).
    const double pyg = PygEpoch(ds, workload, 8);
    EXPECT_LT(dgl, pyg) << "DGL must beat PyG";
    EXPECT_GT(pyg / gnnlab, 5.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Models, SystemOrderingTest,
                         ::testing::Values(GnnModelKind::kGcn, GnnModelKind::kGraphSage,
                                           GnnModelKind::kPinSage));

// Paper Table 4, note (2): on PR everything fits in one GPU, so T_SOTA's
// time sharing is competitive (slightly better) with GNNLab.
TEST(SystemOrderingTest, ProductsIsTheException) {
  const Dataset ds = MakeDataset(DatasetId::kProducts, 0.1, 42);
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  const double gnnlab = GnnlabEpoch(ds, workload, 8);
  const double tsota = TsotaEpoch(ds, workload, 8);
  // Same ballpark; T_SOTA may win since the factored design's queue copy
  // buys nothing when the cache already holds every feature.
  EXPECT_LT(tsota, gnnlab * 1.5);
}

// Figure 14's scaling shape: GNNLab gains more from extra GPUs than the
// time-sharing baselines, whose extraction contends on the host channel.
TEST(ScalabilityTest, GnnlabScalesBetterThanDgl) {
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  const Dataset& ds = Twitter();
  const double gnnlab_2 = GnnlabEpoch(ds, workload, 2);
  const double gnnlab_8 = GnnlabEpoch(ds, workload, 8);
  const double dgl_2 = DglEpoch(ds, workload, 2);
  const double dgl_8 = DglEpoch(ds, workload, 8);
  const double gnnlab_speedup = gnnlab_2 / gnnlab_8;
  EXPECT_GT(gnnlab_speedup, 1.2);
  // GNNLab stays strictly faster at every GPU count (the full-scale
  // bench/fig14_scalability shows the baselines' flattening curves).
  EXPECT_LT(gnnlab_8, dgl_8);
  EXPECT_LT(gnnlab_2, dgl_2);
}

// The single-GPU mode (paper §7.9): GNNLab still beats DGL on one GPU
// thanks to PreSC caching.
TEST(SingleGpuTest, GnnlabBeatsDglOnOneGpu) {
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  const Dataset& ds = Papers();
  const double gnnlab = GnnlabEpoch(ds, workload, 1);
  const double dgl = DglEpoch(ds, workload, 1);
  EXPECT_LT(gnnlab, dgl);
  EXPECT_GT(dgl / gnnlab, 1.5);  // Paper: 1.9x-7.7x.
}

// Capacity story (Table 4's OOM column): at UK-like volume ratios the
// baselines OOM while GNNLab runs.
TEST(CapacityTest, BaselinesOomWhereGnnlabRuns) {
  const Dataset uk = MakeDataset(DatasetId::kUk, 0.05, 42);
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  // Size the GPU so topology consumes 80% of it: the factored design fits
  // (topology + 8% sampler workspace), time sharing cannot (topology + 30%
  // combined workspaces + cache) -- the paper's Table 4 OOM column.
  const auto gpu_mem = static_cast<ByteCount>(
      static_cast<double>(uk.TopologyBytes()) / 0.8);

  EngineOptions gnnlab_options;
  gnnlab_options.num_gpus = 4;
  gnnlab_options.gpu_memory = gpu_mem;
  gnnlab_options.epochs = 1;
  Engine engine(uk, workload, gnnlab_options);
  const RunReport gnnlab_report = engine.Run();
  EXPECT_FALSE(gnnlab_report.oom) << gnnlab_report.oom_detail;

  TimeShareOptions dgl_options = DglOptions();
  dgl_options.num_gpus = 4;
  dgl_options.gpu_memory = gpu_mem;
  TimeShareRunner dgl(uk, workload, dgl_options);
  EXPECT_TRUE(dgl.Run().oom);
}

// Preprocessing (Table 6) is amortizable: one-time costs are bounded by a
// few tens of epochs.
TEST(PreprocessingTest, AmortizedWithinTypicalTraining) {
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  EngineOptions options;
  options.num_gpus = 8;
  options.gpu_memory = kGpuMem;
  options.epochs = 2;
  Engine engine(Papers(), workload, options);
  const RunReport report = engine.Run();
  ASSERT_FALSE(report.oom);
  const double epoch = report.AvgEpochTime();
  // GPU-side preprocessing (topo + cache load + presample) is amortized
  // over a typical >=100-epoch training run (paper §7.6: ~15x of one epoch
  // at full scale; the ratio is larger here because the test GPU is not
  // scaled down with the 0.05-scale dataset, enlarging the cache).
  EXPECT_LT(report.preprocess.topo_load + report.preprocess.cache_load +
                report.preprocess.presample,
            100.0 * epoch);
}

}  // namespace
}  // namespace gnnlab
