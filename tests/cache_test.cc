// Tests for src/cache: the general caching scheme (load_cache semantics),
// the four policies, and the paper's core caching claims at test scale —
// PreSC beats Degree on low-skew graphs and under weighted sampling, and
// approaches the Optimal oracle (§6, Figures 5/10/11).
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "cache/cache_policy.h"
#include "cache/feature_cache.h"
#include "core/workload.h"
#include "graph/dataset.h"

namespace gnnlab {
namespace {

// Shared fixtures: datasets are expensive to generate, so build once.
const Dataset& Products() {
  static const Dataset* ds = new Dataset(MakeDataset(DatasetId::kProducts, 0.1, 42));
  return *ds;
}
const Dataset& Papers() {
  static const Dataset* ds = new Dataset(MakeDataset(DatasetId::kPapers, 0.05, 42));
  return *ds;
}
const Dataset& Twitter() {
  static const Dataset* ds = new Dataset(MakeDataset(DatasetId::kTwitter, 0.05, 42));
  return *ds;
}

CachePolicyContext ContextFor(const Dataset& ds, const Workload& workload,
                              const EdgeWeights* weights = nullptr) {
  CachePolicyContext context;
  context.graph = &ds.graph;
  context.train_set = &ds.train_set;
  context.batch_size = ds.batch_size;
  context.seed = 1;
  context.sampler_factory = [&ds, &workload, weights] {
    return MakeSampler(workload, ds, weights);
  };
  return context;
}

// Records the exact footprint the measurement epoch will see.
Footprint RecordEpochFootprint(Sampler* sampler, const Dataset& ds, std::uint64_t epoch_seed) {
  Footprint fp(ds.graph.num_vertices());
  Rng shuffle(epoch_seed);
  Rng rng(epoch_seed ^ 0x5bd1e995u);
  EpochBatches batches(ds.train_set, ds.batch_size, &shuffle);
  while (batches.HasNext()) {
    fp.Accumulate(sampler->Sample(batches.NextBatch(), &rng, nullptr));
  }
  return fp;
}

// --- FeatureCache ------------------------------------------------------------

TEST(FeatureCacheTest, LoadCachesTopRanked) {
  const std::vector<VertexId> ranked{5, 3, 8, 1, 0, 2, 4, 6, 7, 9};
  const FeatureCache cache = FeatureCache::Load(ranked, 0.3, 10, 16);
  EXPECT_EQ(cache.num_cached(), 3u);
  EXPECT_TRUE(cache.Contains(5));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(8));
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_DOUBLE_EQ(cache.ratio(), 0.3);
}

TEST(FeatureCacheTest, ZeroRatioCachesNothing) {
  const std::vector<VertexId> ranked{0, 1, 2};
  const FeatureCache cache = FeatureCache::Load(ranked, 0.0, 3, 4);
  EXPECT_EQ(cache.num_cached(), 0u);
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_EQ(cache.CacheBytes(), 0u);
}

TEST(FeatureCacheTest, FullRatioCachesEverything) {
  const std::vector<VertexId> ranked{2, 1, 0};
  const FeatureCache cache = FeatureCache::Load(ranked, 1.0, 3, 4);
  EXPECT_EQ(cache.num_cached(), 3u);
  EXPECT_DOUBLE_EQ(cache.ratio(), 1.0);
}

TEST(FeatureCacheTest, LoadWithBudgetConvertsBytesToRows) {
  const std::vector<VertexId> ranked{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  // 16-dim float rows are 64 bytes; a 320-byte budget holds 5 rows.
  const FeatureCache cache = FeatureCache::LoadWithBudget(ranked, 320, 10, 16);
  EXPECT_EQ(cache.num_cached(), 5u);
  EXPECT_EQ(cache.CacheBytes(), 320u);
}

TEST(FeatureCacheTest, BudgetLargerThanAllRowsCachesAll) {
  const std::vector<VertexId> ranked{0, 1, 2};
  const FeatureCache cache = FeatureCache::LoadWithBudget(ranked, 1 << 20, 3, 16);
  EXPECT_EQ(cache.num_cached(), 3u);
}

TEST(FeatureCacheTest, ZeroVertexCacheHasZeroRatio) {
  const FeatureCache cache = FeatureCache::Load({}, 0.5, 0, 16);
  EXPECT_EQ(cache.num_cached(), 0u);
  EXPECT_DOUBLE_EQ(cache.ratio(), 0.0);  // Not a 0/0 NaN.
  EXPECT_EQ(cache.CacheBytes(), 0u);
}

TEST(FeatureCacheTest, BudgetBelowOneRowCachesNothing) {
  const std::vector<VertexId> ranked{0, 1, 2};
  // 16-dim float rows are 64 bytes; a 63-byte budget holds zero rows.
  const FeatureCache cache = FeatureCache::LoadWithBudget(ranked, 63, 3, 16);
  EXPECT_EQ(cache.num_cached(), 0u);
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_EQ(cache.CacheBytes(), 0u);
}

TEST(FeatureCacheTest, ZeroDimBudgetDoesNotDivideByZero) {
  const std::vector<VertexId> ranked{0, 1, 2};
  const FeatureCache cache = FeatureCache::LoadWithBudget(ranked, 1024, 3, 0);
  EXPECT_EQ(cache.num_cached(), 0u);
}

TEST(FeatureCacheTest, MarkBlockMatchesContains) {
  const std::vector<VertexId> ranked{4, 5};
  const FeatureCache cache = FeatureCache::Load(ranked, 0.2, 10, 16);
  RemapScratch scratch(10);
  SampleBlockBuilder builder(&scratch);
  const VertexId seeds[] = {4, 1};
  builder.Begin(seeds);
  builder.BeginHop();
  builder.AddEdge(0, 5);
  builder.EndHop();
  SampleBlock block = builder.Finish();
  cache.MarkBlock(&block);
  ASSERT_EQ(block.cache_marks().size(), 3u);
  EXPECT_EQ(block.cache_marks()[0], 1);  // Vertex 4 cached.
  EXPECT_EQ(block.cache_marks()[1], 0);  // Vertex 1 not cached.
  EXPECT_EQ(block.cache_marks()[2], 1);  // Vertex 5 cached.
}

// --- Policies ---------------------------------------------------------------

TEST(DegreePolicyTest, RanksByOutDegree) {
  const Dataset& ds = Products();
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  auto policy = MakeDegreePolicy();
  const auto ranked = policy->Rank(ContextFor(ds, workload));
  ASSERT_EQ(ranked.size(), ds.graph.num_vertices());
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ds.graph.out_degree(ranked[i - 1]), ds.graph.out_degree(ranked[i]));
  }
  EXPECT_STREQ(policy->name(), "Degree");
}

TEST(RandomPolicyTest, IsAPermutationAndSeedDeterministic) {
  const Dataset& ds = Products();
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  auto policy = MakeRandomPolicy();
  const auto a = policy->Rank(ContextFor(ds, workload));
  const auto b = policy->Rank(ContextFor(ds, workload));
  EXPECT_EQ(a, b);
  std::set<VertexId> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), ds.graph.num_vertices());
}

TEST(PreSamplingPolicyTest, ProducesFullRanking) {
  const Dataset& ds = Products();
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  auto policy = MakePreSamplingPolicy(1);
  const auto ranked = policy->Rank(ContextFor(ds, workload));
  ASSERT_EQ(ranked.size(), ds.graph.num_vertices());
  std::set<VertexId> unique(ranked.begin(), ranked.end());
  EXPECT_EQ(unique.size(), ds.graph.num_vertices());
  EXPECT_STREQ(policy->name(), "PreSC#1");
  EXPECT_STREQ(MakePreSamplingPolicy(2)->name(), "PreSC#2");
}

TEST(PreSamplingPolicyTest, TopRankedVerticesAreActuallyHot) {
  const Dataset& ds = Products();
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  auto policy = MakePreSamplingPolicy(1);
  const auto ranked = policy->Rank(ContextFor(ds, workload));
  // Record an independent epoch and check the policy's top pick is visited
  // far more than the median vertex.
  auto sampler = MakeSampler(workload, ds, nullptr);
  const Footprint fp = RecordEpochFootprint(sampler.get(), ds, 777);
  const auto counts = fp.counts();
  EXPECT_GT(counts[ranked.front()], counts[ranked[ranked.size() / 2]]);
}

TEST(OptimalOracleTest, RanksByProvidedFootprint) {
  Footprint fp(4);
  RemapScratch scratch(4);
  SampleBlockBuilder builder(&scratch);
  const VertexId seeds[] = {2, 2, 1};
  builder.Begin(seeds);
  builder.BeginHop();
  builder.AddEdge(0, 3);
  builder.AddEdge(0, 3);
  builder.AddEdge(0, 3);
  builder.EndHop();
  fp.Accumulate(builder.Finish());
  auto oracle = MakeOptimalOracle(std::move(fp));
  CachePolicyContext context;
  const auto ranked = oracle->Rank(context);
  EXPECT_EQ(ranked[0], 3u);  // 3 visits.
  EXPECT_STREQ(oracle->name(), "Optimal");
}

// --- MeasureEpochExtraction & paper-property checks --------------------------

double HitRateFor(const Dataset& ds, const Workload& workload, const EdgeWeights* weights,
                  CachePolicy* policy, double ratio, std::uint64_t epoch_seed) {
  const auto ranked = policy->Rank(ContextFor(ds, workload, weights));
  const FeatureCache cache =
      FeatureCache::Load(ranked, ratio, ds.graph.num_vertices(), ds.feature_dim);
  auto sampler = MakeSampler(workload, ds, weights);
  const EpochExtractionResult result = MeasureEpochExtraction(
      sampler.get(), ds.train_set, ds.batch_size, cache, ds.feature_dim, epoch_seed);
  return result.HitRate();
}

TEST(MeasureEpochExtractionTest, EmptyCacheZeroHits) {
  const Dataset& ds = Products();
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  const FeatureCache cache =
      FeatureCache::Load({}, 0.0, ds.graph.num_vertices(), ds.feature_dim);
  auto sampler = MakeSampler(workload, ds, nullptr);
  const auto result = MeasureEpochExtraction(sampler.get(), ds.train_set, ds.batch_size, cache,
                                             ds.feature_dim, 5);
  EXPECT_EQ(result.cache_hits, 0u);
  EXPECT_GT(result.distinct_vertices, 0u);
  EXPECT_EQ(result.bytes_from_host,
            result.distinct_vertices * ds.feature_dim * sizeof(float));
  EXPECT_EQ(result.batches, ds.BatchesPerEpoch());
}

TEST(MeasureEpochExtractionTest, FullCacheAllHits) {
  const Dataset& ds = Products();
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  auto policy = MakeRandomPolicy();
  const auto ranked = policy->Rank(ContextFor(ds, workload));
  const FeatureCache cache =
      FeatureCache::Load(ranked, 1.0, ds.graph.num_vertices(), ds.feature_dim);
  auto sampler = MakeSampler(workload, ds, nullptr);
  const auto result = MeasureEpochExtraction(sampler.get(), ds.train_set, ds.batch_size, cache,
                                             ds.feature_dim, 5);
  EXPECT_DOUBLE_EQ(result.HitRate(), 1.0);
  EXPECT_EQ(result.bytes_from_host, 0u);
}

TEST(MeasureEpochExtractionTest, DeterministicInSeed) {
  const Dataset& ds = Products();
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  auto policy = MakeDegreePolicy();
  const auto ranked = policy->Rank(ContextFor(ds, workload));
  const FeatureCache cache =
      FeatureCache::Load(ranked, 0.1, ds.graph.num_vertices(), ds.feature_dim);
  auto s1 = MakeSampler(workload, ds, nullptr);
  auto s2 = MakeSampler(workload, ds, nullptr);
  const auto a = MeasureEpochExtraction(s1.get(), ds.train_set, ds.batch_size, cache,
                                        ds.feature_dim, 9);
  const auto b = MeasureEpochExtraction(s2.get(), ds.train_set, ds.batch_size, cache,
                                        ds.feature_dim, 9);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.distinct_vertices, b.distinct_vertices);
}

// Paper §6.3 "Efficiency": PreSC#1 clearly beats Degree on the low-skew
// citation graph at a small cache ratio (Figure 11b).
TEST(CachingPropertyTest, PreScBeatsDegreeOnCitationGraph) {
  const Dataset& ds = Papers();
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  auto presc = MakePreSamplingPolicy(1);
  auto degree = MakeDegreePolicy();
  const double hr_presc = HitRateFor(ds, workload, nullptr, presc.get(), 0.1, 31);
  const double hr_degree = HitRateFor(ds, workload, nullptr, degree.get(), 0.1, 31);
  EXPECT_GT(hr_presc, hr_degree + 0.1)
      << "PreSC " << hr_presc << " vs Degree " << hr_degree;
}

// Paper §6.3 "Robustness": weighted sampling breaks Degree even on the
// power-law graph (Figure 5b / 10).
TEST(CachingPropertyTest, PreScBeatsDegreeUnderWeightedSampling) {
  const Dataset& ds = Twitter();
  const Workload workload = WeightedGcnWorkload();
  const EdgeWeights weights = ds.MakeWeights();
  auto presc = MakePreSamplingPolicy(1);
  auto degree = MakeDegreePolicy();
  const double hr_presc = HitRateFor(ds, workload, &weights, presc.get(), 0.1, 33);
  const double hr_degree = HitRateFor(ds, workload, &weights, degree.get(), 0.1, 33);
  EXPECT_GT(hr_presc, hr_degree)
      << "PreSC " << hr_presc << " vs Degree " << hr_degree;
}

// Paper abstract: PreSC achieves 90-99% of the optimal hit rate.
TEST(CachingPropertyTest, PreScApproachesOptimal) {
  const Dataset& ds = Papers();
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  auto sampler = MakeSampler(workload, ds, nullptr);
  const std::uint64_t epoch_seed = 41;
  Footprint oracle_fp = RecordEpochFootprint(sampler.get(), ds, epoch_seed);
  auto oracle = MakeOptimalOracle(std::move(oracle_fp));
  auto presc = MakePreSamplingPolicy(1);
  const double hr_optimal = HitRateFor(ds, workload, nullptr, oracle.get(), 0.1, epoch_seed);
  const double hr_presc = HitRateFor(ds, workload, nullptr, presc.get(), 0.1, epoch_seed);
  EXPECT_LE(hr_presc, hr_optimal + 1e-9);
  EXPECT_GT(hr_presc, 0.85 * hr_optimal);
}

// Hit rate must be monotone in the cache ratio for a fixed ranking.
class CacheRatioMonotonicityTest : public ::testing::TestWithParam<double> {};

TEST_P(CacheRatioMonotonicityTest, HigherRatioNeverHurts) {
  const Dataset& ds = Products();
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  auto policy = MakePreSamplingPolicy(1);
  const double ratio = GetParam();
  const double lo = HitRateFor(ds, workload, nullptr, policy.get(), ratio, 51);
  const double hi = HitRateFor(ds, workload, nullptr, policy.get(), ratio + 0.1, 51);
  EXPECT_GE(hi + 1e-9, lo);
}

INSTANTIATE_TEST_SUITE_P(Ratios, CacheRatioMonotonicityTest,
                         ::testing::Values(0.0, 0.05, 0.1, 0.2, 0.4, 0.8));

}  // namespace
}  // namespace gnnlab
