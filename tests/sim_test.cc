// Tests for src/sim: the device memory ledger, the cost model's
// monotonicity/calibration properties, and the discrete-event engine's
// ordering guarantees.
#include <vector>

#include <gtest/gtest.h>

#include "common/units.h"
#include "sim/cost_model.h"
#include "sim/device.h"
#include "sim/sim_engine.h"
#include "sim/trace.h"

namespace gnnlab {
namespace {

// --- Device ------------------------------------------------------------------

TEST(DeviceTest, AllocationBookkeeping) {
  Device dev(0, 100);
  EXPECT_TRUE(dev.TryAllocate(MemoryKind::kTopology, 40));
  EXPECT_TRUE(dev.TryAllocate(MemoryKind::kFeatureCache, 50));
  EXPECT_EQ(dev.used(), 90u);
  EXPECT_EQ(dev.available(), 10u);
  EXPECT_EQ(dev.used(MemoryKind::kTopology), 40u);
}

TEST(DeviceTest, RejectsOverCapacity) {
  Device dev(0, 100);
  EXPECT_TRUE(dev.TryAllocate(MemoryKind::kTopology, 80));
  EXPECT_FALSE(dev.TryAllocate(MemoryKind::kFeatureCache, 30));
  // Failed allocation must not change state.
  EXPECT_EQ(dev.used(), 80u);
}

TEST(DeviceTest, ExactFitSucceeds) {
  Device dev(1, 100);
  EXPECT_TRUE(dev.TryAllocate(MemoryKind::kTrainerWorkspace, 100));
  EXPECT_EQ(dev.available(), 0u);
}

TEST(DeviceTest, FreeReturnsMemory) {
  Device dev(0, 100);
  ASSERT_TRUE(dev.TryAllocate(MemoryKind::kFeatureCache, 60));
  dev.Free(MemoryKind::kFeatureCache, 20);
  EXPECT_EQ(dev.used(), 40u);
  dev.FreeAll(MemoryKind::kFeatureCache);
  EXPECT_EQ(dev.used(), 0u);
}

TEST(DeviceDeathTest, OverFreeAborts) {
  Device dev(0, 100);
  ASSERT_TRUE(dev.TryAllocate(MemoryKind::kTopology, 10));
  EXPECT_DEATH(dev.Free(MemoryKind::kTopology, 20), "Check failed");
}

TEST(DeviceTest, DebugStringMentionsUsage) {
  Device dev(3, 64 * kMiB);
  ASSERT_TRUE(dev.TryAllocate(MemoryKind::kTopology, 10 * kMiB));
  const std::string s = dev.DebugString();
  EXPECT_NE(s.find("gpu3"), std::string::npos);
  EXPECT_NE(s.find("topology"), std::string::npos);
}

TEST(MemoryKindTest, Names) {
  EXPECT_STREQ(MemoryKindName(MemoryKind::kTopology), "topology");
  EXPECT_STREQ(MemoryKindName(MemoryKind::kFeatureCache), "feature-cache");
}

// --- CostModel ----------------------------------------------------------------

TEST(CostModelTest, SampleTimeScalesWithEntries) {
  const CostModel cost;
  SamplerStats small;
  small.adjacency_entries_scanned = 1000;
  SamplerStats big;
  big.adjacency_entries_scanned = 10000;
  EXPECT_LT(cost.GpuSampleTime(small), cost.GpuSampleTime(big));
  EXPECT_NEAR(cost.GpuSampleTime(big) / cost.GpuSampleTime(small), 10.0, 1e-9);
}

TEST(CostModelTest, CpuSamplingSlowerThanGpu) {
  const CostModel cost;
  SamplerStats stats;
  stats.adjacency_entries_scanned = 100000;
  // Paper Table 1: CPU sampling ~4.2x slower.
  EXPECT_NEAR(cost.CpuSampleTime(stats) / cost.GpuSampleTime(stats), 4.25, 0.5);
}

TEST(CostModelTest, DglOverheadLargerForRandomWalks) {
  const CostModel cost;
  SamplerStats stats;
  stats.adjacency_entries_scanned = 100000;
  const SimTime khop = cost.DglSampleTime(stats, SamplingAlgorithm::kKhopUniform, true);
  const SimTime walk = cost.DglSampleTime(stats, SamplingAlgorithm::kRandomWalk, true);
  // k-hop: the Reservoir kernel's extra scans carry DGL's gap, so no
  // additional runtime multiplier; random walks pay ~3x (paper 7.3).
  EXPECT_GE(khop, cost.GpuSampleTime(stats));
  EXPECT_GT(walk, khop);
}

TEST(CostModelTest, ExtractCheaperWithMoreHits) {
  const CostModel cost;
  ExtractStats cold;
  cold.distinct_vertices = 10000;
  cold.host_misses = 10000;
  cold.bytes_from_host = 10000 * 512;
  ExtractStats warm;
  warm.distinct_vertices = 10000;
  warm.cache_hits = 9900;
  warm.host_misses = 100;
  warm.bytes_from_host = 100 * 512;
  EXPECT_LT(cost.ExtractTime(warm, true), cost.ExtractTime(cold, true));
}

TEST(CostModelTest, CpuExtractSlowerThanGpuExtract) {
  const CostModel cost;
  ExtractStats stats;
  stats.distinct_vertices = 10000;
  stats.host_misses = 10000;
  stats.bytes_from_host = 10000 * 512;
  EXPECT_GT(cost.ExtractTime(stats, false), cost.ExtractTime(stats, true));
}

TEST(CostModelTest, TrainTimeScalesWithModelFactor) {
  const CostModel cost;
  TrainWork work;
  work.block_edges = 10000;
  work.block_vertices = 5000;
  work.feature_dim = 128;
  work.hidden_dim = 256;
  work.num_layers = 3;
  work.model_factor = 1.0;
  const SimTime base = cost.TrainTime(work);
  work.model_factor = 8.0;
  EXPECT_NEAR(cost.TrainTime(work) / base, 8.0, 1e-9);
}

TEST(CostModelTest, LoadTimesProportionalToBytes) {
  const CostModel cost;
  EXPECT_NEAR(cost.DiskLoadTime(2 * kMiB) / cost.DiskLoadTime(kMiB), 2.0, 1e-9);
  EXPECT_NEAR(cost.TopologyLoadTime(2 * kMiB) / cost.TopologyLoadTime(kMiB), 2.0, 1e-9);
  EXPECT_NEAR(cost.CacheLoadTime(2 * kMiB) / cost.CacheLoadTime(kMiB), 2.0, 1e-9);
}

TEST(CostModelTest, CustomParamsRespected) {
  CostModelParams params;
  params.gpu_sample_per_entry = 1.0;
  const CostModel cost(params);
  SamplerStats stats;
  stats.adjacency_entries_scanned = 3;
  EXPECT_DOUBLE_EQ(cost.GpuSampleTime(stats), 3.0);
}

// --- SimEngine -----------------------------------------------------------------

TEST(SimEngineTest, RunsEventsInTimeOrder) {
  SimEngine sim;
  std::vector<int> order;
  sim.Schedule(3.0, [&] { order.push_back(3); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(2.0, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(SimEngineTest, SimultaneousEventsFifo) {
  SimEngine sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SimEngineTest, EventsCanScheduleEvents) {
  SimEngine sim;
  int fired = 0;
  sim.Schedule(1.0, [&] {
    ++fired;
    sim.Schedule(1.0, [&] { ++fired; });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(SimEngineTest, RunUntilStopsAtDeadline) {
  SimEngine sim;
  int fired = 0;
  sim.Schedule(1.0, [&] { ++fired; });
  sim.Schedule(5.0, [&] { ++fired; });
  sim.RunUntil(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimEngineTest, RunUntilIncludesBoundary) {
  SimEngine sim;
  int fired = 0;
  sim.Schedule(2.0, [&] { ++fired; });
  sim.RunUntil(2.0);
  EXPECT_EQ(fired, 1);
}

TEST(SimEngineDeathTest, RejectsNegativeDelay) {
  SimEngine sim;
  EXPECT_DEATH(sim.Schedule(-1.0, [] {}), "Check failed");
}

TEST(SimEngineDeathTest, RejectsPastTimestamp) {
  SimEngine sim;
  sim.Schedule(5.0, [] {});
  sim.Run();
  EXPECT_DEATH(sim.ScheduleAt(1.0, [] {}), "Check failed");
}

TEST(TraceRecorderTest, RecordsSpans) {
  TraceRecorder trace;
  trace.Record("gpu0/sampler", "sample b1", "sample", 0.0, 0.5);
  trace.Record("gpu1/trainer", "train b1", "train", 0.5, 1.0);
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.spans()[0].lane, "gpu0/sampler");
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
}

TEST(TraceRecorderTest, ChromeJsonHasLanesAndEvents) {
  TraceRecorder trace;
  trace.Record("gpu0/sampler", "sample b1", "sample", 0.0, 0.5);
  trace.Record("gpu0/sampler", "sample b2", "sample", 0.5, 0.9);
  trace.Record("gpu1/trainer", "train b1", "train", 0.6, 1.0);
  const std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("gpu1/trainer"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // 500000 us duration for the first span.
  EXPECT_NE(json.find("\"dur\":500000"), std::string::npos);
}

TEST(TraceRecorderTest, WriteChromeTraceRoundTrip) {
  TraceRecorder trace;
  trace.Record("lane", "event", "cat", 1.0, 2.0);
  const std::string path = std::string(::testing::TempDir()) + "/trace.json";
  ASSERT_TRUE(trace.WriteChromeTrace(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[16] = {};
  ASSERT_EQ(std::fread(buf, 1, 15, f), 15u);
  std::fclose(f);
  EXPECT_EQ(std::string(buf), "{\"traceEvents\":");
  std::remove(path.c_str());
}

TEST(TraceRecorderDeathTest, RejectsInvertedSpan) {
  TraceRecorder trace;
  EXPECT_DEATH(trace.Record("l", "n", "c", 2.0, 1.0), "Check failed");
}

TEST(SimEngineTest, ClockMonotoneAcrossRuns) {
  SimEngine sim;
  sim.Schedule(1.0, [] {});
  sim.Run();
  sim.Schedule(1.0, [] {});
  sim.Run();
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

}  // namespace
}  // namespace gnnlab
