// Tests for src/nn: aggregation semantics, finite-difference gradient
// checks for both layer kinds and full models, the loss, Adam, and
// data-parallel gradient synchronization.
#include <cmath>

#include <gtest/gtest.h>

#include "nn/aggregate.h"
#include "nn/gat.h"
#include "nn/grad_sync.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "sampling/sample_block.h"
#include "tensor/ops.h"

namespace gnnlab {
namespace {

// A fixed 2-hop block over 6 vertices: seeds {0,1}; hop0 adds {2,3},
// hop1 adds {4,5}.
SampleBlock TwoHopBlock() {
  RemapScratch scratch(10);
  SampleBlockBuilder builder(&scratch);
  const VertexId seeds[] = {0, 1};
  builder.Begin(seeds);
  builder.BeginHop();
  builder.AddEdge(0, 2);
  builder.AddEdge(0, 3);
  builder.AddEdge(1, 3);
  builder.EndHop();
  builder.BeginHop();
  builder.AddEdge(0, 4);
  builder.AddEdge(2, 5);
  builder.AddEdge(3, 4);
  builder.EndHop();
  return builder.Finish();
}

// --- Aggregation -------------------------------------------------------------

TEST(AggregateTest, MeanWithoutSelf) {
  HopEdges edges;
  edges.src_local = {1, 2};
  edges.dst_local = {0, 0};
  Tensor h_in(3, 2, {0, 0, 2, 4, 4, 8});
  Tensor agg;
  std::vector<float> counts;
  MeanAggregate(edges, 3, 1, h_in, /*include_self=*/false, &agg, &counts);
  EXPECT_FLOAT_EQ(agg.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(agg.at(0, 1), 6.0f);
  EXPECT_FLOAT_EQ(counts[0], 2.0f);
}

TEST(AggregateTest, MeanWithSelfIncludesOwnRow) {
  HopEdges edges;
  edges.src_local = {1};
  edges.dst_local = {0};
  Tensor h_in(2, 1, {6, 0});
  Tensor agg;
  std::vector<float> counts;
  MeanAggregate(edges, 2, 1, h_in, /*include_self=*/true, &agg, &counts);
  EXPECT_FLOAT_EQ(agg.at(0, 0), 3.0f);  // (6 + 0) / 2.
  EXPECT_FLOAT_EQ(counts[0], 2.0f);
}

TEST(AggregateTest, IsolatedOutputStaysZero) {
  HopEdges edges;  // No edges at all.
  Tensor h_in(2, 2, {1, 2, 3, 4});
  Tensor agg;
  std::vector<float> counts;
  MeanAggregate(edges, 2, 2, h_in, false, &agg, &counts);
  EXPECT_FLOAT_EQ(agg.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(agg.at(1, 1), 0.0f);
}

TEST(AggregateTest, EdgeMultiplicityWeights) {
  // Vertex 1 appears twice: the mean weights it 2/3.
  HopEdges edges;
  edges.src_local = {1, 1, 2};
  edges.dst_local = {0, 0, 0};
  Tensor h_in(3, 1, {0, 3, 9});
  Tensor agg;
  std::vector<float> counts;
  MeanAggregate(edges, 3, 1, h_in, false, &agg, &counts);
  EXPECT_FLOAT_EQ(agg.at(0, 0), 5.0f);  // (3 + 3 + 9) / 3.
}

TEST(AggregateTest, BackwardIsTransposeOfForward) {
  // For a linear map, <grad_agg, MeanAggregate(h)> == <Backward(grad_agg), h>.
  HopEdges edges;
  edges.src_local = {1, 2, 2};
  edges.dst_local = {0, 0, 1};
  Rng rng(1);
  Tensor h_in = Tensor::Glorot(3, 4, &rng);
  Tensor agg;
  std::vector<float> counts;
  MeanAggregate(edges, 3, 2, h_in, false, &agg, &counts);
  Tensor grad_agg = Tensor::Glorot(2, 4, &rng);
  Tensor grad_in = Tensor::Zeros(3, 4);
  MeanAggregateBackward(edges, 3, 2, counts, false, grad_agg, &grad_in);
  EXPECT_NEAR(Dot(grad_agg, agg), Dot(grad_in, h_in), 1e-5);
}

// --- Layer gradient checks -----------------------------------------------------

struct GradCheckCase {
  LayerKind kind;
  bool relu;
};

class LayerGradientTest : public ::testing::TestWithParam<GradCheckCase> {};

TEST_P(LayerGradientTest, FiniteDifferencesMatch) {
  const auto [kind, relu] = GetParam();
  const SampleBlock block = TwoHopBlock();
  const HopEdges& edges = block.hop(0);
  const std::size_t n_in = block.VerticesAfterHop(1);   // 4 vertices.
  const std::size_t n_out = block.VerticesAfterHop(0);  // 2 seeds.

  Rng rng(7);
  GnnLayer layer(kind, 3, 2, relu, &rng);
  Tensor h_in = Tensor::Glorot(n_in, 3, &rng);
  // A fixed random "loss" direction g: loss = <g, layer(h_in)>.
  Tensor g = Tensor::Glorot(n_out, 2, &rng);

  auto loss = [&](const Tensor& input) {
    Tensor out;
    layer.Forward(edges, n_in, n_out, input, &out);
    return Dot(g, out);
  };

  // Analytic gradients.
  Tensor h_out;
  layer.Forward(edges, n_in, n_out, h_in, &h_out);
  layer.ZeroGrads();
  Tensor grad_in;
  layer.Backward(g, &grad_in);

  // Check d(loss)/d(input) at several entries.
  const double eps = 1e-3;
  const std::vector<std::pair<std::size_t, std::size_t>> probes{{0, 0}, {1, 2}, {2, 1}, {3, 0}};
  for (const auto& [r, c] : probes) {
    Tensor plus = h_in;
    plus.at(r, c) += static_cast<float>(eps);
    Tensor minus = h_in;
    minus.at(r, c) -= static_cast<float>(eps);
    const double numeric = (loss(plus) - loss(minus)) / (2 * eps);
    EXPECT_NEAR(grad_in.at(r, c), numeric, 5e-3 + 0.05 * std::abs(numeric))
        << "input grad at (" << r << "," << c << ")";
  }

  // Check d(loss)/d(params): perturb a few weight entries.
  layer.ZeroGrads();
  layer.Forward(edges, n_in, n_out, h_in, &h_out);
  layer.Backward(g, &grad_in);
  auto params = layer.Params();
  auto grads = layer.Grads();
  for (std::size_t p = 0; p < params.size(); ++p) {
    for (const std::size_t idx : {std::size_t{0}, params[p]->size() - 1}) {
      const float original = params[p]->data()[idx];
      params[p]->data()[idx] = original + static_cast<float>(eps);
      const double up = loss(h_in);
      params[p]->data()[idx] = original - static_cast<float>(eps);
      const double down = loss(h_in);
      params[p]->data()[idx] = original;
      const double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(grads[p]->data()[idx], numeric, 5e-3 + 0.05 * std::abs(numeric))
          << "param " << p << " entry " << idx;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, LayerGradientTest,
                         ::testing::Values(GradCheckCase{LayerKind::kGcn, true},
                                           GradCheckCase{LayerKind::kGcn, false},
                                           GradCheckCase{LayerKind::kSage, true},
                                           GradCheckCase{LayerKind::kSage, false}));

TEST(LayerTest, ParamCountsByKind) {
  Rng rng(1);
  GnnLayer gcn(LayerKind::kGcn, 4, 3, true, &rng);
  GnnLayer sage(LayerKind::kSage, 4, 3, true, &rng);
  EXPECT_EQ(gcn.NumParameters(), 4 * 3 + 3u);
  EXPECT_EQ(sage.NumParameters(), 2 * 4 * 3 + 3u);
  EXPECT_EQ(gcn.Params().size(), 2u);
  EXPECT_EQ(sage.Params().size(), 3u);
}

// --- Model -------------------------------------------------------------------

class ModelGradientTest : public ::testing::TestWithParam<GnnModelKind> {};

TEST_P(ModelGradientTest, EndToEndGradientsMatchFiniteDifferences) {
  const SampleBlock block = TwoHopBlock();
  ModelConfig config;
  config.kind = GetParam();
  config.num_layers = 2;
  config.in_dim = 3;
  config.hidden_dim = 4;
  config.num_classes = 3;
  Rng rng(11);
  GnnModel model(config, &rng);

  Tensor input = Tensor::Glorot(block.vertices().size(), 3, &rng);
  const std::vector<std::uint32_t> labels{0, 2};

  auto loss_value = [&] {
    const Tensor& logits = model.Forward(block, input);
    Tensor unused;
    return SoftmaxCrossEntropy(logits, labels, &unused);
  };

  const Tensor& logits = model.Forward(block, input);
  Tensor grad_logits;
  SoftmaxCrossEntropy(logits, labels, &grad_logits);
  model.ZeroGrads();
  model.Backward(grad_logits);

  auto params = model.Params();
  auto grads = model.Grads();
  ASSERT_EQ(params.size(), grads.size());
  const double eps = 1e-2;
  int checked = 0;
  for (std::size_t p = 0; p < params.size(); ++p) {
    if (params[p]->size() == 0) {
      continue;
    }
    const std::size_t idx = params[p]->size() / 2;
    const float original = params[p]->data()[idx];
    params[p]->data()[idx] = original + static_cast<float>(eps);
    const double up = loss_value();
    params[p]->data()[idx] = original - static_cast<float>(eps);
    const double down = loss_value();
    params[p]->data()[idx] = original;
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(grads[p]->data()[idx], numeric, 2e-3 + 0.1 * std::abs(numeric))
        << "param " << p;
    ++checked;
  }
  EXPECT_GE(checked, 4);
}

INSTANTIATE_TEST_SUITE_P(Models, ModelGradientTest,
                         ::testing::Values(GnnModelKind::kGcn, GnnModelKind::kGraphSage,
                                           GnnModelKind::kPinSage, GnnModelKind::kGat));

// --- GAT layer ---------------------------------------------------------------

TEST(GatLayerTest, AttentionCoefficientsSumToOnePerDestination) {
  const SampleBlock block = TwoHopBlock();
  const HopEdges& edges = block.hop(0);
  Rng rng(21);
  GatLayer layer(3, 2, /*relu=*/false, &rng);
  Tensor h_in = Tensor::Glorot(block.VerticesAfterHop(1), 3, &rng);
  Tensor h_out;
  layer.Forward(edges, block.VerticesAfterHop(1), block.VerticesAfterHop(0), h_in, &h_out);
  // With a zero weight matrix the output would be zero; with softmax
  // coefficients, each output row is a convex combination of Z rows. We
  // verify indirectly: outputs lie within the min/max range of Z + bias
  // per column (a property of convex combinations).
  Tensor z;
  MatMul(h_in, *layer.Params()[0], &z);
  for (std::size_t c = 0; c < 2; ++c) {
    float lo = 1e30f;
    float hi = -1e30f;
    for (std::size_t r = 0; r < z.rows(); ++r) {
      lo = std::min(lo, z.at(r, c));
      hi = std::max(hi, z.at(r, c));
    }
    for (std::size_t r = 0; r < h_out.rows(); ++r) {
      EXPECT_GE(h_out.at(r, c), lo - 1e-5f);
      EXPECT_LE(h_out.at(r, c), hi + 1e-5f);
    }
  }
}

TEST(GatLayerTest, IsolatedDestinationKeepsSelfSignal) {
  // No edges at all: the implicit self-edge gets alpha = 1, so the output
  // is exactly Z[d] + bias.
  HopEdges edges;
  Rng rng(22);
  GatLayer layer(2, 2, /*relu=*/false, &rng);
  Tensor h_in = Tensor::Glorot(2, 2, &rng);
  Tensor h_out;
  layer.Forward(edges, 2, 2, h_in, &h_out);
  Tensor z;
  MatMul(h_in, *layer.Params()[0], &z);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_NEAR(h_out.at(r, c), z.at(r, c), 1e-5f);  // bias is zero-init.
    }
  }
}

TEST(GatLayerTest, GradientsMatchFiniteDifferences) {
  const SampleBlock block = TwoHopBlock();
  const HopEdges& edges = block.hop(0);
  const std::size_t n_in = block.VerticesAfterHop(1);
  const std::size_t n_out = block.VerticesAfterHop(0);
  Rng rng(23);
  GatLayer layer(3, 2, /*relu=*/true, &rng);
  Tensor h_in = Tensor::Glorot(n_in, 3, &rng);
  Tensor g = Tensor::Glorot(n_out, 2, &rng);

  auto loss = [&](const Tensor& input) {
    Tensor out;
    layer.Forward(edges, n_in, n_out, input, &out);
    return Dot(g, out);
  };

  Tensor h_out;
  layer.Forward(edges, n_in, n_out, h_in, &h_out);
  layer.ZeroGrads();
  Tensor grad_in;
  layer.Backward(g, &grad_in);

  const double eps = 1e-3;
  // Input gradients.
  for (const auto& [r, c] :
       std::vector<std::pair<std::size_t, std::size_t>>{{0, 0}, {1, 2}, {3, 1}}) {
    Tensor plus = h_in;
    plus.at(r, c) += static_cast<float>(eps);
    Tensor minus = h_in;
    minus.at(r, c) -= static_cast<float>(eps);
    const double numeric = (loss(plus) - loss(minus)) / (2 * eps);
    EXPECT_NEAR(grad_in.at(r, c), numeric, 5e-3 + 0.05 * std::abs(numeric))
        << "input (" << r << "," << c << ")";
  }
  // Parameter gradients (weight, attn_src, attn_dst, bias).
  layer.ZeroGrads();
  layer.Forward(edges, n_in, n_out, h_in, &h_out);
  layer.Backward(g, &grad_in);
  auto params = layer.Params();
  auto grads = layer.Grads();
  for (std::size_t p = 0; p < params.size(); ++p) {
    for (const std::size_t idx : {std::size_t{0}, params[p]->size() - 1}) {
      const float original = params[p]->data()[idx];
      params[p]->data()[idx] = original + static_cast<float>(eps);
      const double up = loss(h_in);
      params[p]->data()[idx] = original - static_cast<float>(eps);
      const double down = loss(h_in);
      params[p]->data()[idx] = original;
      const double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(grads[p]->data()[idx], numeric, 5e-3 + 0.05 * std::abs(numeric))
          << "param " << p << " entry " << idx;
    }
  }
}

TEST(GatLayerTest, ParameterCount) {
  Rng rng(24);
  GatLayer layer(4, 3, true, &rng);
  EXPECT_EQ(layer.NumParameters(), 4 * 3 + 3 + 3 + 3u);
  EXPECT_EQ(layer.Params().size(), 4u);
}

TEST(ModelTest, ForwardShapes) {
  const SampleBlock block = TwoHopBlock();
  ModelConfig config;
  config.kind = GnnModelKind::kGcn;
  config.num_layers = 2;
  config.in_dim = 5;
  config.hidden_dim = 8;
  config.num_classes = 4;
  Rng rng(3);
  GnnModel model(config, &rng);
  Tensor input = Tensor::Glorot(block.vertices().size(), 5, &rng);
  const Tensor& logits = model.Forward(block, input);
  EXPECT_EQ(logits.rows(), block.num_seeds());
  EXPECT_EQ(logits.cols(), 4u);
}

TEST(ModelDeathTest, HopCountMustMatchDepth) {
  const SampleBlock block = TwoHopBlock();  // 2 hops.
  ModelConfig config;
  config.kind = GnnModelKind::kGcn;
  config.num_layers = 3;  // Mismatch.
  config.in_dim = 3;
  config.hidden_dim = 4;
  config.num_classes = 2;
  Rng rng(4);
  GnnModel model(config, &rng);
  Tensor input = Tensor::Glorot(block.vertices().size(), 3, &rng);
  EXPECT_DEATH((void)model.Forward(block, input), "hops must match");
}

TEST(ModelTest, KindNames) {
  EXPECT_STREQ(GnnModelKindName(GnnModelKind::kGcn), "GCN");
  EXPECT_STREQ(GnnModelKindName(GnnModelKind::kGraphSage), "GraphSAGE");
  EXPECT_STREQ(GnnModelKindName(GnnModelKind::kPinSage), "PinSAGE");
  EXPECT_STREQ(GnnModelKindName(GnnModelKind::kGat), "GAT");
}

// --- Loss ---------------------------------------------------------------------

TEST(LossTest, UniformLogitsGiveLogC) {
  const Tensor logits = Tensor::Zeros(2, 4);
  const std::vector<std::uint32_t> labels{1, 3};
  Tensor grad;
  const double loss = SoftmaxCrossEntropy(logits, labels, &grad);
  EXPECT_NEAR(loss, std::log(4.0), 1e-6);
}

TEST(LossTest, PerfectPredictionNearZeroLoss) {
  Tensor logits = Tensor::Zeros(1, 3);
  logits.at(0, 1) = 50.0f;
  const std::vector<std::uint32_t> labels{1};
  Tensor grad;
  EXPECT_NEAR(SoftmaxCrossEntropy(logits, labels, &grad), 0.0, 1e-6);
}

TEST(LossTest, GradientSumsToZeroPerRow) {
  Tensor logits(2, 3, {1, 2, 3, -1, 0, 1});
  const std::vector<std::uint32_t> labels{0, 2};
  Tensor grad;
  SoftmaxCrossEntropy(logits, labels, &grad);
  for (std::size_t r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 3; ++c) {
      sum += grad.at(r, c);
    }
    EXPECT_NEAR(sum, 0.0f, 1e-6);
  }
}

TEST(LossTest, NumericallyStableWithHugeLogits) {
  Tensor logits(1, 2, {1000.0f, -1000.0f});
  const std::vector<std::uint32_t> labels{0};
  Tensor grad;
  const double loss = SoftmaxCrossEntropy(logits, labels, &grad);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0, 1e-6);
}

TEST(LossTest, AccuracyCountsArgmaxMatches) {
  Tensor logits(3, 2, {1, 0, 0, 1, 1, 0});
  const std::vector<std::uint32_t> labels{0, 1, 1};
  EXPECT_NEAR(Accuracy(logits, labels), 2.0 / 3.0, 1e-9);
}

// --- Optimizer ------------------------------------------------------------------

TEST(AdamTest, DescendsQuadratic) {
  // Minimize f(x) = x^2 starting from x = 5.
  Tensor x(1, 1, {5.0f});
  Tensor grad(1, 1);
  Adam adam(AdamConfig{.lr = 0.1});
  for (int step = 0; step < 200; ++step) {
    grad.at(0, 0) = 2.0f * x.at(0, 0);
    adam.Step({&x}, {&grad});
  }
  EXPECT_NEAR(x.at(0, 0), 0.0f, 0.05f);
  EXPECT_EQ(adam.steps(), 200u);
}

TEST(AdamTest, HandlesMultipleParams) {
  Tensor a(1, 2, {1.0f, -1.0f});
  Tensor b(2, 1, {2.0f, -2.0f});
  Tensor ga(1, 2);
  Tensor gb(2, 1);
  Adam adam(AdamConfig{.lr = 0.05});
  for (int step = 0; step < 300; ++step) {
    for (std::size_t i = 0; i < 2; ++i) {
      ga.data()[i] = 2.0f * a.data()[i];
      gb.data()[i] = 2.0f * b.data()[i];
    }
    adam.Step({&a, &b}, {&ga, &gb});
  }
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(a.data()[i], 0.0f, 0.05f);
    EXPECT_NEAR(b.data()[i], 0.0f, 0.05f);
  }
}

// --- Gradient sync ----------------------------------------------------------------

TEST(GradSyncTest, AverageGradientsEqualizesReplicas) {
  ModelConfig config;
  config.kind = GnnModelKind::kGcn;
  config.num_layers = 1;
  config.in_dim = 2;
  config.hidden_dim = 4;
  config.num_classes = 2;
  Rng rng(5);
  GnnModel a(config, &rng);
  GnnModel b(config, &rng);
  a.Grads()[0]->Fill(1.0f);
  b.Grads()[0]->Fill(3.0f);
  AverageGradients({&a, &b});
  EXPECT_FLOAT_EQ(a.Grads()[0]->data()[0], 2.0f);
  EXPECT_FLOAT_EQ(b.Grads()[0]->data()[0], 2.0f);
}

TEST(GradSyncTest, BroadcastParametersCopiesFromFirst) {
  ModelConfig config;
  config.kind = GnnModelKind::kGraphSage;
  config.num_layers = 1;
  config.in_dim = 2;
  config.hidden_dim = 4;
  config.num_classes = 2;
  Rng rng_a(1);
  Rng rng_b(2);
  GnnModel a(config, &rng_a);
  GnnModel b(config, &rng_b);
  BroadcastParameters({&a, &b});
  for (std::size_t p = 0; p < a.Params().size(); ++p) {
    for (std::size_t i = 0; i < a.Params()[p]->size(); ++i) {
      EXPECT_EQ(a.Params()[p]->data()[i], b.Params()[p]->data()[i]);
    }
  }
}

TEST(GradSyncTest, GradientBytesCountsAllParams) {
  ModelConfig config;
  config.kind = GnnModelKind::kGcn;
  config.num_layers = 1;
  config.in_dim = 2;
  config.hidden_dim = 4;
  config.num_classes = 3;
  Rng rng(6);
  GnnModel model(config, &rng);
  EXPECT_EQ(GradientBytes(model), model.NumParameters() * sizeof(float));
}

}  // namespace
}  // namespace gnnlab
