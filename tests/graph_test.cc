// Tests for src/graph: CSR storage, the builder, generators' structural
// signatures, edge weights, training sets, and the dataset catalog.
#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/units.h"
#include "graph/csr_graph.h"
#include "graph/dataset.h"
#include "graph/edge_weights.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/graph_stats.h"
#include "graph/training_set.h"

namespace gnnlab {
namespace {

CsrGraph SmallGraph() {
  // 0 -> {1, 2}, 1 -> {2}, 2 -> {}, 3 -> {0, 1, 2}
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  builder.AddEdge(3, 0);
  builder.AddEdge(3, 1);
  builder.AddEdge(3, 2);
  return std::move(builder).Build();
}

TEST(CsrGraphTest, BasicAccessors) {
  const CsrGraph g = SmallGraph();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(2), 0u);
  EXPECT_EQ(g.out_degree(3), 3u);
}

TEST(CsrGraphTest, NeighborsAreSorted) {
  const CsrGraph g = SmallGraph();
  const auto nbrs = g.Neighbors(3);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(CsrGraphTest, EmptyAdjacency) {
  const CsrGraph g = SmallGraph();
  EXPECT_TRUE(g.Neighbors(2).empty());
}

TEST(CsrGraphTest, TopologyBytesCountsBothArrays) {
  const CsrGraph g = SmallGraph();
  EXPECT_EQ(g.TopologyBytes(), 5 * sizeof(EdgeIndex) + 6 * sizeof(VertexId));
}

TEST(CsrGraphTest, InDegrees) {
  const CsrGraph g = SmallGraph();
  const auto in = g.ComputeInDegrees();
  EXPECT_EQ(in[0], 1u);
  EXPECT_EQ(in[1], 2u);
  EXPECT_EQ(in[2], 3u);
  EXPECT_EQ(in[3], 0u);
}

TEST(CsrGraphDeathTest, RejectsOutOfRangeIndex) {
  std::vector<EdgeIndex> indptr{0, 1};
  std::vector<VertexId> indices{5};  // Vertex 5 does not exist.
  EXPECT_DEATH({ CsrGraph g(std::move(indptr), std::move(indices)); }, "Check failed");
}

TEST(GraphBuilderTest, RemovesSelfLoops) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 0);
  builder.AddEdge(0, 1);
  const CsrGraph g = std::move(builder).Build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilderTest, Deduplicates) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  const CsrGraph g = std::move(builder).Build();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphBuilderTest, KeepsDuplicatesWhenDisabled) {
  GraphBuilder builder(3);
  builder.set_deduplicate(false);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  const CsrGraph g = std::move(builder).Build();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphBuilderTest, SymmetrizeAddsReverseEdges) {
  GraphBuilder builder(3);
  builder.set_symmetrize(true);
  builder.AddEdge(0, 1);
  const CsrGraph g = std::move(builder).Build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.Neighbors(1)[0], 0u);
}

TEST(GraphBuilderTest, AddEdgesBulk) {
  GraphBuilder builder(4);
  builder.AddEdges({{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(builder.edge_count(), 3u);
}

TEST(GraphBuilderDeathTest, RejectsOutOfRangeVertex) {
  GraphBuilder builder(2);
  EXPECT_DEATH(builder.AddEdge(0, 2), "Check failed");
}

TEST(GeneratorsTest, RmatProducesRequestedShape) {
  Rng rng(1);
  RmatParams params;
  params.num_vertices = 4096;
  params.num_edges = 40000;
  const CsrGraph g = GenerateRmat(params, &rng);
  EXPECT_EQ(g.num_vertices(), 4096u);
  EXPECT_GT(g.num_edges(), 30000u);
  EXPECT_LE(g.num_edges(), 40000u);
}

TEST(GeneratorsTest, RmatIsSkewed) {
  Rng rng(2);
  RmatParams params;
  params.num_vertices = 8192;
  params.num_edges = 120000;
  const CsrGraph g = GenerateRmat(params, &rng);
  const DegreeStats stats = ComputeOutDegreeStats(g);
  // Power-law signature: the top 1% of vertices own a large share of edges.
  EXPECT_GT(stats.top1pct_edge_share, 0.15);
  EXPECT_GT(stats.gini, 0.5);
}

TEST(GeneratorsTest, CitationHasNarrowOutDegrees) {
  Rng rng(3);
  CitationParams params;
  params.num_vertices = 20000;
  params.mean_out_degree = 14.0;
  const CsrGraph g = GenerateCitation(params, &rng);
  const DegreeStats stats = ComputeOutDegreeStats(g);
  EXPECT_NEAR(stats.mean, 14.0, 3.0);
  // Moderate skew: far below the power-law graphs (TW top-1% ~38%), per
  // the paper's "not highly skewed" citation-network characterization.
  EXPECT_LT(stats.gini, 0.55);
  EXPECT_LT(stats.top1pct_edge_share, 0.15);
}

TEST(GeneratorsTest, CitationDegreesArePositivelyCorrelated) {
  // Active authors are also cited more: out-degree and in-degree should
  // correlate weakly-but-positively (why the degree policy is better than
  // random yet far from optimal on OGB-Papers, paper Table 5).
  Rng rng(4);
  CitationParams params;
  params.num_vertices = 20000;
  params.mean_out_degree = 14.0;
  const CsrGraph g = GenerateCitation(params, &rng);
  const auto in = g.ComputeInDegrees();
  double sum_x = 0, sum_y = 0, sum_xx = 0, sum_yy = 0, sum_xy = 0;
  const auto count = static_cast<double>(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto x = static_cast<double>(g.out_degree(v));
    const auto y = static_cast<double>(in[v]);
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_yy += y * y;
    sum_xy += x * y;
  }
  const double cov = sum_xy / count - (sum_x / count) * (sum_y / count);
  const double var_x = sum_xx / count - (sum_x / count) * (sum_x / count);
  const double var_y = sum_yy / count - (sum_y / count) * (sum_y / count);
  const double corr = cov / std::sqrt(var_x * var_y);
  EXPECT_GT(corr, 0.05);
  EXPECT_LT(corr, 0.9);
}

TEST(GeneratorsTest, WebGraphHasLocalityAndHubs) {
  Rng rng(5);
  WebParams params;
  params.num_vertices = 20000;
  params.mean_out_degree = 20.0;
  params.locality_window = 128;
  const CsrGraph g = GenerateWeb(params, &rng);
  // Most edges are local (within the window modulo wraparound).
  std::size_t local = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId n : g.Neighbors(v)) {
      const auto distance = static_cast<VertexId>(
          std::min((n + g.num_vertices() - v) % g.num_vertices(),
                   (v + g.num_vertices() - n) % g.num_vertices()));
      if (distance <= params.locality_window) {
        ++local;
      }
    }
  }
  EXPECT_GT(static_cast<double>(local) / static_cast<double>(g.num_edges()), 0.6);
}

TEST(GeneratorsTest, CopurchaseIsSymmetric) {
  Rng rng(6);
  CopurchaseParams params;
  params.num_vertices = 4000;
  params.mean_degree = 20.0;
  const CsrGraph g = GenerateCopurchase(params, &rng);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId n : g.Neighbors(v)) {
      const auto back = g.Neighbors(n);
      EXPECT_TRUE(std::binary_search(back.begin(), back.end(), v))
          << "edge " << v << "->" << n << " has no reverse";
    }
  }
}

TEST(GraphStatsTest, UniformGraphHasLowGini) {
  GraphBuilder builder(100);
  for (VertexId v = 0; v < 100; ++v) {
    builder.AddEdge(v, (v + 1) % 100);
    builder.AddEdge(v, (v + 2) % 100);
  }
  const CsrGraph g = std::move(builder).Build();
  const DegreeStats stats = ComputeOutDegreeStats(g);
  EXPECT_DOUBLE_EQ(stats.mean, 2.0);
  EXPECT_NEAR(stats.gini, 0.0, 1e-9);
}

TEST(GraphStatsTest, HistogramBucketsByLog2) {
  GraphBuilder builder(10);
  for (VertexId n = 0; n < 8; ++n) {
    builder.AddEdge(9, n);  // Degree 8 -> bucket 3.
  }
  builder.AddEdge(0, 1);  // Degree 1 -> bucket 0.
  const CsrGraph g = std::move(builder).Build();
  const auto hist = DegreeHistogramLog2(g);
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist[3], 1u);
  EXPECT_EQ(hist[0], 9u);  // Eight zero-degree + one degree-1 vertex.
}

TEST(EdgeWeightsTest, CdfIsMonotone) {
  const CsrGraph g = SmallGraph();
  Rng rng(7);
  const EdgeWeights w = EdgeWeights::RandomTimestamps(g, 6.0, &rng);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto cdf = w.Cdf(g, v);
    for (std::size_t i = 1; i < cdf.size(); ++i) {
      EXPECT_GT(cdf[i], cdf[i - 1]);
    }
  }
}

TEST(EdgeWeightsTest, NewerNeighborsGetHigherWeight) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  const CsrGraph g = std::move(builder).Build();
  const std::vector<float> timestamps{0.0f, 0.1f, 0.9f};
  const EdgeWeights w = EdgeWeights::FromVertexTimestamps(g, timestamps, 6.0);
  // Neighbors of 0 are {1, 2}; vertex 2 is newer so its edge weighs more.
  EXPECT_GT(w.weight(g.EdgeOffset(0) + 1), w.weight(g.EdgeOffset(0)));
}

TEST(EdgeWeightsTest, GpuResidentBytesArePerVertex) {
  // Weighted sampling ships one timestamp per vertex to the GPU (a
  // rejection kernel), not per-edge CDFs.
  const CsrGraph g = SmallGraph();
  Rng rng(8);
  const EdgeWeights w = EdgeWeights::RandomTimestamps(g, 6.0, &rng);
  EXPECT_EQ(w.WeightBytes(), g.num_vertices() * sizeof(float));
}

TEST(TrainingSetTest, SelectUniformCountAndUniqueness) {
  Rng rng(9);
  const TrainingSet ts = TrainingSet::SelectUniform(1000, 100, &rng);
  EXPECT_EQ(ts.size(), 100u);
  std::set<VertexId> unique(ts.vertices().begin(), ts.vertices().end());
  EXPECT_EQ(unique.size(), 100u);
  for (const VertexId v : ts.vertices()) {
    EXPECT_LT(v, 1000u);
  }
}

TEST(TrainingSetTest, NumBatchesRoundsUp) {
  Rng rng(10);
  const TrainingSet ts = TrainingSet::SelectUniform(100, 10, &rng);
  EXPECT_EQ(ts.NumBatches(3), 4u);
  EXPECT_EQ(ts.NumBatches(10), 1u);
  EXPECT_EQ(ts.NumBatches(11), 1u);
}

TEST(EpochBatchesTest, CoversAllVerticesExactlyOnce) {
  Rng rng(11);
  const TrainingSet ts = TrainingSet::SelectUniform(500, 97, &rng);
  Rng shuffle(12);
  EpochBatches batches(ts, 10, &shuffle);
  EXPECT_EQ(batches.num_batches(), 10u);
  std::multiset<VertexId> seen;
  while (batches.HasNext()) {
    const auto b = batches.NextBatch();
    seen.insert(b.begin(), b.end());
  }
  EXPECT_EQ(seen.size(), 97u);
  const std::multiset<VertexId> expected(ts.vertices().begin(), ts.vertices().end());
  EXPECT_EQ(seen, expected);
}

TEST(EpochBatchesTest, ShuffleDependsOnRng) {
  Rng rng(13);
  const TrainingSet ts = TrainingSet::SelectUniform(500, 100, &rng);
  Rng s1(1);
  Rng s2(2);
  EpochBatches a(ts, 100, &s1);
  EpochBatches b(ts, 100, &s2);
  const auto ba = a.NextBatch();
  const auto bb = b.NextBatch();
  EXPECT_FALSE(std::equal(ba.begin(), ba.end(), bb.begin()));
}

TEST(DatasetTest, AllDatasetsBuildAtTinyScale) {
  for (const DatasetId id : kAllDatasets) {
    const Dataset ds = MakeDataset(id, 0.02, 42);
    EXPECT_GT(ds.graph.num_vertices(), 0u);
    EXPECT_GT(ds.graph.num_edges(), 0u);
    EXPECT_GT(ds.train_set.size(), 0u);
    EXPECT_GT(ds.feature_dim, 0u);
    EXPECT_GT(ds.batch_size, 0u);
    EXPECT_EQ(ds.name, DatasetName(id));
  }
}

TEST(DatasetTest, DeterministicInSeed) {
  const Dataset a = MakeDataset(DatasetId::kTwitter, 0.02, 7);
  const Dataset b = MakeDataset(DatasetId::kTwitter, 0.02, 7);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  ASSERT_EQ(a.train_set.size(), b.train_set.size());
  EXPECT_TRUE(std::equal(a.train_set.vertices().begin(), a.train_set.vertices().end(),
                         b.train_set.vertices().begin()));
}

TEST(DatasetTest, DifferentSeedsDiffer) {
  const Dataset a = MakeDataset(DatasetId::kTwitter, 0.02, 7);
  const Dataset b = MakeDataset(DatasetId::kTwitter, 0.02, 8);
  EXPECT_NE(a.graph.num_edges(), b.graph.num_edges());
}

TEST(DatasetTest, VolumeRatiosMatchPaper) {
  // Vol_F : 64MB must track the paper's Vol_F : 16GB (Table 3); checked at
  // full scale with generous tolerance.
  struct Expectation {
    DatasetId id;
    double ratio;  // Paper Vol_F / 16GB.
  };
  const Expectation expectations[] = {
      {DatasetId::kProducts, 0.058},
      {DatasetId::kTwitter, 2.5},
      {DatasetId::kPapers, 3.3},
      {DatasetId::kUk, 4.6},
  };
  for (const auto& e : expectations) {
    const Dataset ds = MakeDataset(e.id, 1.0, 42);
    const double ratio =
        static_cast<double>(ds.FeatureBytes()) / static_cast<double>(64 * kMiB);
    EXPECT_NEAR(ratio, e.ratio, e.ratio * 0.1) << ds.name;
  }
}

TEST(DatasetTest, TwitterIsSkewedPapersIsNot) {
  const Dataset tw = MakeDataset(DatasetId::kTwitter, 0.2, 42);
  const Dataset pa = MakeDataset(DatasetId::kPapers, 0.2, 42);
  const DegreeStats tw_stats = ComputeOutDegreeStats(tw.graph);
  const DegreeStats pa_stats = ComputeOutDegreeStats(pa.graph);
  EXPECT_GT(tw_stats.gini, 0.6);
  EXPECT_LT(pa_stats.gini, 0.55);
  EXPECT_LT(pa_stats.gini, tw_stats.gini - 0.3);
}

TEST(DatasetTest, WeightsAreDeterministicPerDataset) {
  const Dataset ds = MakeDataset(DatasetId::kProducts, 0.05, 42);
  const EdgeWeights a = ds.MakeWeights();
  const EdgeWeights b = ds.MakeWeights();
  for (EdgeIndex e = 0; e < std::min<EdgeIndex>(ds.graph.num_edges(), 100); ++e) {
    EXPECT_EQ(a.weight(e), b.weight(e));
  }
}

}  // namespace
}  // namespace gnnlab
