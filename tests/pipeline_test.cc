// The stage-pipeline layer's headline guarantee: the simulated Engine, the
// ThreadedEngine and the time-sharing baseline all schedule the SAME stage
// bodies over the SAME batch streams (src/pipeline), so the count-based
// statistics the paper's ratios rest on — sampled edges, cache hits, PCIe
// bytes — are bit-identical across drivers for the same seed/policy/workload.
// Plus unit coverage for the shared helpers themselves.
#include <gtest/gtest.h>

#include <vector>

#include "baselines/timeshare_runner.h"
#include "core/engine.h"
#include "core/threaded_engine.h"
#include "pipeline/batch_streams.h"
#include "pipeline/cache_builder.h"
#include "pipeline/report_assembler.h"
#include "pipeline/stages.h"
#include "pipeline/switch_gate.h"

namespace gnnlab {
namespace {

constexpr double kCacheRatio = 0.25;
constexpr std::size_t kEpochs = 2;
constexpr std::uint64_t kSeed = 7;

struct Fixture {
  Dataset dataset = MakeDataset(DatasetId::kProducts, 0.1, 42);
  std::vector<std::uint32_t> labels;
  FeatureStore features;
  std::vector<VertexId> eval;
  RealTrainingOptions real;

  Fixture() {
    Rng rng(3);
    labels = MakeCommunityLabels(dataset.graph.num_vertices(), 128, 8);
    // Same dimension as the dataset's nominal features: the threaded
    // engine extracts from this store, the simulated drivers from a
    // virtual store of dataset.feature_dim — byte counts must agree.
    features = FeatureStore::Clustered(dataset.graph.num_vertices(), dataset.feature_dim,
                                       labels, 8, 0.3, &rng);
    for (VertexId v = 0; v < 100; ++v) {
      eval.push_back(v);
    }
    real.features = &features;
    real.labels = labels;
    real.eval_vertices = eval;
    real.num_classes = 8;
    real.hidden_dim = 8;
  }
};

Fixture& SharedFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

struct EpochCounts {
  std::uint64_t sampled_edges = 0;
  std::size_t distinct = 0;
  std::size_t cache_hits = 0;
  std::size_t host_misses = 0;
  ByteCount bytes_from_cache = 0;
  ByteCount bytes_from_host = 0;

  bool operator==(const EpochCounts& o) const {
    return sampled_edges == o.sampled_edges && distinct == o.distinct &&
           cache_hits == o.cache_hits && host_misses == o.host_misses &&
           bytes_from_cache == o.bytes_from_cache && bytes_from_host == o.bytes_from_host;
  }
};

EpochCounts Counts(std::uint64_t sampled_edges, const ExtractStats& extract) {
  EpochCounts c;
  c.sampled_edges = sampled_edges;
  c.distinct = extract.distinct_vertices;
  c.cache_hits = extract.cache_hits;
  c.host_misses = extract.host_misses;
  c.bytes_from_cache = extract.bytes_from_cache;
  c.bytes_from_host = extract.bytes_from_host;
  return c;
}

std::vector<EpochCounts> RunSim(const Fixture& fixture, CachePolicyKind policy) {
  EngineOptions options;
  options.num_gpus = 2;
  options.num_samplers = 1;
  options.dynamic_switching = false;  // No standby re-marking: one cache, like the others.
  options.policy = policy;
  options.cache_ratio_override = kCacheRatio;
  options.epochs = kEpochs;
  options.seed = kSeed;
  Engine engine(fixture.dataset, StandardWorkload(GnnModelKind::kGraphSage), options);
  const RunReport report = engine.Run();
  EXPECT_FALSE(report.oom) << report.oom_detail;
  std::vector<EpochCounts> counts;
  for (const EpochReport& epoch : report.epochs) {
    counts.push_back(Counts(epoch.sampled_edges, epoch.extract));
  }
  return counts;
}

std::vector<EpochCounts> RunThreaded(const Fixture& fixture, CachePolicyKind policy) {
  ThreadedEngineOptions options;
  options.num_samplers = 1;
  options.num_trainers = 2;
  options.policy = policy;
  options.cache_ratio = kCacheRatio;
  options.epochs = kEpochs;
  options.seed = kSeed;
  options.real = &fixture.real;
  ThreadedEngine engine(fixture.dataset, StandardWorkload(GnnModelKind::kGraphSage), options);
  const ThreadedRunReport report = engine.Run();
  std::vector<EpochCounts> counts;
  for (const ThreadedEpochReport& epoch : report.epochs) {
    counts.push_back(Counts(epoch.sampled_edges, epoch.extract));
  }
  return counts;
}

std::vector<EpochCounts> RunTimeShare(const Fixture& fixture, CachePolicyKind policy) {
  TimeShareOptions options;
  options.num_gpus = 2;
  options.gpu_sampling = true;
  options.gpu_extract = true;
  options.dgl_style_sampling = false;  // Reservoir kernel would sample differently.
  options.policy = policy;
  options.cache_ratio_override = kCacheRatio;
  options.epochs = kEpochs;
  options.seed = kSeed;
  TimeShareRunner runner(fixture.dataset, StandardWorkload(GnnModelKind::kGraphSage), options);
  const RunReport report = runner.Run();
  EXPECT_FALSE(report.oom) << report.oom_detail;
  std::vector<EpochCounts> counts;
  for (const EpochReport& epoch : report.epochs) {
    counts.push_back(Counts(epoch.sampled_edges, epoch.extract));
  }
  return counts;
}

class CountEqualityTest : public ::testing::TestWithParam<CachePolicyKind> {};

TEST_P(CountEqualityTest, SimThreadedAndTimeShareAgreeBitForBit) {
  const CachePolicyKind policy = GetParam();
  Fixture& fixture = SharedFixture();

  const std::vector<EpochCounts> sim = RunSim(fixture, policy);
  const std::vector<EpochCounts> threaded = RunThreaded(fixture, policy);
  const std::vector<EpochCounts> timeshare = RunTimeShare(fixture, policy);

  ASSERT_EQ(sim.size(), kEpochs);
  ASSERT_EQ(threaded.size(), kEpochs);
  ASSERT_EQ(timeshare.size(), kEpochs);
  for (std::size_t e = 0; e < kEpochs; ++e) {
    EXPECT_GT(sim[e].sampled_edges, 0u);
    EXPECT_GT(sim[e].distinct, 0u);
    if (policy != CachePolicyKind::kNone) {
      EXPECT_GT(sim[e].cache_hits, 0u);
    }
    EXPECT_TRUE(sim[e] == threaded[e])
        << "epoch " << e << ": sim vs threaded diverge (policy "
        << CachePolicyKindName(policy) << ")";
    EXPECT_TRUE(sim[e] == timeshare[e])
        << "epoch " << e << ": sim vs time-share diverge (policy "
        << CachePolicyKindName(policy) << ")";
  }
}

// kNone/kRandom/kDegree build identical rankings in both cache-builder
// modes (replay and policy-class), so all three drivers see the same cached
// set. PreSC folds the sim engine's own profiling pass into the ranking,
// which the other drivers deliberately don't have — counts there are
// compared within-driver by the engine test suites instead.
INSTANTIATE_TEST_SUITE_P(Policies, CountEqualityTest,
                         ::testing::Values(CachePolicyKind::kNone, CachePolicyKind::kRandom,
                                           CachePolicyKind::kDegree),
                         [](const ::testing::TestParamInfo<CachePolicyKind>& info) {
                           return std::string(CachePolicyKindName(info.param));
                         });

// --- Unit coverage for the shared pipeline helpers -------------------------

TEST(BatchStreamsTest, PlanEpochBatchesIsDeterministicAndCoversTrainSet) {
  Fixture& fixture = SharedFixture();
  const auto a = PlanEpochBatches(fixture.dataset.train_set, fixture.dataset.batch_size,
                                  kSeed, 1);
  const auto b = PlanEpochBatches(fixture.dataset.train_set, fixture.dataset.batch_size,
                                  kSeed, 1);
  EXPECT_EQ(a, b);
  const auto other = PlanEpochBatches(fixture.dataset.train_set, fixture.dataset.batch_size,
                                      kSeed, 2);
  EXPECT_NE(a, other);  // Different epoch => different shuffle.
  std::size_t total = 0;
  for (const auto& batch : a) {
    total += batch.size();
  }
  EXPECT_EQ(total, fixture.dataset.train_set.size());
}

TEST(BatchStreamsTest, ReservedEpochBasesNeverCollide) {
  // Profiling and evaluation replay must not share streams with measured
  // epochs for any realistic epoch count.
  EXPECT_GT(kProfileEpochBase, std::size_t{1} << 16);
  EXPECT_GT(kEvalEpochBase, kProfileEpochBase);
}

TEST(ReportAssemblerTest, SyncGradientUpdatesRoundsUpAndClampsGroup) {
  EXPECT_EQ(SyncGradientUpdates(10, 4), 3u);
  EXPECT_EQ(SyncGradientUpdates(8, 4), 2u);
  EXPECT_EQ(SyncGradientUpdates(0, 4), 0u);
  EXPECT_EQ(SyncGradientUpdates(5, 0), 5u);  // Group clamped to 1.
}

TEST(ReportAssemblerTest, PreprocessTableMatchesPolicyMultipliers) {
  CostModel cost{CostModelParams{}};
  PreprocessSpec spec;
  spec.topo_bytes = 1000;
  spec.feature_bytes = 5000;
  spec.cache_bytes = 2000;
  spec.policy = CachePolicyKind::kPreSC3;
  spec.presample_epoch_time = 0.5;
  const PreprocessReport presc = AssemblePreprocess(cost, spec);
  EXPECT_DOUBLE_EQ(presc.presample, 1.5);  // 3 pre-sampling stages.
  EXPECT_GT(presc.disk_load, 0.0);
  EXPECT_GT(presc.topo_load, 0.0);

  spec.load_topology = false;
  spec.policy = CachePolicyKind::kNone;
  const PreprocessReport none = AssemblePreprocess(cost, spec);
  EXPECT_DOUBLE_EQ(none.topo_load, 0.0);
  EXPECT_DOUBLE_EQ(none.presample, 0.0);
}

TEST(CacheBuilderTest, PolicyModeMatchesReplayModeForStaticPolicies) {
  Fixture& fixture = SharedFixture();
  const Workload workload = StandardWorkload(GnnModelKind::kGraphSage);
  CacheBuildContext policy_mode;
  policy_mode.dataset = &fixture.dataset;
  policy_mode.workload = &workload;
  policy_mode.seed = kSeed;

  CacheBuildContext replay_mode = policy_mode;
  Footprint footprint(fixture.dataset.graph.num_vertices());
  replay_mode.profile_footprint = &footprint;

  for (const CachePolicyKind kind :
       {CachePolicyKind::kNone, CachePolicyKind::kRandom, CachePolicyKind::kDegree}) {
    EXPECT_EQ(BuildCacheRanking(kind, policy_mode), BuildCacheRanking(kind, replay_mode))
        << CachePolicyKindName(kind);
  }
}

TEST(SwitchGateTest, DecisionLogKeepsFetchesAndCollapsesSkipRuns) {
  SwitchDecisionLog log;
  log.ResetFilters(1);
  const StandbyFetchEval skip =
      EvaluateStandbyFetch(/*now=*/1.0, /*queue_depth=*/0, /*profit_says_fetch=*/false,
                           /*profit_value=*/-0.5, /*health=*/nullptr,
                           /*force_health_eval=*/true);
  EXPECT_FALSE(skip.fetch);
  // First skip is logged, the repeat is filtered, the fetch always lands.
  log.LogSkip(0, skip.decision);
  log.LogSkip(0, skip.decision);
  const StandbyFetchEval fetch =
      EvaluateStandbyFetch(/*now=*/2.0, /*queue_depth=*/3, /*profit_says_fetch=*/true,
                           /*profit_value=*/0.5, /*health=*/nullptr,
                           /*force_health_eval=*/true);
  EXPECT_TRUE(fetch.fetch);
  log.LogFetch(0, fetch.decision);
  const std::vector<SwitchDecision> decisions = log.Take();
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_FALSE(decisions[0].fetched);
  EXPECT_FALSE(decisions[0].pressure_override);
  EXPECT_TRUE(decisions[1].fetched);
}

}  // namespace
}  // namespace gnnlab
