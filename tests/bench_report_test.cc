// Tests for the benchmark observatory: BenchReport statistics (pinned
// values), the JSON round trip through report/json_parse.h, the strict
// numeric flag parsers, the gauge republication, and the noise-aware
// benchdiff verdicts the perf gate rests on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "report/bench_diff.h"
#include "report/bench_report.h"
#include "report/json_parse.h"

namespace gnnlab {
namespace {

// --- statistics, pinned by hand ---------------------------------------------

TEST(BenchStatsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(Median({1.0, 2.0, 3.0, 4.0, 100.0}), 3.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0}), 2.5);
  EXPECT_DOUBLE_EQ(Median({7.0}), 7.0);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(BenchStatsTest, MadIsRobustToOutliers) {
  // Deviations from median 3: {2,1,0,1,97} -> sorted {0,1,1,2,97}, median 1.
  EXPECT_DOUBLE_EQ(MedianAbsoluteDeviation({1.0, 2.0, 3.0, 4.0, 100.0}, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(MedianAbsoluteDeviation({5.0, 5.0, 5.0}, 5.0), 0.0);
}

TEST(BenchStatsTest, QuantileInterpolatesLinearly) {
  const std::vector<double> sorted{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, 0.5), 30.0);
  // p95 over 5 points: rank 0.95 * 4 = 3.8 -> 40 + 0.8 * (50 - 40) = 48.
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, 0.95), 48.0);
}

TEST(BenchStatsTest, ComputeSeriesStatsFillsEveryField) {
  const SeriesStats stats = ComputeSeriesStats({1.0, 2.0, 3.0, 4.0, 100.0});
  EXPECT_EQ(stats.count, 5u);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 100.0);
  EXPECT_DOUBLE_EQ(stats.median, 3.0);
  EXPECT_DOUBLE_EQ(stats.mad, 1.0);
  EXPECT_DOUBLE_EQ(stats.mean, 22.0);
}

TEST(BenchStatsTest, UnitDirectionDefaults) {
  EXPECT_EQ(BetterDirectionForUnit("s"), BetterDirection::kLower);
  EXPECT_EQ(BetterDirectionForUnit("bytes"), BetterDirection::kLower);
  EXPECT_EQ(BetterDirectionForUnit("%"), BetterDirection::kHigher);
  EXPECT_EQ(BetterDirectionForUnit("x"), BetterDirection::kHigher);
  EXPECT_EQ(BetterDirectionForUnit("rows/s"), BetterDirection::kHigher);
}

// --- strict numeric parsing --------------------------------------------------

TEST(StrictFlagParseTest, AcceptsPlainNumbers) {
  double d = -1.0;
  EXPECT_TRUE(ParseNonNegativeDouble("0.25", &d));
  EXPECT_DOUBLE_EQ(d, 0.25);
  std::uint64_t n = 0;
  EXPECT_TRUE(ParseNonNegativeInt("42", &n));
  EXPECT_EQ(n, 42u);
}

TEST(StrictFlagParseTest, RejectsGarbageNegativesAndTrailingJunk) {
  double d = 0.0;
  EXPECT_FALSE(ParseNonNegativeDouble("abc", &d));
  EXPECT_FALSE(ParseNonNegativeDouble("", &d));
  EXPECT_FALSE(ParseNonNegativeDouble("-1.5", &d));
  EXPECT_FALSE(ParseNonNegativeDouble("1.5x", &d));
  std::uint64_t n = 0;
  EXPECT_FALSE(ParseNonNegativeInt("abc", &n));
  EXPECT_FALSE(ParseNonNegativeInt("-3", &n));
  EXPECT_FALSE(ParseNonNegativeInt("3.5", &n));
  EXPECT_FALSE(ParseNonNegativeInt("12 ", &n));
}

// --- JSON round trip ---------------------------------------------------------

BenchReport BuildSample() {
  BenchReportBuilder builder("fig_test");
  builder.SetConfig("scale", 0.05);
  builder.SetConfig("seed", std::uint64_t{42});
  builder.SetConfig("note", std::string("quote\" and \\slash"));
  builder.AddSamples("t.epoch_s", {1.0, 2.0, 3.0, 4.0, 100.0});
  builder.Add("t.hit_rate", 87.5, "%");
  builder.AddWall("t.rows_per_s", 1e6, "rows/s");
  builder.Add("t.gap", 1.4, "x", BetterDirection::kLower);
  builder.SetExtraJson("{\"legacy\":[1,2,3]}");
  return builder.Finish();
}

TEST(BenchReportJsonTest, RoundTripsThroughJsonParse) {
  const BenchReport original = BuildSample();
  const std::string json = BenchReportToJson(original);

  JsonValue value;
  std::string error;
  ASSERT_TRUE(ParseJson(json, &value, &error)) << error;
  BenchReport parsed;
  ASSERT_TRUE(BenchReportFromJson(value, &parsed, &error)) << error;

  EXPECT_EQ(parsed.bench, "fig_test");
  EXPECT_EQ(parsed.config, original.config);
  ASSERT_EQ(parsed.series.size(), original.series.size());
  for (std::size_t i = 0; i < parsed.series.size(); ++i) {
    const BenchSeries& a = original.series[i];
    const BenchSeries& b = parsed.series[i];
    EXPECT_EQ(b.name, a.name);
    EXPECT_EQ(b.unit, a.unit);
    EXPECT_EQ(b.better, a.better);
    EXPECT_EQ(b.deterministic, a.deterministic);
    EXPECT_EQ(b.samples, a.samples);
    EXPECT_DOUBLE_EQ(b.stats.median, a.stats.median);
    EXPECT_DOUBLE_EQ(b.stats.mad, a.stats.mad);
    EXPECT_DOUBLE_EQ(b.stats.p95, a.stats.p95);
  }
  // The extra payload survives as a JSON value (re-serialized, so compare
  // parsed forms rather than raw text).
  JsonValue extra;
  ASSERT_TRUE(ParseJson(parsed.extra_json, &extra, &error)) << error;
  const JsonValue* legacy = extra.Find("legacy");
  ASSERT_NE(legacy, nullptr);
  EXPECT_EQ(legacy->array.size(), 3u);
}

TEST(BenchReportJsonTest, EmptyReportRoundTrips) {
  BenchReportBuilder builder("empty_bench");
  const std::string json = BenchReportToJson(builder.Finish());
  JsonValue value;
  std::string error;
  ASSERT_TRUE(ParseJson(json, &value, &error)) << error;
  BenchReport parsed;
  ASSERT_TRUE(BenchReportFromJson(value, &parsed, &error)) << error;
  EXPECT_EQ(parsed.bench, "empty_bench");
  EXPECT_TRUE(parsed.series.empty());
}

TEST(BenchReportJsonTest, RejectsWrongSchemaTag) {
  JsonValue value;
  std::string error;
  ASSERT_TRUE(ParseJson("{\"schema\":\"other.v9\",\"bench\":\"x\",\"series\":[]}",
                        &value, &error));
  BenchReport parsed;
  EXPECT_FALSE(BenchReportFromJson(value, &parsed, &error));
  EXPECT_FALSE(error.empty());
}

TEST(BenchReportJsonTest, FirstRegistrationWinsForSeriesMetadata) {
  BenchReportBuilder builder("b");
  builder.Add("s", 1.0, "s");
  builder.Add("s", 2.0, "%");  // Unit ignored; series already registered.
  const BenchReport report = builder.Finish();
  ASSERT_EQ(report.series.size(), 1u);
  EXPECT_EQ(report.series[0].unit, "s");
  EXPECT_EQ(report.series[0].samples.size(), 2u);
}

// --- gauge republication -----------------------------------------------------

TEST(BenchReportGaugesTest, PublishesMedianAndP95) {
  const BenchReport report = BuildSample();
  MetricRegistry registry;
  RepublishBenchGauges(report, &registry);
  const Gauge* median = registry.FindGauge("bench.fig_test.t.epoch_s.median");
  ASSERT_NE(median, nullptr);
  EXPECT_DOUBLE_EQ(median->value(), 3.0);
  // Multi-sample series also get a p95 gauge; single-sample ones do not.
  EXPECT_NE(registry.FindGauge("bench.fig_test.t.epoch_s.p95"), nullptr);
  EXPECT_EQ(registry.FindGauge("bench.fig_test.t.hit_rate.p95"), nullptr);
}

// --- benchdiff verdicts ------------------------------------------------------

BenchReport MakeReport(const std::string& bench, double epoch_median,
                       const std::vector<double>& wall_samples) {
  BenchReportBuilder builder(bench);
  builder.SetConfig("scale", 0.05);
  builder.Add("d.epoch_s", epoch_median);  // Deterministic, lower is better.
  builder.Add("d.hit_rate", 90.0, "%");
  if (!wall_samples.empty()) {
    builder.AddSamples("w.extract_s", wall_samples, "s", /*deterministic=*/false);
  }
  return builder.Finish();
}

TEST(BenchDiffTest, IdenticalReportsAreClean) {
  const BenchReport report = MakeReport("b", 2.0, {1.0, 1.1, 0.9});
  const BenchDiffResult result = DiffBenchReports(report, report, BenchDiffOptions{});
  EXPECT_FALSE(result.HasRegression());
  EXPECT_EQ(result.improvements, 0u);
  EXPECT_TRUE(result.config_mismatches.empty());
}

TEST(BenchDiffTest, TwoXSlowdownOnDeterministicSeriesRegresses) {
  const BenchReport base = MakeReport("b", 2.0, {});
  const BenchReport slow = MakeReport("b", 4.0, {});
  const BenchDiffResult result = DiffBenchReports(base, slow, BenchDiffOptions{});
  EXPECT_TRUE(result.HasRegression());
  const SeriesDiff* worst = nullptr;
  for (const SeriesDiff& s : result.series) {
    if (s.name == "d.epoch_s") {
      worst = &s;
    }
  }
  ASSERT_NE(worst, nullptr);
  EXPECT_EQ(worst->verdict, SeriesVerdict::kRegression);
  EXPECT_DOUBLE_EQ(worst->rel_delta, 1.0);
}

TEST(BenchDiffTest, ImprovementNeverFailsTheGate) {
  const BenchReport base = MakeReport("b", 4.0, {});
  const BenchReport fast = MakeReport("b", 2.0, {});
  const BenchDiffResult result = DiffBenchReports(base, fast, BenchDiffOptions{});
  EXPECT_FALSE(result.HasRegression());
  EXPECT_EQ(result.improvements, 1u);
}

TEST(BenchDiffTest, WallSeriesSkippedUnlessGateAll) {
  const BenchReport base = MakeReport("b", 2.0, {1.0, 1.0, 1.0});
  const BenchReport slow = MakeReport("b", 2.0, {5.0, 5.0, 5.0});
  const BenchDiffResult gated = DiffBenchReports(base, slow, BenchDiffOptions{});
  EXPECT_FALSE(gated.HasRegression());
  BenchDiffOptions all;
  all.gate_wall = true;
  EXPECT_TRUE(DiffBenchReports(base, slow, all).HasRegression());
}

TEST(BenchDiffTest, ShiftWithinNoiseFloorIsNotARegression) {
  // Baseline wall series with MAD 0.1; a +0.15 shift clears the 5% relative
  // floor but stays inside 3 * MAD = 0.3, so the gate must stay quiet.
  const BenchReport base = MakeReport("b", 2.0, {0.9, 1.0, 1.1, 1.0, 0.9, 1.1});
  const BenchReport shifted = MakeReport("b", 2.0, {1.05, 1.15, 1.25, 1.15, 1.05, 1.25});
  BenchDiffOptions all;
  all.gate_wall = true;
  const BenchDiffResult result = DiffBenchReports(base, shifted, all);
  EXPECT_FALSE(result.HasRegression());
}

TEST(BenchDiffTest, ShiftPastBothFloorsRegresses) {
  const BenchReport base = MakeReport("b", 2.0, {0.9, 1.0, 1.1, 1.0, 0.9, 1.1});
  const BenchReport shifted = MakeReport("b", 2.0, {1.9, 2.0, 2.1, 2.0, 1.9, 2.1});
  BenchDiffOptions all;
  all.gate_wall = true;
  EXPECT_TRUE(DiffBenchReports(base, shifted, all).HasRegression());
}

TEST(BenchDiffTest, MissingSeriesGatesOnlyWhenAsked) {
  const BenchReport base = MakeReport("b", 2.0, {1.0});
  BenchReportBuilder builder("b");
  builder.SetConfig("scale", 0.05);
  builder.Add("d.epoch_s", 2.0);  // d.hit_rate and w.extract_s gone.
  const BenchReport current = builder.Finish();

  const BenchDiffResult lax = DiffBenchReports(base, current, BenchDiffOptions{});
  EXPECT_EQ(lax.missing, 2u);
  EXPECT_FALSE(lax.HasRegression());

  BenchDiffOptions strict;
  strict.fail_on_missing = true;
  EXPECT_TRUE(DiffBenchReports(base, current, strict).HasRegression());
}

TEST(BenchDiffTest, ConfigMismatchRefusesToJudge) {
  BenchReportBuilder a("b");
  a.SetConfig("scale", 0.05);
  a.Add("d.epoch_s", 2.0);
  BenchReportBuilder b("b");
  b.SetConfig("scale", 1.0);
  b.Add("d.epoch_s", 100.0);
  const BenchDiffResult result =
      DiffBenchReports(a.Finish(), b.Finish(), BenchDiffOptions{});
  EXPECT_FALSE(result.config_mismatches.empty());
  // Not comparable: neither a pass nor a fail.
  EXPECT_FALSE(result.HasRegression());
}

}  // namespace
}  // namespace gnnlab
