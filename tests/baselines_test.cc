// Tests for src/baselines: the DGL/T_SOTA time-sharing runner and the
// PyG-style CPU runner, including the capacity (OOM) behaviour and the
// ordering relations the paper's Tables 1/4 rest on.
#include <gtest/gtest.h>

#include "baselines/cpu_runner.h"
#include "baselines/timeshare_runner.h"

namespace gnnlab {
namespace {

const Dataset& Products() {
  static const Dataset* ds = new Dataset(MakeDataset(DatasetId::kProducts, 0.1, 42));
  return *ds;
}
const Dataset& Papers() {
  static const Dataset* ds = new Dataset(MakeDataset(DatasetId::kPapers, 0.05, 42));
  return *ds;
}

TimeShareOptions BaseTimeShare() {
  TimeShareOptions options;
  options.num_gpus = 4;
  options.gpu_memory = 8 * kMiB;
  options.epochs = 2;
  options.seed = 1;
  return options;
}

TEST(TimeShareRunnerTest, DglPresetCompletesEpochs) {
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  TimeShareOptions options = DglOptions();
  options.num_gpus = 4;
  options.gpu_memory = 8 * kMiB;
  options.epochs = 2;
  TimeShareRunner runner(Products(), workload, options);
  const RunReport report = runner.Run();
  ASSERT_FALSE(report.oom) << report.oom_detail;
  for (const EpochReport& epoch : report.epochs) {
    EXPECT_EQ(epoch.batches, Products().BatchesPerEpoch());
    EXPECT_EQ(epoch.extract.cache_hits, 0u);  // DGL has no cache.
  }
  EXPECT_DOUBLE_EQ(report.cache_ratio, 0.0);
}

TEST(TimeShareRunnerTest, TsotaPresetUsesDegreeCache) {
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  TimeShareOptions options = TsotaOptions();
  options.num_gpus = 4;
  options.gpu_memory = 8 * kMiB;
  options.epochs = 1;
  TimeShareRunner runner(Products(), workload, options);
  const RunReport report = runner.Run();
  ASSERT_FALSE(report.oom);
  EXPECT_GT(report.cache_ratio, 0.0);
  EXPECT_GT(report.epochs[0].extract.cache_hits, 0u);
}

TEST(TimeShareRunnerTest, Deterministic) {
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  TimeShareRunner a(Products(), workload, BaseTimeShare());
  TimeShareRunner b(Products(), workload, BaseTimeShare());
  EXPECT_DOUBLE_EQ(a.Run().epochs[0].epoch_time, b.Run().epochs[0].epoch_time);
}

TEST(TimeShareRunnerTest, CachingSpeedsUpTsota) {
  // Table 1: enabling the GPU cache cuts the Extract stage.
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  TimeShareOptions with = BaseTimeShare();
  with.gpu_extract = true;
  with.policy = CachePolicyKind::kDegree;
  TimeShareOptions without = with;
  without.policy = CachePolicyKind::kNone;
  TimeShareRunner cached(Products(), workload, with);
  TimeShareRunner uncached(Products(), workload, without);
  const RunReport rc = cached.Run();
  const RunReport ru = uncached.Run();
  ASSERT_FALSE(rc.oom);
  ASSERT_FALSE(ru.oom);
  EXPECT_LT(rc.epochs[0].stage.extract, ru.epochs[0].stage.extract);
  EXPECT_LT(rc.AvgEpochTime(), ru.AvgEpochTime());
}

TEST(TimeShareRunnerTest, GpuSamplingSpeedsUpSampleStage) {
  // Table 1: GPU-based sampling beats CPU sampling.
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  TimeShareOptions gpu = BaseTimeShare();
  gpu.gpu_sampling = true;
  TimeShareOptions cpu = BaseTimeShare();
  cpu.gpu_sampling = false;
  TimeShareRunner g(Products(), workload, gpu);
  TimeShareRunner c(Products(), workload, cpu);
  EXPECT_LT(g.Run().epochs[0].stage.sample_graph, c.Run().epochs[0].stage.sample_graph);
}

TEST(TimeShareRunnerTest, DglStyleSamplingSlowerThanFisherYates) {
  // §7.3: the Reservoir kernel + runtime overhead loses to the
  // Fisher-Yates variant.
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  TimeShareOptions dgl = BaseTimeShare();
  dgl.dgl_style_sampling = true;
  TimeShareOptions fy = BaseTimeShare();
  fy.dgl_style_sampling = false;
  TimeShareRunner d(Products(), workload, dgl);
  TimeShareRunner f(Products(), workload, fy);
  EXPECT_GT(d.Run().epochs[0].stage.sample_graph, f.Run().epochs[0].stage.sample_graph);
}

TEST(TimeShareRunnerTest, OomWhenStackExceedsGpu) {
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  TimeShareOptions options = BaseTimeShare();
  // Topology at 80% of the GPU leaves no room for the 30% workspaces.
  options.gpu_memory = static_cast<ByteCount>(
      static_cast<double>(Products().TopologyBytes()) / 0.8);
  TimeShareRunner runner(Products(), workload, options);
  const RunReport report = runner.Run();
  EXPECT_TRUE(report.oom);
}

TEST(TimeShareRunnerTest, TimeSharingSqueezesCacheRatio) {
  // §3 capacity analysis: a time-sharing GPU (topology + both workspaces
  // resident) has a smaller cache than a dedicated Trainer GPU would.
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  TimeShareOptions options = BaseTimeShare();
  options.gpu_extract = true;
  options.policy = CachePolicyKind::kDegree;
  options.gpu_memory = 3 * kMiB;  // Tight: topology is ~1.6MB.
  TimeShareRunner runner(Papers(), workload, options);
  const RunReport report = runner.Run();
  // Papers' topology at scale 0.05 (~1.3MB) + 30% workspaces leaves little.
  ASSERT_FALSE(report.oom) << report.oom_detail;
  EXPECT_LT(report.cache_ratio, 0.2);
}

TEST(TimeShareRunnerTest, MoreGpusReduceEpochTimeSublinearly) {
  // Figure 14: baselines scale, but the shared host channel limits them.
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  TimeShareOptions one = BaseTimeShare();
  one.num_gpus = 1;
  TimeShareOptions four = BaseTimeShare();
  four.num_gpus = 4;
  TimeShareRunner r1(Papers(), workload, one);
  TimeShareRunner r4(Papers(), workload, four);
  const double t1 = r1.Run().AvgEpochTime();
  const double t4 = r4.Run().AvgEpochTime();
  EXPECT_LT(t4, t1);
  EXPECT_GT(t4, t1 / 4.0);  // Sublinear due to contention.
}

TEST(CpuRunnerTest, CompletesEpochs) {
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  CpuRunnerOptions options;
  options.num_gpus = 4;
  options.epochs = 2;
  CpuRunner runner(Products(), workload, options);
  const RunReport report = runner.Run();
  ASSERT_EQ(report.epochs.size(), 2u);
  EXPECT_EQ(report.epochs[0].batches, Products().BatchesPerEpoch());
  EXPECT_EQ(report.epochs[0].extract.cache_hits, 0u);
}

TEST(CpuRunnerTest, SlowerThanGpuTimeSharing) {
  // Table 4: PyG is the slowest system everywhere.
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  CpuRunnerOptions cpu_options;
  cpu_options.num_gpus = 4;
  cpu_options.epochs = 1;
  CpuRunner cpu(Papers(), workload, cpu_options);
  TimeShareOptions ts = BaseTimeShare();
  ts.epochs = 1;
  TimeShareRunner gpu(Papers(), workload, ts);
  EXPECT_GT(cpu.Run().AvgEpochTime(), gpu.Run().AvgEpochTime());
}

TEST(CpuRunnerTest, Deterministic) {
  const Workload workload = StandardWorkload(GnnModelKind::kGraphSage);
  CpuRunnerOptions options;
  options.num_gpus = 2;
  options.epochs = 1;
  CpuRunner a(Products(), workload, options);
  CpuRunner b(Products(), workload, options);
  EXPECT_DOUBLE_EQ(a.Run().epochs[0].epoch_time, b.Run().epochs[0].epoch_time);
}

}  // namespace
}  // namespace gnnlab
