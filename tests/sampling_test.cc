// Tests for src/sampling: SampleBlock dedup/remap semantics, the four
// sampling kernels, footprints and the Table 2 similarity metric. Includes
// parameterized distribution properties across kernels and fanouts.
#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "graph/dataset.h"
#include "graph/graph_builder.h"
#include "sampling/footprint.h"
#include "sampling/sample_block.h"
#include "sampling/sampler.h"

namespace gnnlab {
namespace {

CsrGraph StarGraph(VertexId leaves) {
  // Vertex 0 points at every leaf; leaves point back at 0.
  GraphBuilder builder(leaves + 1);
  for (VertexId leaf = 1; leaf <= leaves; ++leaf) {
    builder.AddEdge(0, leaf);
    builder.AddEdge(leaf, 0);
  }
  return std::move(builder).Build();
}

CsrGraph RingGraph(VertexId n) {
  GraphBuilder builder(n);
  for (VertexId v = 0; v < n; ++v) {
    builder.AddEdge(v, (v + 1) % n);
    builder.AddEdge(v, (v + n - 1) % n);
  }
  return std::move(builder).Build();
}

TEST(SampleBlockBuilderTest, SeedsGetConsecutiveLocalIds) {
  RemapScratch scratch(10);
  SampleBlockBuilder builder(&scratch);
  const VertexId seeds[] = {7, 3, 9};
  builder.Begin(seeds);
  const SampleBlock block = builder.Finish();
  EXPECT_EQ(block.num_seeds(), 3u);
  EXPECT_EQ(block.vertices()[0], 7u);
  EXPECT_EQ(block.vertices()[1], 3u);
  EXPECT_EQ(block.vertices()[2], 9u);
}

TEST(SampleBlockBuilderTest, DuplicateSeedsCollapse) {
  RemapScratch scratch(10);
  SampleBlockBuilder builder(&scratch);
  const VertexId seeds[] = {5, 5, 5};
  builder.Begin(seeds);
  const SampleBlock block = builder.Finish();
  EXPECT_EQ(block.num_seeds(), 1u);
}

TEST(SampleBlockBuilderTest, NeighborsDeduplicatedAcrossEdges) {
  RemapScratch scratch(10);
  SampleBlockBuilder builder(&scratch);
  const VertexId seeds[] = {0, 1};
  builder.Begin(seeds);
  builder.BeginHop();
  builder.AddEdge(0, 9);
  builder.AddEdge(1, 9);  // Same neighbor from both seeds: one local id.
  builder.EndHop();
  const SampleBlock block = builder.Finish();
  EXPECT_EQ(block.vertices().size(), 3u);
  EXPECT_EQ(block.hop(0).size(), 2u);
  EXPECT_EQ(block.hop(0).src_local[0], block.hop(0).src_local[1]);
}

TEST(SampleBlockBuilderTest, HopEndTracksGrowth) {
  RemapScratch scratch(10);
  SampleBlockBuilder builder(&scratch);
  const VertexId seeds[] = {0};
  builder.Begin(seeds);
  builder.BeginHop();
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.EndHop();
  builder.BeginHop();
  builder.AddEdge(1, 3);
  builder.EndHop();
  const SampleBlock block = builder.Finish();
  EXPECT_EQ(block.VerticesAfterHop(0), 1u);
  EXPECT_EQ(block.VerticesAfterHop(1), 3u);
  EXPECT_EQ(block.VerticesAfterHop(2), 4u);
  EXPECT_EQ(block.TotalSampledWithDuplicates(), 1u + 2u + 1u);
}

TEST(SampleBlockBuilderTest, ScratchReusableAcrossBlocks) {
  RemapScratch scratch(10);
  SampleBlockBuilder builder(&scratch);
  for (int round = 0; round < 5; ++round) {
    const VertexId seeds[] = {static_cast<VertexId>(round % 3)};
    builder.Begin(seeds);
    builder.BeginHop();
    builder.AddEdge(0, 9);
    builder.EndHop();
    const SampleBlock block = builder.Finish();
    EXPECT_EQ(block.vertices().size(), 2u);
  }
}

TEST(SampleBlockBuilderDeathTest, AddEdgeRequiresExistingDst) {
  RemapScratch scratch(10);
  SampleBlockBuilder builder(&scratch);
  const VertexId seeds[] = {0};
  builder.Begin(seeds);
  builder.BeginHop();
  EXPECT_DEATH(builder.AddEdge(5, 1), "Check failed");
}

TEST(SampleBlockTest, QueueBytesCountsVerticesAndEdges) {
  RemapScratch scratch(10);
  SampleBlockBuilder builder(&scratch);
  const VertexId seeds[] = {0};
  builder.Begin(seeds);
  builder.BeginHop();
  builder.AddEdge(0, 1);
  builder.EndHop();
  SampleBlock block = builder.Finish();
  EXPECT_EQ(block.QueueBytes(), 2 * sizeof(VertexId) + 2 * sizeof(LocalId));
  block.mutable_cache_marks().assign(2, 0);
  EXPECT_EQ(block.QueueBytes(), 2 * sizeof(VertexId) + 2 * sizeof(LocalId) + 2);
}

// --- Kernel semantics ------------------------------------------------------

TEST(KhopUniformTest, TakesAllNeighborsWhenDegreeBelowFanout) {
  const CsrGraph g = StarGraph(3);
  auto sampler = MakeKhopUniformSampler(g, {10});
  Rng rng(1);
  const VertexId seeds[] = {0};
  const SampleBlock block = sampler->Sample(seeds, &rng, nullptr);
  EXPECT_EQ(block.hop(0).size(), 3u);       // All 3 leaves.
  EXPECT_EQ(block.vertices().size(), 4u);
}

TEST(KhopUniformTest, RespectsFanoutWhenDegreeHigher) {
  const CsrGraph g = StarGraph(50);
  auto sampler = MakeKhopUniformSampler(g, {5});
  Rng rng(2);
  const VertexId seeds[] = {0};
  SamplerStats stats;
  const SampleBlock block = sampler->Sample(seeds, &rng, &stats);
  EXPECT_EQ(block.hop(0).size(), 5u);
  EXPECT_EQ(stats.sampled_neighbors, 5u);
  // The Fisher-Yates variant's cost is O(fanout), not O(degree).
  EXPECT_EQ(stats.adjacency_entries_scanned, 5u);
}

TEST(KhopUniformTest, PicksAreDistinct) {
  const CsrGraph g = StarGraph(50);
  auto sampler = MakeKhopUniformSampler(g, {10});
  Rng rng(3);
  for (int round = 0; round < 20; ++round) {
    const VertexId seeds[] = {0};
    const SampleBlock block = sampler->Sample(seeds, &rng, nullptr);
    const HopEdges& hop = block.hop(0);
    std::set<LocalId> unique(hop.src_local.begin(), hop.src_local.end());
    EXPECT_EQ(unique.size(), hop.size()) << "without-replacement pick repeated a neighbor";
  }
}

TEST(KhopReservoirTest, ScansFullDegree) {
  const CsrGraph g = StarGraph(50);
  auto sampler = MakeKhopReservoirSampler(g, {5});
  Rng rng(4);
  const VertexId seeds[] = {0};
  SamplerStats stats;
  const SampleBlock block = sampler->Sample(seeds, &rng, &stats);
  EXPECT_EQ(block.hop(0).size(), 5u);
  // Reservoir inspects every adjacency entry: the unbalanced-workload
  // signature the paper attributes to DGL's kernel (§7.3).
  EXPECT_EQ(stats.adjacency_entries_scanned, 50u);
}

TEST(KhopWeightedTest, PrefersHeavyNeighbors) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  const CsrGraph g = std::move(builder).Build();
  // Vertex 2 is much "newer": weight e^(6*0.99) vs e^(6*0.01).
  const std::vector<float> timestamps{0.5f, 0.01f, 0.99f};
  const EdgeWeights w = EdgeWeights::FromVertexTimestamps(g, timestamps, 6.0);
  auto sampler = MakeKhopWeightedSampler(g, w, {1});
  Rng rng(5);
  int picked_new = 0;
  for (int round = 0; round < 300; ++round) {
    const VertexId seeds[] = {0};
    const SampleBlock block = sampler->Sample(seeds, &rng, nullptr);
    if (block.vertices()[block.hop(0).src_local[0]] == 2u) {
      ++picked_new;
    }
  }
  EXPECT_GT(picked_new, 290);  // P(old) = e^-5.88 ~ 0.3%.
}

TEST(KhopWeightedTest, HandlesIsolatedVertices) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);  // Vertex 1 has no out-edges.
  const CsrGraph g = std::move(builder).Build();
  Rng wrng(6);
  const EdgeWeights w = EdgeWeights::RandomTimestamps(g, 6.0, &wrng);
  auto sampler = MakeKhopWeightedSampler(g, w, {2, 2});
  Rng rng(7);
  const VertexId seeds[] = {1};
  const SampleBlock block = sampler->Sample(seeds, &rng, nullptr);
  EXPECT_EQ(block.vertices().size(), 1u);
  EXPECT_EQ(block.hop(0).size(), 0u);
}

TEST(RandomWalkTest, SelectsAtMostNumNeighbors) {
  const CsrGraph g = RingGraph(100);
  auto sampler = MakeRandomWalkSampler(g, /*layers=*/1, /*walks=*/4, /*length=*/3,
                                       /*neighbors=*/5);
  Rng rng(8);
  const VertexId seeds[] = {0};
  const SampleBlock block = sampler->Sample(seeds, &rng, nullptr);
  EXPECT_LE(block.hop(0).size(), 5u);
  EXPECT_GE(block.hop(0).size(), 1u);
}

TEST(RandomWalkTest, WalksStayOnGraph) {
  const CsrGraph g = RingGraph(16);
  auto sampler = MakeRandomWalkSampler(g, 3, 4, 3, 5);
  Rng rng(9);
  const VertexId seeds[] = {3, 8};
  const SampleBlock block = sampler->Sample(seeds, &rng, nullptr);
  for (const VertexId v : block.vertices()) {
    EXPECT_LT(v, 16u);
  }
  EXPECT_EQ(block.num_hops(), 3u);
}

TEST(RandomWalkTest, DeadEndProducesNoNeighbors) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);  // 1 is a sink.
  const CsrGraph g = std::move(builder).Build();
  auto sampler = MakeRandomWalkSampler(g, 1, 4, 3, 5);
  Rng rng(10);
  const VertexId seeds[] = {1};
  const SampleBlock block = sampler->Sample(seeds, &rng, nullptr);
  EXPECT_EQ(block.hop(0).size(), 0u);
}

TEST(SamplerTest, AlgorithmNames) {
  EXPECT_STREQ(SamplingAlgorithmName(SamplingAlgorithm::kKhopUniform), "khop-uniform");
  EXPECT_STREQ(SamplingAlgorithmName(SamplingAlgorithm::kKhopReservoir), "khop-reservoir");
  EXPECT_STREQ(SamplingAlgorithmName(SamplingAlgorithm::kKhopWeighted), "khop-weighted");
  EXPECT_STREQ(SamplingAlgorithmName(SamplingAlgorithm::kRandomWalk), "random-walk");
}

// --- Parameterized distribution properties ---------------------------------

struct UniformCase {
  std::uint32_t fanout;
  VertexId leaves;
};

class UniformDistributionTest : public ::testing::TestWithParam<UniformCase> {};

// Every neighbor of a hub must be picked with equal probability by both
// uniform kernels (the Fisher-Yates variant and Reservoir are semantically
// interchangeable, paper §7.3).
TEST_P(UniformDistributionTest, FisherYatesIsUniform) {
  const auto [fanout, leaves] = GetParam();
  const CsrGraph g = StarGraph(leaves);
  auto sampler = MakeKhopUniformSampler(g, {fanout});
  Rng rng(11);
  std::map<VertexId, int> counts;
  constexpr int kRounds = 4000;
  for (int round = 0; round < kRounds; ++round) {
    const VertexId seeds[] = {0};
    const SampleBlock block = sampler->Sample(seeds, &rng, nullptr);
    for (const LocalId src : block.hop(0).src_local) {
      ++counts[block.vertices()[src]];
    }
  }
  const double expected =
      static_cast<double>(kRounds) * std::min<double>(fanout, leaves) / leaves;
  for (VertexId leaf = 1; leaf <= leaves; ++leaf) {
    EXPECT_NEAR(counts[leaf], expected, expected * 0.25) << "leaf " << leaf;
  }
}

TEST_P(UniformDistributionTest, ReservoirIsUniform) {
  const auto [fanout, leaves] = GetParam();
  const CsrGraph g = StarGraph(leaves);
  auto sampler = MakeKhopReservoirSampler(g, {fanout});
  Rng rng(12);
  std::map<VertexId, int> counts;
  constexpr int kRounds = 4000;
  for (int round = 0; round < kRounds; ++round) {
    const VertexId seeds[] = {0};
    const SampleBlock block = sampler->Sample(seeds, &rng, nullptr);
    for (const LocalId src : block.hop(0).src_local) {
      ++counts[block.vertices()[src]];
    }
  }
  const double expected =
      static_cast<double>(kRounds) * std::min<double>(fanout, leaves) / leaves;
  for (VertexId leaf = 1; leaf <= leaves; ++leaf) {
    EXPECT_NEAR(counts[leaf], expected, expected * 0.25) << "leaf " << leaf;
  }
}

INSTANTIATE_TEST_SUITE_P(FanoutsAndDegrees, UniformDistributionTest,
                         ::testing::Values(UniformCase{1, 8}, UniformCase{2, 8},
                                           UniformCase{5, 20}, UniformCase{10, 40},
                                           UniformCase{15, 15}));

class KernelEquivalenceTest : public ::testing::TestWithParam<std::vector<std::uint32_t>> {};

// Both uniform kernels must produce identically *shaped* blocks: the same
// hop count and the same first-hop edge count (per-vertex output size is
// min(degree, fanout) for both). Deeper hops legitimately diverge because
// the random frontiers differ.
TEST_P(KernelEquivalenceTest, SameFirstHopStructure) {
  const Dataset ds = MakeDataset(DatasetId::kProducts, 0.05, 42);
  auto fy = MakeKhopUniformSampler(ds.graph, GetParam());
  auto rs = MakeKhopReservoirSampler(ds.graph, GetParam());
  Rng rng_a(13);
  Rng rng_b(13);
  const VertexId seeds[] = {1, 2, 3};
  const SampleBlock a = fy->Sample(seeds, &rng_a, nullptr);
  const SampleBlock b = rs->Sample(seeds, &rng_b, nullptr);
  ASSERT_EQ(a.num_hops(), b.num_hops());
  EXPECT_EQ(a.num_seeds(), b.num_seeds());
  EXPECT_EQ(a.hop(0).size(), b.hop(0).size());
  for (std::size_t h = 0; h < a.num_hops(); ++h) {
    EXPECT_GT(a.hop(h).size(), 0u);
    EXPECT_GT(b.hop(h).size(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, KernelEquivalenceTest,
                         ::testing::Values(std::vector<std::uint32_t>{5},
                                           std::vector<std::uint32_t>{25, 10},
                                           std::vector<std::uint32_t>{15, 10, 5}));

// --- Footprints and Table 2 similarity --------------------------------------

TEST(FootprintTest, AccumulateCountsSeedsAndSources) {
  RemapScratch scratch(10);
  SampleBlockBuilder builder(&scratch);
  const VertexId seeds[] = {0};
  builder.Begin(seeds);
  builder.BeginHop();
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);  // Duplicate pick (weighted-style) counts twice.
  builder.EndHop();
  const SampleBlock block = builder.Finish();

  Footprint fp(10);
  fp.Accumulate(block);
  EXPECT_EQ(fp.counts()[0], 1u);
  EXPECT_EQ(fp.counts()[1], 2u);
  EXPECT_EQ(fp.total(), 3u);
}

TEST(FootprintTest, MergeAndReset) {
  Footprint a(4);
  Footprint b(4);
  RemapScratch scratch(4);
  SampleBlockBuilder builder(&scratch);
  const VertexId seeds[] = {2};
  builder.Begin(seeds);
  const SampleBlock block = builder.Finish();
  a.Accumulate(block);
  b.Accumulate(block);
  a.Merge(b);
  EXPECT_EQ(a.counts()[2], 2u);
  a.Reset();
  EXPECT_EQ(a.total(), 0u);
}

TEST(FootprintTest, RankByCountIsDescendingAndDeterministic) {
  Footprint fp(5);
  RemapScratch scratch(5);
  SampleBlockBuilder builder(&scratch);
  const VertexId seeds[] = {3, 1};
  builder.Begin(seeds);
  builder.BeginHop();
  builder.AddEdge(0, 3);  // Vertex 3 now has count 2.
  builder.EndHop();
  fp.Accumulate(builder.Finish());
  const auto ranked = fp.RankByCount();
  EXPECT_EQ(ranked[0], 3u);
  EXPECT_EQ(ranked[1], 1u);
  // Ties broken by ascending id.
  EXPECT_EQ(ranked[2], 0u);
  EXPECT_EQ(ranked[3], 2u);
}

TEST(FootprintTest, TopFractionAtLeastOne) {
  Footprint fp(1000);
  EXPECT_EQ(fp.TopFraction(0.0001).size(), 1u);
  EXPECT_EQ(fp.TopFraction(0.1).size(), 100u);
  EXPECT_EQ(fp.TopFraction(1.0).size(), 1000u);
}

TEST(FootprintSimilarityTest, IdenticalEpochsAreFullySimilar) {
  const Dataset ds = MakeDataset(DatasetId::kProducts, 0.05, 42);
  auto sampler = MakeKhopUniformSampler(ds.graph, {15, 10, 5});
  Footprint fp(ds.graph.num_vertices());
  Rng shuffle(1);
  EpochBatches batches(ds.train_set, ds.batch_size, &shuffle);
  Rng rng(2);
  while (batches.HasNext()) {
    fp.Accumulate(sampler->Sample(batches.NextBatch(), &rng, nullptr));
  }
  EXPECT_NEAR(FootprintSimilarity(fp, fp, 0.1), 1.0, 1e-9);
}

TEST(FootprintSimilarityTest, AdjacentEpochsOverlapHeavily) {
  // The paper's Table 2 observation: top-10% access footprints of adjacent
  // epochs overlap by ~64-91%. Verify the reproduction shows the same
  // property on the products graph.
  const Dataset ds = MakeDataset(DatasetId::kProducts, 0.1, 42);
  auto sampler = MakeKhopUniformSampler(ds.graph, {15, 10, 5});
  Footprint epoch_a(ds.graph.num_vertices());
  Footprint epoch_b(ds.graph.num_vertices());
  for (int e = 0; e < 2; ++e) {
    Footprint& fp = e == 0 ? epoch_a : epoch_b;
    Rng shuffle(100 + e);
    EpochBatches batches(ds.train_set, ds.batch_size, &shuffle);
    Rng rng(200 + e);
    while (batches.HasNext()) {
      fp.Accumulate(sampler->Sample(batches.NextBatch(), &rng, nullptr));
    }
  }
  const double similarity = FootprintSimilarity(epoch_a, epoch_b, 0.1);
  EXPECT_GT(similarity, 0.5);
  EXPECT_LE(similarity, 1.0);
}

TEST(FootprintSimilarityTest, DisjointFootprintsScoreZero) {
  Footprint a(10);
  Footprint b(10);
  RemapScratch scratch(10);
  SampleBlockBuilder builder(&scratch);
  const VertexId seeds_a[] = {0, 1};
  builder.Begin(seeds_a);
  a.Accumulate(builder.Finish());
  const VertexId seeds_b[] = {8, 9};
  builder.Begin(seeds_b);
  b.Accumulate(builder.Finish());
  EXPECT_DOUBLE_EQ(FootprintSimilarity(a, b, 0.2), 0.0);
}

}  // namespace
}  // namespace gnnlab
