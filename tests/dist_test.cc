// The distributed layer's guarantees: the partitioner covers every edge
// exactly once and round-trips local ids, the modeled NIC is monotone in
// bytes and never slowed by extra links, ring and tree all-reduce agree
// bit-for-bit on the reduced gradients, and the DistEngine is deterministic
// for a fixed seed — with N=1 matching the single-machine simulated Engine
// exactly (same stage bodies, same RNG streams, zero-cost comm).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "dist/comm_manager.h"
#include "dist/dist_engine.h"
#include "dist/graph_partitioner.h"
#include "graph/generators.h"
#include "obs/health.h"
#include "pipeline/report_assembler.h"
#include "report/json.h"

namespace gnnlab {
namespace {

// --- GraphPartitioner properties --------------------------------------------

struct PartitionCase {
  PartitionStrategy strategy;
  int num_nodes;
};

std::string PartitionCaseName(const testing::TestParamInfo<PartitionCase>& info) {
  return std::string(PartitionStrategyName(info.param.strategy)) + "_n" +
         std::to_string(info.param.num_nodes);
}

class PartitionerTest : public testing::TestWithParam<PartitionCase> {};

CsrGraph MakeSkewedGraph(std::uint64_t seed) {
  RmatParams params;
  params.num_vertices = 512;
  params.num_edges = 4000;
  Rng rng(seed);
  return GenerateRmat(params, &rng);
}

// All global (src, dst) edges of a shard, reconstructed through global_ids.
std::vector<std::pair<VertexId, VertexId>> ShardEdges(const PartitionShard& shard) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId local = 0; local < shard.local.num_vertices(); ++local) {
    for (const VertexId neighbor_local : shard.local.Neighbors(local)) {
      edges.emplace_back(shard.global_ids[local], shard.global_ids[neighbor_local]);
    }
  }
  return edges;
}

TEST_P(PartitionerTest, EveryEdgeExactlyOnce) {
  const PartitionCase param = GetParam();
  for (const std::uint64_t seed : {11u, 29u, 47u}) {
    const CsrGraph graph = MakeSkewedGraph(seed);
    const GraphPartition partition =
        PartitionGraph(graph, {param.num_nodes, param.strategy, 0.05});

    std::vector<std::pair<VertexId, VertexId>> sharded;
    for (int n = 0; n < param.num_nodes; ++n) {
      const auto edges = ShardEdges(partition.shard(n));
      sharded.insert(sharded.end(), edges.begin(), edges.end());
    }
    std::vector<std::pair<VertexId, VertexId>> global;
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      for (const VertexId w : graph.Neighbors(v)) {
        global.emplace_back(v, w);
      }
    }
    std::sort(sharded.begin(), sharded.end());
    std::sort(global.begin(), global.end());
    EXPECT_EQ(sharded, global) << "seed " << seed;
  }
}

TEST_P(PartitionerTest, LocalIdRoundTripsAndOwnedIsPrefix) {
  const PartitionCase param = GetParam();
  const CsrGraph graph = MakeSkewedGraph(13);
  const GraphPartition partition =
      PartitionGraph(graph, {param.num_nodes, param.strategy, 0.05});
  ASSERT_EQ(partition.owners().size(), graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const int owner = partition.Owner(v);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, param.num_nodes);
    EXPECT_EQ(partition.owners()[v], owner);
    const PartitionShard& shard = partition.shard(owner);
    const VertexId local = partition.LocalId(v);
    ASSERT_LT(local, shard.owned.size());
    EXPECT_EQ(shard.global_ids[local], v);
    EXPECT_EQ(shard.owned[local], v);
  }
}

TEST_P(PartitionerTest, OwnedCountsBalance) {
  const PartitionCase param = GetParam();
  const CsrGraph graph = MakeSkewedGraph(17);
  const GraphPartition partition =
      PartitionGraph(graph, {param.num_nodes, param.strategy, 0.05});
  std::size_t total_owned = 0;
  std::size_t max_owned = 0;
  std::size_t min_owned = graph.num_vertices();
  for (int n = 0; n < param.num_nodes; ++n) {
    const std::size_t owned = partition.shard(n).owned.size();
    total_owned += owned;
    max_owned = std::max(max_owned, owned);
    min_owned = std::min(min_owned, owned);
  }
  EXPECT_EQ(total_owned, graph.num_vertices());
  // The contiguous split keeps shards within one vertex of each other.
  EXPECT_LE(max_owned - min_owned, 1u);
  EXPECT_LE(partition.OwnedImbalance(), 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, PartitionerTest,
    testing::Values(PartitionCase{PartitionStrategy::kEdgeCut, 1},
                    PartitionCase{PartitionStrategy::kEdgeCut, 2},
                    PartitionCase{PartitionStrategy::kEdgeCut, 4},
                    PartitionCase{PartitionStrategy::kEdgeCut, 8},
                    PartitionCase{PartitionStrategy::kVertexCut, 1},
                    PartitionCase{PartitionStrategy::kVertexCut, 2},
                    PartitionCase{PartitionStrategy::kVertexCut, 4},
                    PartitionCase{PartitionStrategy::kVertexCut, 8}),
    PartitionCaseName);

TEST(PartitionerTest, SingleNodeShardIsBitIdenticalToInput) {
  const CsrGraph graph = MakeSkewedGraph(23);
  for (const PartitionStrategy strategy :
       {PartitionStrategy::kEdgeCut, PartitionStrategy::kVertexCut}) {
    const GraphPartition partition = PartitionGraph(graph, {1, strategy, 0.05});
    const PartitionShard& shard = partition.shard(0);
    ASSERT_EQ(shard.local.num_vertices(), graph.num_vertices());
    ASSERT_EQ(shard.local.num_edges(), graph.num_edges());
    EXPECT_TRUE(std::equal(shard.local.indptr().begin(), shard.local.indptr().end(),
                           graph.indptr().begin()));
    EXPECT_TRUE(std::equal(shard.local.indices().begin(), shard.local.indices().end(),
                           graph.indices().begin()));
    EXPECT_EQ(partition.ShardTopologyBytes(0), graph.TopologyBytes());
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      EXPECT_DOUBLE_EQ(partition.LocalAdjacencyFraction(0, v), 1.0);
    }
  }
}

TEST(PartitionerTest, OwnedTrainVerticesShardTheSetPreservingOrder) {
  const CsrGraph graph = MakeSkewedGraph(31);
  Rng rng(5);
  TrainingSet train_set = TrainingSet::SelectUniform(graph.num_vertices(), 200, &rng);
  const GraphPartition partition =
      PartitionGraph(graph, {4, PartitionStrategy::kEdgeCut, 0.05});
  std::vector<VertexId> merged_by_owner;
  std::size_t total = 0;
  for (int n = 0; n < 4; ++n) {
    const std::vector<VertexId> shard = OwnedTrainVertices(partition, train_set, n);
    total += shard.size();
    for (const VertexId v : shard) {
      EXPECT_EQ(partition.Owner(v), n);
    }
    // Order within a shard preserves the training set's original order.
    std::vector<std::size_t> positions;
    for (const VertexId v : shard) {
      const auto it =
          std::find(train_set.vertices().begin(), train_set.vertices().end(), v);
      ASSERT_NE(it, train_set.vertices().end());
      positions.push_back(static_cast<std::size_t>(it - train_set.vertices().begin()));
    }
    EXPECT_TRUE(std::is_sorted(positions.begin(), positions.end()));
  }
  EXPECT_EQ(total, train_set.size());
}

// --- CommManager ------------------------------------------------------------

TEST(CommManagerTest, TransferTimeMonotoneInBytes) {
  CommParams params;
  SimTime previous = 0.0;
  for (const ByteCount bytes : {1024u, 4096u, 65536u, 1048576u}) {
    CommManager comm(2, params);
    const SimTime done = comm.Transfer(0, 1, bytes, TrafficClass::kFeatureFetch, 0.0);
    EXPECT_GT(done, previous);
    previous = done;
  }
}

TEST(CommManagerTest, SameNodeTransferIsFree) {
  CommManager comm(2, CommParams{});
  EXPECT_DOUBLE_EQ(comm.Transfer(1, 1, 1 * kMiB, TrafficClass::kGradSync, 3.5), 3.5);
  EXPECT_EQ(comm.stats(TrafficClass::kGradSync).bytes, 0u);
}

TEST(CommManagerTest, MoreLinksNeverDelayABurst) {
  for (const ByteCount bytes : {8192u, 262144u}) {
    CommParams one;
    one.links_per_node = 1;
    CommParams two;
    two.links_per_node = 2;
    CommManager comm_one(4, one);
    CommManager comm_two(4, two);
    SimTime max_one = 0.0;
    SimTime max_two = 0.0;
    // A fan-in burst: three senders target node 0 at t=0.
    for (int src = 1; src < 4; ++src) {
      max_one = std::max(
          max_one, comm_one.Transfer(src, 0, bytes, TrafficClass::kFeatureFetch, 0.0));
      max_two = std::max(
          max_two, comm_two.Transfer(src, 0, bytes, TrafficClass::kFeatureFetch, 0.0));
    }
    EXPECT_LE(max_two, max_one);
  }
}

TEST(CommManagerTest, PerClassStatsAccumulate) {
  CommManager comm(2, CommParams{});
  comm.Transfer(0, 1, 1000, TrafficClass::kFeatureFetch, 0.0);
  comm.Transfer(1, 0, 2000, TrafficClass::kFeatureFetch, 0.0);
  comm.Transfer(0, 1, 500, TrafficClass::kGradSync, 0.0);
  EXPECT_EQ(comm.stats(TrafficClass::kFeatureFetch).messages, 2u);
  EXPECT_EQ(comm.stats(TrafficClass::kFeatureFetch).bytes, 3000u);
  EXPECT_EQ(comm.stats(TrafficClass::kGradSync).messages, 1u);
  EXPECT_EQ(comm.stats(TrafficClass::kGradSync).bytes, 500u);
  EXPECT_GT(comm.stats(TrafficClass::kFeatureFetch).seconds, 0.0);
}

TEST(CommManagerTest, AllReduceTimeMatchesClosedForm) {
  CommParams params;
  params.nic_bandwidth = 100.0 * 1024 * 1024;
  params.nic_latency = 10e-6;
  params.links_per_node = 2;
  const ByteCount bytes = 4 * kMiB;
  const double bw = params.nic_bandwidth * params.links_per_node;

  EXPECT_DOUBLE_EQ(AllReduceTime(bytes, 1, AllReduceAlgo::kRing, params), 0.0);
  EXPECT_DOUBLE_EQ(AllReduceTime(0, 4, AllReduceAlgo::kRing, params), 0.0);

  const int n = 4;
  const double ring = 2.0 * (n - 1) *
                      (params.nic_latency + static_cast<double>(bytes) / n / bw);
  EXPECT_DOUBLE_EQ(AllReduceTime(bytes, n, AllReduceAlgo::kRing, params), ring);
  const double tree =
      2.0 * 2.0 * (params.nic_latency + static_cast<double>(bytes) / bw);  // ceil(log2 4)=2.
  EXPECT_DOUBLE_EQ(AllReduceTime(bytes, n, AllReduceAlgo::kTree, params), tree);

  // Monotone in bytes for both algorithms.
  for (const AllReduceAlgo algo : {AllReduceAlgo::kRing, AllReduceAlgo::kTree}) {
    EXPECT_LT(AllReduceTime(bytes, n, algo, params),
              AllReduceTime(2 * bytes, n, algo, params));
  }
}

TEST(CommManagerTest, AllReduceWireBytesConserved) {
  EXPECT_EQ(AllReduceWireBytes(1000, 1), 0u);
  EXPECT_EQ(AllReduceWireBytes(1000, 2), 2000u);
  EXPECT_EQ(AllReduceWireBytes(1000, 8), 14000u);
}

TEST(CommManagerTest, RingAndTreeAllReduceAgreeBitExactly) {
  Rng rng(71);
  std::vector<std::vector<float>> buffers(5, std::vector<float>(257));
  for (auto& buffer : buffers) {
    for (float& x : buffer) {
      x = static_cast<float>(rng.NextDouble()) * 2.0f - 1.0f;
    }
  }
  const auto ring = AllReduceSum(buffers, AllReduceAlgo::kRing);
  const auto tree = AllReduceSum(buffers, AllReduceAlgo::kTree);
  ASSERT_EQ(ring.size(), buffers.size());
  ASSERT_EQ(tree.size(), buffers.size());
  std::vector<float> expected(buffers[0].size(), 0.0f);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    // Canonical rank-ascending order, the determinism contract.
    float sum = 0.0f;
    for (const auto& buffer : buffers) {
      sum += buffer[i];
    }
    expected[i] = sum;
  }
  for (std::size_t rank = 0; rank < buffers.size(); ++rank) {
    EXPECT_EQ(ring[rank], expected) << "ring rank " << rank;
    EXPECT_EQ(tree[rank], expected) << "tree rank " << rank;
  }
}

// --- DistEngine -------------------------------------------------------------

constexpr double kCacheRatio = 0.25;
constexpr std::size_t kEpochs = 2;
constexpr std::uint64_t kSeed = 7;

const Dataset& SharedDataset() {
  static Dataset* dataset = new Dataset(MakeDataset(DatasetId::kProducts, 0.1, 42));
  return *dataset;
}

DistOptions BaseDistOptions(int num_nodes, CachePolicyKind policy) {
  DistOptions options;
  options.num_nodes = num_nodes;
  options.gpus_per_node = 2;
  options.num_samplers = 1;
  options.dynamic_switching = false;
  options.policy = policy;
  options.cache_ratio_override = kCacheRatio;
  options.epochs = kEpochs;
  options.seed = kSeed;
  return options;
}

class DistSingleNodeEquivalenceTest : public testing::TestWithParam<CachePolicyKind> {};

// The headline factoring guarantee at the dist layer: N=1 runs the exact
// single-machine pipeline — same RNG streams, zero-cost comm, identical
// event order — so every count and every simulated timestamp matches
// Engine::Run().
TEST_P(DistSingleNodeEquivalenceTest, SingleNodeMatchesSimEngineExactly) {
  const CachePolicyKind policy = GetParam();
  const Dataset& dataset = SharedDataset();
  const Workload workload = StandardWorkload(GnnModelKind::kGraphSage);

  EngineOptions single;
  single.num_gpus = 2;
  single.num_samplers = 1;
  single.dynamic_switching = false;
  single.policy = policy;
  single.cache_ratio_override = kCacheRatio;
  single.epochs = kEpochs;
  single.seed = kSeed;
  Engine engine(dataset, workload, single);
  const RunReport expected = engine.Run();
  ASSERT_FALSE(expected.oom) << expected.oom_detail;

  DistEngine dist(dataset, workload, BaseDistOptions(1, policy));
  const DistRunReport report = dist.Run();
  ASSERT_FALSE(report.oom) << report.oom_detail;
  ASSERT_EQ(report.nodes.size(), 1u);
  const DistNodeReport& node = report.nodes[0];

  EXPECT_EQ(node.num_samplers, expected.num_samplers);
  EXPECT_EQ(node.num_trainers, expected.num_trainers);
  EXPECT_DOUBLE_EQ(node.cache_ratio, expected.cache_ratio);
  EXPECT_DOUBLE_EQ(node.k_ratio, expected.k_ratio);
  EXPECT_EQ(node.queue.total_enqueued, expected.queue.total_enqueued);
  EXPECT_EQ(node.queue.max_depth, expected.queue.max_depth);
  EXPECT_EQ(node.queue.max_stored_bytes, expected.queue.max_stored_bytes);

  ASSERT_EQ(node.epochs.size(), expected.epochs.size());
  for (std::size_t e = 0; e < node.epochs.size(); ++e) {
    const DistNodeEpochReport& got = node.epochs[e];
    const EpochReport& want = expected.epochs[e];
    EXPECT_DOUBLE_EQ(got.epoch.epoch_time, want.epoch_time) << "epoch " << e;
    EXPECT_DOUBLE_EQ(report.epoch_times[e], want.epoch_time) << "epoch " << e;
    EXPECT_EQ(got.epoch.batches, want.batches);
    EXPECT_EQ(got.epoch.sampled_edges, want.sampled_edges);
    EXPECT_EQ(got.epoch.gradient_updates, want.gradient_updates);
    EXPECT_EQ(got.epoch.switched_batches, want.switched_batches);
    EXPECT_EQ(got.epoch.extract.distinct_vertices, want.extract.distinct_vertices);
    EXPECT_EQ(got.epoch.extract.cache_hits, want.extract.cache_hits);
    EXPECT_EQ(got.epoch.extract.host_misses, want.extract.host_misses);
    EXPECT_EQ(got.epoch.extract.bytes_from_host, want.extract.bytes_from_host);
    EXPECT_EQ(got.epoch.extract.bytes_from_cache, want.extract.bytes_from_cache);
    EXPECT_DOUBLE_EQ(got.epoch.stage.sample_graph, want.stage.sample_graph);
    EXPECT_DOUBLE_EQ(got.epoch.stage.sample_mark, want.stage.sample_mark);
    EXPECT_DOUBLE_EQ(got.epoch.stage.sample_copy, want.stage.sample_copy);
    EXPECT_DOUBLE_EQ(got.epoch.stage.extract, want.stage.extract);
    EXPECT_DOUBLE_EQ(got.epoch.stage.train, want.stage.train);
    // No peers: nothing remote, no all-reduce cost.
    EXPECT_EQ(got.remote_fetches, 0u);
    EXPECT_EQ(got.bytes_remote, 0u);
    EXPECT_DOUBLE_EQ(got.remote_adj_edges, 0.0);
    EXPECT_DOUBLE_EQ(got.allreduce_wait, 0.0);
    EXPECT_DOUBLE_EQ(report.epoch_allreduce[e], 0.0);
  }
  EXPECT_EQ(report.comm.feature_bytes, 0u);
  EXPECT_EQ(report.comm.allreduce_wire_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, DistSingleNodeEquivalenceTest,
                         testing::Values(CachePolicyKind::kNone, CachePolicyKind::kDegree,
                                         CachePolicyKind::kPreSC1),
                         [](const testing::TestParamInfo<CachePolicyKind>& info) {
                           // CachePolicyKindName can contain '#' (PreSC#1),
                           // which gtest rejects in test names.
                           std::string name(CachePolicyKindName(info.param));
                           std::erase_if(name, [](char c) { return !std::isalnum(c); });
                           return name;
                         });

struct NodeEpochCounts {
  std::size_t batches = 0;
  std::uint64_t sampled_edges = 0;
  std::size_t cache_hits = 0;
  std::size_t host_misses = 0;
  std::uint64_t remote_fetches = 0;
  ByteCount bytes_remote = 0;

  bool operator==(const NodeEpochCounts& o) const {
    return batches == o.batches && sampled_edges == o.sampled_edges &&
           cache_hits == o.cache_hits && host_misses == o.host_misses &&
           remote_fetches == o.remote_fetches && bytes_remote == o.bytes_remote;
  }
};

std::vector<NodeEpochCounts> CollectCounts(const DistRunReport& report) {
  std::vector<NodeEpochCounts> counts;
  for (const DistNodeReport& node : report.nodes) {
    for (const DistNodeEpochReport& epoch : node.epochs) {
      NodeEpochCounts c;
      c.batches = epoch.epoch.batches;
      c.sampled_edges = epoch.epoch.sampled_edges;
      c.cache_hits = epoch.epoch.extract.cache_hits;
      c.host_misses = epoch.epoch.extract.host_misses;
      c.remote_fetches = epoch.remote_fetches;
      c.bytes_remote = epoch.bytes_remote;
      counts.push_back(c);
    }
  }
  return counts;
}

TEST(DistEngineTest, FourNodeRunIsDeterministicAcrossRepeats) {
  const Dataset& dataset = SharedDataset();
  const Workload workload = StandardWorkload(GnnModelKind::kGraphSage);
  const DistOptions options = BaseDistOptions(4, CachePolicyKind::kPreSC1);

  DistEngine first(dataset, workload, options);
  const DistRunReport a = first.Run();
  ASSERT_FALSE(a.oom) << a.oom_detail;
  DistEngine second(dataset, workload, options);
  const DistRunReport b = second.Run();
  ASSERT_FALSE(b.oom) << b.oom_detail;

  EXPECT_EQ(CollectCounts(a), CollectCounts(b));
  ASSERT_EQ(a.epoch_times.size(), b.epoch_times.size());
  for (std::size_t e = 0; e < a.epoch_times.size(); ++e) {
    EXPECT_DOUBLE_EQ(a.epoch_times[e], b.epoch_times[e]);
    EXPECT_DOUBLE_EQ(a.epoch_allreduce[e], b.epoch_allreduce[e]);
  }
  EXPECT_EQ(a.comm.feature_bytes, b.comm.feature_bytes);
  EXPECT_EQ(a.comm.allreduce_rounds, b.comm.allreduce_rounds);
}

TEST(DistEngineTest, RemoteFetchCountersSplitTheMisses) {
  const Dataset& dataset = SharedDataset();
  const Workload workload = StandardWorkload(GnnModelKind::kGraphSage);
  DistEngine dist(dataset, workload, BaseDistOptions(4, CachePolicyKind::kDegree));
  const DistRunReport report = dist.Run();
  ASSERT_FALSE(report.oom) << report.oom_detail;
  ASSERT_EQ(report.nodes.size(), 4u);

  std::uint64_t total_remote = 0;
  for (const DistNodeReport& node : report.nodes) {
    for (const DistNodeEpochReport& epoch : node.epochs) {
      // Per-class accounting closes: hits + misses = distinct, and the
      // remote rows are a subset of the misses.
      EXPECT_EQ(epoch.epoch.extract.cache_hits + epoch.epoch.extract.host_misses,
                epoch.epoch.extract.distinct_vertices);
      EXPECT_LE(epoch.remote_fetches, epoch.epoch.extract.host_misses);
      EXPECT_LE(epoch.bytes_remote, epoch.epoch.extract.bytes_from_host);
      total_remote += epoch.remote_fetches;
      // With 4 nodes the sampled frontier always crosses shards.
      EXPECT_GT(epoch.remote_adj_edges, 0.0);
    }
  }
  EXPECT_GT(total_remote, 0u);
  EXPECT_GT(report.TotalRemoteBytes(), 0u);
  // The NIC saw every remotely fetched byte.
  EXPECT_EQ(report.comm.feature_bytes, report.TotalRemoteBytes());
  // Gradient sync ran and was priced.
  EXPECT_GT(report.comm.allreduce_rounds, 0u);
  EXPECT_GT(report.comm.allreduce_seconds, 0.0);
  EXPECT_GT(report.AllReduceShare(), 0.0);
  EXPECT_LT(report.AllReduceShare(), 1.0);
  EXPECT_EQ(report.comm.allreduce_wire_bytes,
            report.comm.allreduce_rounds * AllReduceWireBytes(report.gradient_bytes, 4));
}

TEST(DistEngineTest, GradientUpdatesMatchSyncGroups) {
  const Dataset& dataset = SharedDataset();
  const Workload workload = StandardWorkload(GnnModelKind::kGraphSage);
  DistEngine dist(dataset, workload, BaseDistOptions(2, CachePolicyKind::kDegree));
  const DistRunReport report = dist.Run();
  ASSERT_FALSE(report.oom) << report.oom_detail;
  for (const DistNodeReport& node : report.nodes) {
    ASSERT_GT(node.num_trainers, 0);
    for (const DistNodeEpochReport& epoch : node.epochs) {
      EXPECT_EQ(epoch.epoch.gradient_updates,
                SyncGradientUpdates(epoch.epoch.batches,
                                    static_cast<std::size_t>(node.num_trainers)));
    }
  }
}

TEST(DistEngineTest, SwitchDecisionsCarryNodeIds) {
  const Dataset& dataset = SharedDataset();
  const Workload workload = StandardWorkload(GnnModelKind::kGraphSage);
  DistOptions options = BaseDistOptions(2, CachePolicyKind::kDegree);
  options.dynamic_switching = true;
  DistEngine dist(dataset, workload, options);
  const DistRunReport report = dist.Run();
  ASSERT_FALSE(report.oom) << report.oom_detail;
  ASSERT_FALSE(report.switch_decisions.empty());
  bool saw_second_node = false;
  for (const SwitchDecision& decision : report.switch_decisions) {
    EXPECT_GE(decision.node, 0);
    EXPECT_LT(decision.node, 2);
    saw_second_node = saw_second_node || decision.node == 1;
  }
  EXPECT_TRUE(saw_second_node);
}

TEST(DistEngineTest, TimeSharingModeRunsAndPaysRemoteFetches) {
  const Dataset& dataset = SharedDataset();
  const Workload workload = StandardWorkload(GnnModelKind::kGraphSage);
  DistOptions options = BaseDistOptions(2, CachePolicyKind::kDegree);
  options.time_sharing = true;
  DistEngine dist(dataset, workload, options);
  const DistRunReport report = dist.Run();
  ASSERT_FALSE(report.oom) << report.oom_detail;
  ASSERT_EQ(report.nodes.size(), 2u);
  for (const DistNodeReport& node : report.nodes) {
    EXPECT_EQ(node.num_samplers, 0);
    EXPECT_EQ(node.num_trainers, 2);
    for (const DistNodeEpochReport& epoch : node.epochs) {
      EXPECT_GT(epoch.epoch.batches, 0u);
      EXPECT_GT(epoch.epoch.stage.train, 0.0);
    }
  }
  EXPECT_GT(report.TotalRemoteBytes(), 0u);
  EXPECT_GT(report.comm.allreduce_rounds, 0u);
}

TEST(DistEngineTest, DistMetricsLandInRegistryAndPrometheusText) {
  const Dataset& dataset = SharedDataset();
  const Workload workload = StandardWorkload(GnnModelKind::kGraphSage);
  MetricRegistry registry;
  DistOptions options = BaseDistOptions(2, CachePolicyKind::kDegree);
  options.metrics = &registry;
  DistEngine dist(dataset, workload, options);
  const DistRunReport report = dist.Run();
  ASSERT_FALSE(report.oom) << report.oom_detail;

  const Gauge* nodes = registry.FindGauge(kMetricDistNodes);
  ASSERT_NE(nodes, nullptr);
  EXPECT_DOUBLE_EQ(nodes->value(), 2.0);
  for (int n = 0; n < 2; ++n) {
    const std::string prefix = DistNodeMetricPrefix(n);
    EXPECT_NE(registry.FindCounter(prefix + kMetricCacheHits), nullptr) << n;
    EXPECT_NE(registry.FindCounter(prefix + kMetricQueueEnqueued), nullptr) << n;
    const Counter* remote = registry.FindCounter(prefix + kMetricDistRemoteBytes);
    ASSERT_NE(remote, nullptr) << n;
    ByteCount reported = 0;
    for (const DistNodeEpochReport& epoch : report.nodes[n].epochs) {
      reported += epoch.bytes_remote;
    }
#if GNNLAB_OBS_ENABLED
    EXPECT_EQ(remote->value(), reported) << n;
#else
    // Families register either way, but the per-event hooks vanish: the
    // counter must stay untouched while the report still carries the bytes.
    EXPECT_EQ(remote->value(), 0u) << n;
    EXPECT_GT(reported, 0u) << n;
#endif
  }
  EXPECT_NE(registry.FindCounter(kMetricDistAllReduceRounds), nullptr);

  const std::string text = RegistryToPrometheusText(registry);
  EXPECT_NE(text.find("gnnlab_dist_nodes"), std::string::npos);
  EXPECT_NE(text.find("gnnlab_dist_n0_remote_bytes"), std::string::npos);
  EXPECT_NE(text.find("gnnlab_dist_allreduce_rounds"), std::string::npos);
}

TEST(DistEngineTest, ReportSerializesToJson) {
  const Dataset& dataset = SharedDataset();
  const Workload workload = StandardWorkload(GnnModelKind::kGraphSage);
  DistEngine dist(dataset, workload, BaseDistOptions(2, CachePolicyKind::kDegree));
  const DistRunReport report = dist.Run();
  ASSERT_FALSE(report.oom) << report.oom_detail;
  const std::string json = DistRunReportToJson(report);
  EXPECT_NE(json.find("\"num_nodes\":2"), std::string::npos);
  EXPECT_NE(json.find("\"strategy\":\"edge_cut\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes_remote\""), std::string::npos);
  EXPECT_NE(json.find("\"allreduce_share\""), std::string::npos);
  EXPECT_NE(json.find("\"node\":1"), std::string::npos);
}

}  // namespace
}  // namespace gnnlab
