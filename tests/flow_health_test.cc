// Tests for the per-minibatch flow layer and the health monitor: FlowTracer
// recording/ordering and its Chrome flow events, the critical-path fold on
// hand-built flow DAGs, Prometheus text exposition (file and HTTP), and the
// alert-rule grammar + evaluation that drives the executor switcher.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/critical_path.h"
#include "obs/flow.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "report/json_parse.h"

namespace gnnlab {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// ---------------------------------------------------------------------------
// FlowTracer

TEST(FlowIdTest, PacksEpochAndBatch) {
  const FlowId flow = MakeFlowId(3, 41);
  EXPECT_EQ(FlowEpoch(flow), 3u);
  EXPECT_EQ(FlowBatch(flow), 41u);
  // Flow ids sort by (epoch, batch): an epoch's flows are contiguous.
  EXPECT_LT(MakeFlowId(0, 999), MakeFlowId(1, 0));
  EXPECT_LT(MakeFlowId(1, 0), MakeFlowId(1, 1));
}

TEST(FlowTracerTest, CollectSortsDeterministically) {
  FlowTracer flows;
  // Record out of order, across flows.
  flows.Record(MakeFlowId(0, 1), "gpu1/trainer", "train", 5.0, 6.0);
  flows.Record(MakeFlowId(0, 0), "gpu0/sampler", "sample", 0.0, 1.0);
  flows.Record(MakeFlowId(0, 1), "gpu0/sampler", "sample", 1.0, 2.0);
  flows.Record(MakeFlowId(0, 0), "gpu1/trainer", "extract", 2.0, 3.0, 0.25);
  ASSERT_EQ(flows.size(), 4u);

  const std::vector<FlowStep> steps = flows.Collect();
  ASSERT_EQ(steps.size(), 4u);
  // Sorted by (flow, begin): flow 0's steps first, each flow begin-ordered.
  EXPECT_EQ(steps[0].flow, MakeFlowId(0, 0));
  EXPECT_EQ(steps[0].stage, "sample");
  EXPECT_EQ(steps[1].flow, MakeFlowId(0, 0));
  EXPECT_EQ(steps[1].stage, "extract");
  EXPECT_DOUBLE_EQ(steps[1].stall, 0.25);
  EXPECT_EQ(steps[2].flow, MakeFlowId(0, 1));
  EXPECT_EQ(steps[2].stage, "sample");
  EXPECT_EQ(steps[3].flow, MakeFlowId(0, 1));
  EXPECT_EQ(steps[3].stage, "train");

  flows.Clear();
  EXPECT_EQ(flows.size(), 0u);
  EXPECT_TRUE(flows.Collect().empty());
}

TEST(FlowTracerTest, ConcurrentRecordsAllSurvive) {
  FlowTracer flows;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&flows, t] {
      for (int i = 0; i < kPerThread; ++i) {
        flows.Record(MakeFlowId(t, i), "lane" + std::to_string(t), "sample",
                     static_cast<double>(i), static_cast<double>(i) + 0.5);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(flows.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(flows.Collect().size(), static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(FlowTracerTest, ChromeJsonHasFlowEventsAndStableLaneTids) {
  FlowTracer flows;
  const FlowId flow = MakeFlowId(0, 7);
  flows.Record(flow, "gpu0/sampler", "sample", 1.0, 2.0);
  flows.Record(flow, "queue", "queue_wait", 2.0, 2.5);
  flows.Record(flow, "gpu1/trainer", "extract", 2.5, 3.0, 0.1);
  flows.Record(flow, "gpu1/trainer", "train", 3.0, 4.0);
  // A single-step flow: no arrows for it (nothing to link).
  flows.Record(MakeFlowId(0, 8), "gpu0/sampler", "sample", 4.0, 5.0);

  const std::string json = flows.ToChromeJson();
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(json, &root, &error)) << error;
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->IsArray());

  std::set<std::string> phases;
  std::map<std::string, double> lane_tid;  // thread_name metadata -> tid.
  std::size_t arrows = 0;
  for (const JsonValue& event : events->array) {
    const std::string ph = event.Find("ph")->string;
    phases.insert(ph);
    if (ph == "M") {
      lane_tid[event.Find("args")->Find("name")->string] = event.Find("tid")->number;
    }
    if (ph == "s" || ph == "t" || ph == "f") {
      ++arrows;
      // Flow events carry the flow id so Perfetto links them.
      EXPECT_EQ(event.Find("id")->number, static_cast<double>(flow));
    }
  }
  // Slices, metadata, and the full s/t/f arrow chain are all present.
  EXPECT_TRUE(phases.count("X"));
  EXPECT_TRUE(phases.count("M"));
  EXPECT_TRUE(phases.count("s"));
  EXPECT_TRUE(phases.count("t"));
  EXPECT_TRUE(phases.count("f"));
  // 4 linked steps -> 1 "s" + 2 "t" + 1 "f"; the single-step flow adds none.
  EXPECT_EQ(arrows, 4u);

  // Lane-tid stability pin: tids follow natural lane-name order, not
  // recording or thread-creation order.
  ASSERT_EQ(lane_tid.size(), 3u);
  EXPECT_EQ(lane_tid["gpu0/sampler"], 0.0);
  EXPECT_EQ(lane_tid["gpu1/trainer"], 1.0);
  EXPECT_EQ(lane_tid["queue"], 2.0);
}

TEST(FlowTracerTest, LaneTidsUseNaturalNumericOrder) {
  // "gpu2/..." must sort before "gpu10/..." (natural, not lexicographic).
  EXPECT_TRUE(LaneNaturalLess("gpu2/trainer", "gpu10/trainer"));
  EXPECT_FALSE(LaneNaturalLess("gpu10/trainer", "gpu2/trainer"));

  FlowTracer flows;
  const FlowId flow = MakeFlowId(0, 0);
  flows.Record(flow, "gpu10/trainer", "train", 2.0, 3.0);
  flows.Record(flow, "gpu2/trainer", "extract", 1.0, 2.0);
  JsonValue root;
  ASSERT_TRUE(ParseJson(flows.ToChromeJson(), &root, nullptr));
  std::map<std::string, double> lane_tid;
  for (const JsonValue& event : root.Find("traceEvents")->array) {
    if (event.Find("ph")->string == "M") {
      lane_tid[event.Find("args")->Find("name")->string] = event.Find("tid")->number;
    }
  }
  EXPECT_EQ(lane_tid["gpu2/trainer"], 0.0);
  EXPECT_EQ(lane_tid["gpu10/trainer"], 1.0);
}

TEST(FlowTracerTest, WriteChromeTraceRoundTrips) {
  FlowTracer flows;
  flows.Record(MakeFlowId(0, 0), "gpu0/sampler", "sample", 0.0, 1.0);
  const std::string path = TempPath("flow_trace.json");
  ASSERT_TRUE(flows.WriteChromeTrace(path));
  std::ifstream file(path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  JsonValue root;
  std::string error;
  EXPECT_TRUE(ParseJson(buffer.str(), &root, &error)) << error;
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Critical path

std::vector<FlowStep> MakeFlow(std::initializer_list<FlowStep> steps) {
  return std::vector<FlowStep>(steps);
}

TEST(CriticalPathTest, EmptyFlowIsZero) {
  const FlowCriticalPath path = AnalyzeFlow({});
  EXPECT_EQ(path.latency, 0.0);
  EXPECT_EQ(path.blame.Total(), 0.0);
  const PipelineAttribution none = AnalyzeFlows({});
  EXPECT_EQ(none.flows, 0u);
  // No flows -> all-zero fractions rather than NaN.
  EXPECT_EQ(none.Fractions().Total(), 0.0);
}

TEST(CriticalPathTest, SingleStageDominates) {
  const FlowId flow = MakeFlowId(0, 0);
  const auto steps = MakeFlow({
      {flow, "s0", "sample", 0.0, 1.0, 0.0},
      {flow, "t0", "extract", 1.0, 2.0, 0.0},
      {flow, "t0", "train", 2.0, 8.0, 0.0},
  });
  const FlowCriticalPath path = AnalyzeFlow(steps);
  EXPECT_DOUBLE_EQ(path.latency, 8.0);
  EXPECT_DOUBLE_EQ(path.blame.sample, 1.0);
  EXPECT_DOUBLE_EQ(path.blame.extract, 1.0);
  EXPECT_DOUBLE_EQ(path.blame.train, 6.0);
  EXPECT_DOUBLE_EQ(path.blame.gap, 0.0);
  EXPECT_STREQ(path.DominantStage(), "train");
  // Invariant: blame sums exactly to latency.
  EXPECT_DOUBLE_EQ(path.blame.Total(), path.latency);
}

TEST(CriticalPathTest, QueueWaitDominates) {
  const FlowId flow = MakeFlowId(0, 1);
  const auto steps = MakeFlow({
      {flow, "s0", "sample", 0.0, 1.0, 0.0},
      {flow, "s0", "copy", 1.0, 1.5, 0.0},
      // The batch sat in the queue for 6s — the invisible time this layer
      // exists to expose.
      {flow, "queue", "queue_wait", 1.5, 7.5, 0.0},
      {flow, "t0", "extract", 7.5, 8.0, 0.0},
      {flow, "t0", "train", 8.0, 9.0, 0.0},
  });
  const FlowCriticalPath path = AnalyzeFlow(steps);
  EXPECT_DOUBLE_EQ(path.latency, 9.0);
  EXPECT_DOUBLE_EQ(path.blame.queue_wait, 6.0);
  EXPECT_STREQ(path.DominantStage(), "queue_wait");
  EXPECT_DOUBLE_EQ(path.blame.Total(), path.latency);
}

TEST(CriticalPathTest, OverlapEarliestClaimWins) {
  // copy [1,3] overlaps queue_wait [2,6] (the threaded engine stamps
  // enqueue_time at copy begin when Push blocks): copy claims [1,3], the
  // queue only gets the uncovered [3,6].
  const FlowId flow = MakeFlowId(0, 2);
  const auto steps = MakeFlow({
      {flow, "s0", "copy", 1.0, 3.0, 0.0},
      {flow, "queue", "queue_wait", 2.0, 6.0, 0.0},
  });
  const FlowCriticalPath path = AnalyzeFlow(steps);
  EXPECT_DOUBLE_EQ(path.blame.copy, 2.0);
  EXPECT_DOUBLE_EQ(path.blame.queue_wait, 3.0);
  EXPECT_DOUBLE_EQ(path.blame.Total(), path.latency);
}

TEST(CriticalPathTest, UncoveredTimeIsGap) {
  const FlowId flow = MakeFlowId(0, 3);
  const auto steps = MakeFlow({
      {flow, "s0", "sample", 0.0, 1.0, 0.0},
      {flow, "t0", "train", 3.0, 4.0, 0.0},  // 2s hole between the stages.
  });
  const FlowCriticalPath path = AnalyzeFlow(steps);
  EXPECT_DOUBLE_EQ(path.blame.gap, 2.0);
  EXPECT_DOUBLE_EQ(path.blame.Total(), path.latency);
}

TEST(CriticalPathTest, ExtractStallSplitsOut) {
  const FlowId flow = MakeFlowId(0, 4);
  const auto steps = MakeFlow({
      {flow, "t0", "extract", 0.0, 4.0, 1.5},  // 1.5s on host transfers.
  });
  const FlowCriticalPath path = AnalyzeFlow(steps);
  EXPECT_DOUBLE_EQ(path.blame.extract, 2.5);
  EXPECT_DOUBLE_EQ(path.blame.extract_stall, 1.5);
  EXPECT_DOUBLE_EQ(path.blame.Total(), path.latency);
}

TEST(CriticalPathTest, TieBreaksTowardEarlierStage) {
  const FlowId flow = MakeFlowId(0, 5);
  const auto steps = MakeFlow({
      {flow, "s0", "sample", 0.0, 1.0, 0.0},
      {flow, "t0", "train", 1.0, 2.0, 0.0},  // Exactly equal blame.
  });
  EXPECT_STREQ(AnalyzeFlow(steps).DominantStage(), "sample");
}

TEST(CriticalPathTest, AggregationSumsFlowsAndFractionsSumToOne) {
  FlowTracer flows;
  const FlowId a = MakeFlowId(0, 0);
  const FlowId b = MakeFlowId(1, 0);  // Different epoch.
  flows.Record(a, "s0", "sample", 0.0, 2.0);
  flows.Record(a, "t0", "train", 2.0, 3.0);
  flows.Record(b, "s0", "sample", 10.0, 11.0);
  flows.Record(b, "t0", "train", 11.0, 15.0);
  const std::vector<FlowStep> steps = flows.Collect();

  const PipelineAttribution all = AnalyzeFlows(steps);
  EXPECT_EQ(all.flows, 2u);
  EXPECT_DOUBLE_EQ(all.total_latency, 8.0);
  EXPECT_DOUBLE_EQ(all.blame.sample, 3.0);
  EXPECT_DOUBLE_EQ(all.blame.train, 5.0);
  EXPECT_STREQ(all.DominantStage(), "train");
  double fraction_sum = 0.0;
  const StageBlame fractions = all.Fractions();
  for (std::size_t i = 0; i < kNumBlameStages; ++i) {
    fraction_sum += fractions.Component(i);
  }
  EXPECT_NEAR(fraction_sum, 1.0, 1e-9);

  // Per-epoch restriction only sees that epoch's flow.
  const PipelineAttribution epoch1 = AnalyzeFlowsForEpoch(steps, 1);
  EXPECT_EQ(epoch1.flows, 1u);
  EXPECT_DOUBLE_EQ(epoch1.total_latency, 5.0);
  EXPECT_STREQ(epoch1.DominantStage(), "train");

  // PipelineAttribution::Add(other) merges run-level aggregates.
  PipelineAttribution merged = AnalyzeFlowsForEpoch(steps, 0);
  merged.Add(epoch1);
  EXPECT_EQ(merged.flows, all.flows);
  EXPECT_DOUBLE_EQ(merged.total_latency, all.total_latency);
}

// ---------------------------------------------------------------------------
// Prometheus exposition

TEST(PrometheusTest, SanitizeMetricName) {
  EXPECT_EQ(SanitizeMetricName("queue.depth"), "queue_depth");
  EXPECT_EQ(SanitizeMetricName("stage.train"), "stage_train");
  EXPECT_EQ(SanitizeMetricName("ok_name:x9"), "ok_name:x9");
  EXPECT_EQ(SanitizeMetricName("weird name-42"), "weird_name_42");
}

TEST(PrometheusTest, ExpositionRendersAllKinds) {
  MetricRegistry registry;
  registry.GetCounter("queue.enqueued")->Increment(42);
  registry.GetGauge("queue.depth")->Set(7.5);
  Histogram* histogram = registry.GetHistogram("stage.train");
  histogram->Record(0.5);
  histogram->Record(1.5);

  const std::string text = RegistryToPrometheusText(registry);
  // Counters: gnnlab_ prefix + conventional _total suffix.
  EXPECT_NE(text.find("# TYPE gnnlab_queue_enqueued_total counter"), std::string::npos);
  EXPECT_NE(text.find("gnnlab_queue_enqueued_total 42"), std::string::npos);
  // Gauges render as-is.
  EXPECT_NE(text.find("# TYPE gnnlab_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("gnnlab_queue_depth 7.5"), std::string::npos);
  // Histograms render as summaries with quantile labels + _sum/_count.
  EXPECT_NE(text.find("# TYPE gnnlab_stage_train summary"), std::string::npos);
  EXPECT_NE(text.find("gnnlab_stage_train{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("gnnlab_stage_train{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("gnnlab_stage_train_count 2"), std::string::npos);
  EXPECT_NE(text.find("gnnlab_stage_train_sum 2"), std::string::npos);

  // Every non-comment line is "name[{labels}] value" with a finite value —
  // the same malformed-line check scripts/verify.sh applies.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.compare(0, 7, "gnnlab_"), 0) << line;
    const std::string value = line.substr(space + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "non-numeric value in: " << line;
  }
}

TEST(PrometheusTest, EscapeLabelValue) {
  EXPECT_EQ(EscapePrometheusLabelValue("plain"), "plain");
  EXPECT_EQ(EscapePrometheusLabelValue("back\\slash"), "back\\\\slash");
  EXPECT_EQ(EscapePrometheusLabelValue("quo\"te"), "quo\\\"te");
  EXPECT_EQ(EscapePrometheusLabelValue("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(EscapePrometheusLabelValue("\\\"\n"), "\\\\\\\"\\n");
  EXPECT_EQ(EscapePrometheusLabelValue(""), "");
}

// Format compliance per the Prometheus text exposition 0.0.4 contract:
// every sample belongs to a family that was announced with matching
// "# HELP" and "# TYPE" lines before it, and the exposition leads with the
// gnnlab_build_info gauge carrying the (escaped) git stamp.
TEST(PrometheusTest, EverySeriesHasHelpAndTypeAndBuildInfoLeads) {
  MetricRegistry registry;
  registry.GetCounter("queue.enqueued")->Increment(1);
  registry.GetGauge("queue.depth")->Set(2.0);
  registry.GetHistogram("stage.train")->Record(0.25);
  registry.GetGauge("alert.backlog")->Set(1.0);

  const std::string text = RegistryToPrometheusText(registry);

  // build_info leads the exposition with git + obs labels.
  EXPECT_EQ(text.find("# HELP gnnlab_build_info"), 0u);
  EXPECT_NE(text.find("# TYPE gnnlab_build_info gauge"), std::string::npos);
  EXPECT_NE(text.find("gnnlab_build_info{git=\""), std::string::npos);
  EXPECT_NE(text.find("obs=\""), std::string::npos);

  std::set<std::string> helped;
  std::set<std::string> typed;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      std::istringstream comment(line);
      std::string hash, keyword, family;
      comment >> hash >> keyword >> family;
      ASSERT_TRUE(keyword == "HELP" || keyword == "TYPE")
          << "unknown comment keyword in: " << line;
      (keyword == "HELP" ? helped : typed).insert(family);
      continue;
    }
    // A sample: family = name up to '{' or ' ', with the summary child
    // suffixes folded back onto their parent family.
    std::string name = line.substr(0, line.find_first_of("{ "));
    for (const char* suffix : {"_sum", "_count"}) {
      const std::size_t len = std::strlen(suffix);
      if (name.size() > len && name.compare(name.size() - len, len, suffix) == 0 &&
          typed.count(name) == 0 && typed.count(name.substr(0, name.size() - len)) > 0) {
        name = name.substr(0, name.size() - len);
      }
    }
    EXPECT_TRUE(helped.count(name) == 1)
        << "series without a preceding # HELP: " << line;
    EXPECT_TRUE(typed.count(name) == 1)
        << "series without a preceding # TYPE: " << line;
  }

  // Each family announces itself exactly once even with many series.
  EXPECT_EQ(text.find("# TYPE gnnlab_stage_train summary"),
            text.rfind("# TYPE gnnlab_stage_train summary"));
}

// ---------------------------------------------------------------------------
// Alert rules

TEST(AlertRuleTest, ParsesFullGrammar) {
  AlertRule rule;
  ASSERT_TRUE(ParseAlertRule("queue_backlog: queue.depth p95 > 57.6", &rule));
  EXPECT_EQ(rule.name, "queue_backlog");
  EXPECT_EQ(rule.metric, "queue.depth");
  EXPECT_EQ(rule.stat, "p95");
  EXPECT_EQ(rule.op, '>');
  EXPECT_DOUBLE_EQ(rule.threshold, 57.6);

  // Name and stat are optional.
  ASSERT_TRUE(ParseAlertRule("queue.depth > 32", &rule));
  EXPECT_FALSE(rule.name.empty());
  EXPECT_EQ(rule.metric, "queue.depth");
  EXPECT_TRUE(rule.stat.empty());

  ASSERT_TRUE(ParseAlertRule("stage.train p99 < 0.25", &rule));
  EXPECT_EQ(rule.op, '<');
  EXPECT_EQ(rule.stat, "p99");
}

TEST(AlertRuleTest, RejectsMalformedRules) {
  AlertRule rule;
  std::string error;
  EXPECT_FALSE(ParseAlertRule("", &rule, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseAlertRule("queue.depth", &rule, &error));      // No comparison.
  EXPECT_FALSE(ParseAlertRule("queue.depth >= 3", &rule, &error)); // Bad operator.
  EXPECT_FALSE(ParseAlertRule("queue.depth > abc", &rule, &error));
  EXPECT_FALSE(ParseAlertRule("queue.depth p42 > 1", &rule, &error));  // Bad stat.
}

TEST(HealthMonitorTest, EvaluatesRulesIntoAlertGauges) {
  MetricRegistry registry;
  registry.GetGauge("queue.depth")->Set(40.0);
  Histogram* train = registry.GetHistogram("stage.train");
  train->Record(0.1);

  HealthMonitor::Options options;
  AlertRule rule;
  ASSERT_TRUE(ParseAlertRule("backlog: queue.depth > 32", &rule));
  options.rules.push_back(rule);
  ASSERT_TRUE(ParseAlertRule("slow_train: stage.train p99 > 10", &rule));
  options.rules.push_back(rule);
  HealthMonitor health(&registry, options);

  const std::vector<AlertState> states = health.Evaluate(/*force=*/true);
  ASSERT_EQ(states.size(), 2u);
  EXPECT_TRUE(states[0].firing);
  EXPECT_DOUBLE_EQ(states[0].value, 40.0);
  EXPECT_FALSE(states[1].firing);

  // Firing state lands back in the registry as alert.* gauges.
  const Gauge* backlog = registry.FindGauge("alert.backlog");
  ASSERT_NE(backlog, nullptr);
  EXPECT_DOUBLE_EQ(backlog->value(), 1.0);
  const Gauge* slow = registry.FindGauge("alert.slow_train");
  ASSERT_NE(slow, nullptr);
  EXPECT_DOUBLE_EQ(slow->value(), 0.0);

  // ...and therefore in the Prometheus exposition.
  const std::string text = health.Exposition();
  EXPECT_NE(text.find("gnnlab_alert_backlog 1"), std::string::npos);
  EXPECT_NE(text.find("gnnlab_alert_slow_train 0"), std::string::npos);

  // AnyFiring filters by the underlying registry metric.
  EXPECT_TRUE(health.AnyFiring());
  EXPECT_TRUE(health.AnyFiring("queue.depth"));
  EXPECT_FALSE(health.AnyFiring("stage.train"));
  EXPECT_EQ(health.FiringSummary(), "backlog");
}

TEST(HealthMonitorTest, RateLimitCachesBetweenEvaluations) {
  MetricRegistry registry;
  registry.GetGauge("queue.depth")->Set(100.0);
  HealthMonitor::Options options;
  AlertRule rule;
  ASSERT_TRUE(ParseAlertRule("backlog: queue.depth > 32", &rule));
  options.rules.push_back(rule);
  options.min_eval_interval_seconds = 3600.0;  // Effectively: evaluate once.
  HealthMonitor health(&registry, options);

  ASSERT_TRUE(health.Evaluate()[0].firing);
  registry.GetGauge("queue.depth")->Set(0.0);
  // Inside the window the cached verdict holds; force re-reads the registry.
  EXPECT_TRUE(health.Evaluate()[0].firing);
  EXPECT_FALSE(health.Evaluate(/*force=*/true)[0].firing);
}

TEST(HealthMonitorTest, WritesExpositionFile) {
  MetricRegistry registry;
  registry.GetCounter("queue.enqueued")->Increment(3);
  HealthMonitor::Options options;
  options.exposition_path = TempPath("health_exposition.prom");
  {
    HealthMonitor health(&registry, options);
    ASSERT_TRUE(health.WriteExposition());
  }  // Destructor also rewrites the final state.
  std::ifstream file(options.exposition_path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  EXPECT_NE(buffer.str().find("gnnlab_queue_enqueued_total 3"), std::string::npos);
  std::remove(options.exposition_path.c_str());

  // Empty path means the plain-file exporter is disabled.
  HealthMonitor disabled(&registry, HealthMonitor::Options{});
  EXPECT_FALSE(disabled.WriteExposition());
}

// Plain POSIX client for the built-in /metrics server.
std::string HttpGet(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)!::write(fd, request.data(), request.size());
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(HealthMonitorTest, HttpServerServesMetrics) {
  MetricRegistry registry;
  registry.GetCounter("queue.enqueued")->Increment(9);
  HealthMonitor health(&registry, HealthMonitor::Options{});
  const int port = health.StartServer(/*port=*/0);  // Ephemeral.
  ASSERT_GT(port, 0);
  EXPECT_EQ(health.port(), port);

  const std::string response = HttpGet(port, "/metrics");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("gnnlab_queue_enqueued_total 9"), std::string::npos);

  // Unknown paths 404 without killing the server.
  EXPECT_NE(HttpGet(port, "/nope").find("404"), std::string::npos);
  EXPECT_NE(HttpGet(port, "/metrics").find("200 OK"), std::string::npos);

  health.StopServer();
  health.StopServer();  // Idempotent.
}

TEST(HealthMonitorTest, HealthzAnswersFromTheAlertState) {
  MetricRegistry registry;
  Gauge* depth = registry.GetGauge("serve.queue.depth");
  AlertRule rule;
  ASSERT_TRUE(ParseAlertRule("backlog: serve.queue.depth > 10", &rule));
  HealthMonitor::Options options;
  options.rules = {rule};
  HealthMonitor health(&registry, options);
  const int port = health.StartServer(/*port=*/0);
  ASSERT_GT(port, 0);

  // Healthy: the gauge sits under the threshold.
  depth->Set(3.0);
  std::string response = HttpGet(port, "/healthz");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("ok"), std::string::npos);

  // The alert fires: /healthz flips to 503 and names the rule. Each probe
  // re-evaluates (forced), so no waiting on the rate limiter.
  depth->Set(50.0);
  response = HttpGet(port, "/healthz");
  EXPECT_NE(response.find("503 Service Unavailable"), std::string::npos);
  EXPECT_NE(response.find("backlog"), std::string::npos);

  // Recovery is observed on the next probe, and /metrics still serves.
  depth->Set(0.0);
  response = HttpGet(port, "/healthz");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(HttpGet(port, "/metrics").find("200 OK"), std::string::npos);

  health.StopServer();
}

}  // namespace
}  // namespace gnnlab
