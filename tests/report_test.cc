// Tests for src/report: table rendering, number formatting, the JSON
// parser, and the run-report JSON schema (latency summaries + snapshots).
#include <gtest/gtest.h>

#include <string>

#include "report/json.h"
#include "report/json_parse.h"
#include "report/table.h"

namespace gnnlab {
namespace {

TEST(TablePrinterTest, RendersHeadersAndRows) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  const std::string s = table.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(TablePrinterTest, ColumnsAlign) {
  TablePrinter table({"x", "y"});
  table.AddRow({"longlabel", "1"});
  table.AddRow({"s", "100"});
  const std::string s = table.ToString();
  // Every line has the same length.
  std::size_t line_len = 0;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t end = s.find('\n', pos);
    if (line_len == 0) {
      line_len = end - pos;
    } else {
      EXPECT_EQ(end - pos, line_len);
    }
    pos = end + 1;
  }
}

TEST(TablePrinterTest, SeparatorInserted) {
  TablePrinter table({"a"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  const std::string s = table.ToString();
  // Rules: top, under header, separator, bottom = 4 total.
  std::size_t rules = 0;
  std::size_t pos = 0;
  while ((pos = s.find("+--", pos)) != std::string::npos) {
    ++rules;
    pos = s.find('\n', pos);
  }
  EXPECT_EQ(rules, 4u);
}

TEST(TablePrinterDeathTest, WrongArityAborts) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "Check failed");
}

TEST(FmtTest, Precision) {
  EXPECT_EQ(Fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Fmt(1.0, 0), "1");
  EXPECT_EQ(Fmt(0.5, 3), "0.500");
}

TEST(FmtPercentTest, ConvertsFraction) {
  EXPECT_EQ(FmtPercent(0.21), "21%");
  EXPECT_EQ(FmtPercent(0.995, 1), "99.5%");
  EXPECT_EQ(FmtPercent(1.0), "100%");
}

TEST(PrintSeriesDeathTest, MismatchedSeriesAborts) {
  EXPECT_DEATH(PrintSeries("t", "x", {"a"}, {1.0, 2.0}, {{1.0}}), "Check failed");
}

// --- JSON parser -------------------------------------------------------------

TEST(JsonParseTest, ParsesScalarsAndStructure) {
  JsonValue root;
  ASSERT_TRUE(ParseJson(R"({"a":1.5,"b":[true,false,null],"c":"x\ny","d":{"e":-2e3}})",
                        &root));
  ASSERT_TRUE(root.IsObject());
  EXPECT_DOUBLE_EQ(root.Find("a")->number, 1.5);
  const JsonValue* b = root.Find("b");
  ASSERT_TRUE(b->IsArray());
  ASSERT_EQ(b->array.size(), 3u);
  EXPECT_TRUE(b->array[0].boolean);
  EXPECT_FALSE(b->array[1].boolean);
  EXPECT_TRUE(b->array[2].IsNull());
  EXPECT_EQ(root.Find("c")->string, "x\ny");
  EXPECT_DOUBLE_EQ(root.Find("d")->Find("e")->number, -2000.0);
  EXPECT_EQ(root.Find("missing"), nullptr);
}

TEST(JsonParseTest, ParsesEscapesAndUnicode) {
  JsonValue root;
  ASSERT_TRUE(ParseJson(R"(["\"\\\/\b\f\n\r\t","A"])", &root));
  ASSERT_TRUE(root.IsArray());
  EXPECT_EQ(root.array[0].string, "\"\\/\b\f\n\r\t");
  EXPECT_EQ(root.array[1].string, "A");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  JsonValue root;
  std::string error;
  EXPECT_FALSE(ParseJson("{", &root, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseJson("[1,]", &root));
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing", &root));
  EXPECT_FALSE(ParseJson("1.2.3", &root));
  EXPECT_FALSE(ParseJson("", &root));
}

// --- Run-report JSON schema --------------------------------------------------

TEST(RunReportJsonTest, CarriesLatencySummariesAndSnapshots) {
  RunReport report;
  report.num_samplers = 2;
  report.num_trainers = 6;
  EpochReport epoch;
  epoch.epoch_time = 1.25;
  epoch.batches = 10;
  epoch.latency.sample.count = 10;
  epoch.latency.sample.p50 = 0.010;
  epoch.latency.sample.p95 = 0.020;
  epoch.latency.sample.p99 = 0.025;
  epoch.latency.train.count = 10;
  epoch.latency.train.p99 = 0.125;
  report.epochs.push_back(epoch);
  TelemetrySample sample;
  sample.ts = 0.5;
  sample.queue_depth = 3;
  sample.cache_hits = 77;
  report.snapshots.push_back(sample);

  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(RunReportToJson(report), &root, &error)) << error;

  const JsonValue* epochs = root.Find("epochs");
  ASSERT_NE(epochs, nullptr);
  ASSERT_EQ(epochs->array.size(), 1u);
  const JsonValue* latency = epochs->array[0].Find("latency");
  ASSERT_NE(latency, nullptr);
  for (const char* stage : {"sample", "mark", "copy", "extract", "train"}) {
    const JsonValue* summary = latency->Find(stage);
    ASSERT_NE(summary, nullptr) << stage;
    for (const char* field : {"count", "mean", "p50", "p95", "p99", "max"}) {
      EXPECT_NE(summary->Find(field), nullptr) << stage << "." << field;
    }
  }
  EXPECT_DOUBLE_EQ(latency->Find("sample")->Find("p95")->number, 0.020);
  EXPECT_DOUBLE_EQ(latency->Find("train")->Find("p99")->number, 0.125);

  const JsonValue* snapshots = root.Find("snapshots");
  ASSERT_NE(snapshots, nullptr);
  ASSERT_EQ(snapshots->array.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshots->array[0].Find("ts")->number, 0.5);
  EXPECT_DOUBLE_EQ(snapshots->array[0].Find("queue_depth")->number, 3.0);
  EXPECT_DOUBLE_EQ(snapshots->array[0].Find("cache_hits")->number, 77.0);
}

TEST(ThreadedRunReportJsonTest, SchemaParsesWithLatencyAndSnapshots) {
  ThreadedRunReport report;
  report.cache_ratio = 0.25;
  ThreadedEpochReport epoch;
  epoch.wall_seconds = 2.0;
  epoch.batches = 8;
  epoch.latency.extract.count = 8;
  epoch.latency.extract.p50 = 0.004;
  report.epochs.push_back(epoch);
  report.snapshots.push_back(TelemetrySample{});

  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(ThreadedRunReportToJson(report), &root, &error)) << error;
  EXPECT_DOUBLE_EQ(root.Find("cache_ratio")->number, 0.25);
  const JsonValue* epoch_json = &root.Find("epochs")->array[0];
  EXPECT_DOUBLE_EQ(epoch_json->Find("wall_seconds")->number, 2.0);
  EXPECT_DOUBLE_EQ(epoch_json->Find("latency")->Find("extract")->Find("p50")->number,
                   0.004);
  EXPECT_EQ(root.Find("snapshots")->array.size(), 1u);
}

TEST(RunReportJsonTest, AttributionRoundTripsWithFractionsSummingToOne) {
  // Build an attribution from real flow DAGs so the blame numbers carry the
  // fold's invariants into the JSON and back.
  FlowTracer flows;
  const FlowId a = MakeFlowId(0, 0);
  flows.Record(a, "s0", "sample", 0.0, 1.0);
  flows.Record(a, "s0", "copy", 1.0, 1.25);
  flows.Record(a, "queue", "queue_wait", 1.25, 4.0);
  flows.Record(a, "t0", "extract", 4.0, 5.0, 0.4);
  flows.Record(a, "t0", "train", 5.5, 7.0);  // 0.5s gap before train.
  const FlowId b = MakeFlowId(0, 1);
  flows.Record(b, "s0", "sample", 2.0, 3.0);
  flows.Record(b, "t0", "train", 3.0, 9.0);

  RunReport report;
  EpochReport epoch;
  epoch.attribution = AnalyzeFlowsForEpoch(flows.Collect(), 0);
  report.epochs.push_back(epoch);
  report.attribution = epoch.attribution;
  SwitchDecision decision;
  decision.ts = 1.5;
  decision.queue_depth = 3;
  decision.profit = -0.25;
  decision.fetched = true;
  decision.pressure_override = true;
  decision.alerts = "backlog";
  report.switch_decisions.push_back(decision);

  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(RunReportToJson(report), &root, &error)) << error;

  // Round-trip: the parsed fractions must sum to 1 within 1e-6, both at the
  // epoch and the run level, and blame must sum to total_latency.
  for (const JsonValue* attribution :
       {root.Find("attribution"), root.Find("epochs")->array[0].Find("attribution")}) {
    ASSERT_NE(attribution, nullptr);
    EXPECT_DOUBLE_EQ(attribution->Find("flows")->number, 2.0);
    const double total = attribution->Find("total_latency")->number;
    EXPECT_DOUBLE_EQ(total, 14.0);  // 7s flow a + 7s flow b.
    double fraction_sum = 0.0;
    double blame_sum = 0.0;
    for (std::size_t i = 0; i < kNumBlameStages; ++i) {
      const JsonValue* fraction =
          attribution->Find("fractions")->Find(kBlameStageNames[i]);
      ASSERT_NE(fraction, nullptr) << kBlameStageNames[i];
      fraction_sum += fraction->number;
      blame_sum += attribution->Find("blame")->Find(kBlameStageNames[i])->number;
    }
    EXPECT_NEAR(fraction_sum, 1.0, 1e-6);
    EXPECT_NEAR(blame_sum, total, 1e-6);
    EXPECT_EQ(attribution->Find("dominant")->string, "train");
  }
  // Spot-check one component survived serialization: the queue wait.
  EXPECT_DOUBLE_EQ(
      root.Find("attribution")->Find("blame")->Find("queue_wait")->number, 2.75);
  EXPECT_DOUBLE_EQ(
      root.Find("attribution")->Find("blame")->Find("extract_stall")->number, 0.4);

  // The decision log serializes field-for-field.
  const JsonValue* decisions = root.Find("switch_decisions");
  ASSERT_NE(decisions, nullptr);
  ASSERT_EQ(decisions->array.size(), 1u);
  const JsonValue& d = decisions->array[0];
  EXPECT_DOUBLE_EQ(d.Find("ts")->number, 1.5);
  EXPECT_DOUBLE_EQ(d.Find("queue_depth")->number, 3.0);
  EXPECT_DOUBLE_EQ(d.Find("profit")->number, -0.25);
  EXPECT_TRUE(d.Find("fetched")->boolean);
  EXPECT_TRUE(d.Find("pressure_override")->boolean);
  EXPECT_EQ(d.Find("alerts")->string, "backlog");
}

TEST(ThreadedRunReportJsonTest, CarriesAttributionAndDecisions) {
  ThreadedRunReport report;
  FlowCriticalPath path;
  path.flow = MakeFlowId(0, 0);
  path.latency = 2.0;
  path.blame.extract = 0.5;
  path.blame.train = 1.5;
  report.attribution.Add(path);
  report.switch_decisions.push_back(SwitchDecision{});

  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(ThreadedRunReportToJson(report), &root, &error)) << error;
  const JsonValue* attribution = root.Find("attribution");
  ASSERT_NE(attribution, nullptr);
  EXPECT_DOUBLE_EQ(attribution->Find("flows")->number, 1.0);
  EXPECT_DOUBLE_EQ(attribution->Find("fractions")->Find("train")->number, 0.75);
  EXPECT_EQ(attribution->Find("dominant")->string, "train");
  EXPECT_EQ(root.Find("switch_decisions")->array.size(), 1u);
}

}  // namespace
}  // namespace gnnlab
