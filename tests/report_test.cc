// Tests for src/report: table rendering and number formatting.
#include <gtest/gtest.h>

#include "report/table.h"

namespace gnnlab {
namespace {

TEST(TablePrinterTest, RendersHeadersAndRows) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  const std::string s = table.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(TablePrinterTest, ColumnsAlign) {
  TablePrinter table({"x", "y"});
  table.AddRow({"longlabel", "1"});
  table.AddRow({"s", "100"});
  const std::string s = table.ToString();
  // Every line has the same length.
  std::size_t line_len = 0;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t end = s.find('\n', pos);
    if (line_len == 0) {
      line_len = end - pos;
    } else {
      EXPECT_EQ(end - pos, line_len);
    }
    pos = end + 1;
  }
}

TEST(TablePrinterTest, SeparatorInserted) {
  TablePrinter table({"a"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  const std::string s = table.ToString();
  // Rules: top, under header, separator, bottom = 4 total.
  std::size_t rules = 0;
  std::size_t pos = 0;
  while ((pos = s.find("+--", pos)) != std::string::npos) {
    ++rules;
    pos = s.find('\n', pos);
  }
  EXPECT_EQ(rules, 4u);
}

TEST(TablePrinterDeathTest, WrongArityAborts) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "Check failed");
}

TEST(FmtTest, Precision) {
  EXPECT_EQ(Fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Fmt(1.0, 0), "1");
  EXPECT_EQ(Fmt(0.5, 3), "0.500");
}

TEST(FmtPercentTest, ConvertsFraction) {
  EXPECT_EQ(FmtPercent(0.21), "21%");
  EXPECT_EQ(FmtPercent(0.995, 1), "99.5%");
  EXPECT_EQ(FmtPercent(1.0), "100%");
}

TEST(PrintSeriesDeathTest, MismatchedSeriesAborts) {
  EXPECT_DEATH(PrintSeries("t", "x", {"a"}, {1.0, 2.0}, {{1.0}}), "Check failed");
}

}  // namespace
}  // namespace gnnlab
