// The serving layer's contract: the deadline-aware batch former never
// over-fills, never dispatches empty, and never holds an admitted request
// past its SLO slack (property-tested on a virtual clock); the admission
// queue bounds depth and sheds overload with typed rejects; the load
// generator is bit-deterministic in its seed; and the InferenceServer
// end-to-end honors the factored design — requests ride the same
// Sample/Extract/Forward stage bodies training uses, standby workers are
// reclaimed through the training switch gate, and the shared FeatureCache's
// lookup counters stay exact while training and serving mark concurrently.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <future>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "cache/feature_cache.h"
#include "cache/tiered_store.h"
#include "core/workload.h"
#include "feature/extractor.h"
#include "feature/feature_store.h"
#include "graph/dataset.h"
#include "nn/model.h"
#include "obs/flow.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "pipeline/stages.h"
#include "pipeline/switch_gate.h"
#include "report/json.h"
#include "serve/admission.h"
#include "serve/batch_former.h"
#include "serve/load_generator.h"
#include "serve/server.h"

namespace gnnlab {
namespace {

constexpr std::uint32_t kClasses = 8;
constexpr std::uint32_t kFeatureDim = 16;

struct ServeFixture {
  Dataset dataset = MakeDataset(DatasetId::kProducts, 0.1, 42);
  Workload workload = StandardWorkload(GnnModelKind::kGraphSage);
  std::vector<std::uint32_t> labels;
  FeatureStore features;
  TieredFeatureStore store;
  ModelConfig config;
  std::unique_ptr<GnnModel> model;

  ServeFixture() {
    workload.fanouts = {4, 4};  // Light neighborhoods: tests, not benchmarks.
    const VertexId nv = dataset.graph.num_vertices();
    Rng rng(3);
    labels = MakeCommunityLabels(nv, 128, kClasses);
    features = FeatureStore::Clustered(nv, kFeatureDim, labels, kClasses, 0.3, &rng);
    std::vector<VertexId> ranked(nv);
    std::iota(ranked.begin(), ranked.end(), VertexId{0});
    store = TieredFeatureStore::FromCache(
        FeatureCache::Load(ranked, 0.5, nv, kFeatureDim));
    config.kind = GnnModelKind::kGraphSage;
    config.num_layers = 2;
    config.in_dim = kFeatureDim;
    config.hidden_dim = 16;
    config.num_classes = kClasses;
    Rng model_rng(11);
    model = std::make_unique<GnnModel>(config, &model_rng);
  }
};

ServeFixture& Fixture() {
  static ServeFixture* fixture = new ServeFixture();
  return *fixture;
}

InferRequest MakeRequest(RequestId id, double arrival, double slo) {
  InferRequest request;
  request.id = id;
  request.vertex = static_cast<VertexId>(id % 97);
  request.arrival = arrival;
  request.slo_seconds = slo;
  request.admit_time = arrival;  // Virtual-clock tests admit on arrival.
  return request;
}

// --- Batch former -----------------------------------------------------------

TEST(BatchFormerTest, EmptyNeverDispatchesAndFullDispatchesImmediately) {
  BatchFormerOptions options;
  options.max_batch = 3;
  options.service_estimate_seconds = 0.001;
  options.max_linger_seconds = 10.0;
  BatchFormer former(options);

  EXPECT_FALSE(former.ShouldDispatch(1e9));
  EXPECT_TRUE(std::isinf(former.DispatchBy()));
  EXPECT_GT(former.DispatchBy(), 0.0);  // +inf when empty.

  former.Add(MakeRequest(1, 0.0, 10.0));
  former.Add(MakeRequest(2, 0.0, 10.0));
  EXPECT_FALSE(former.Full());
  EXPECT_FALSE(former.ShouldDispatch(0.0));  // Plenty of slack, not full.
  former.Add(MakeRequest(3, 0.0, 10.0));
  EXPECT_TRUE(former.Full());
  EXPECT_TRUE(former.ShouldDispatch(0.0));
  EXPECT_LT(former.DispatchBy(), 0.0);  // -inf when already dispatchable.

  const std::vector<InferRequest> batch = former.TakeBatch();
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].id, 1u);  // Oldest first.
  EXPECT_TRUE(former.empty());
}

TEST(BatchFormerTest, SlackExpiryDispatchesAPartialBatch) {
  BatchFormerOptions options;
  options.max_batch = 16;
  options.service_estimate_seconds = 0.002;
  options.slack_threshold_seconds = 0.001;
  options.max_linger_seconds = 10.0;  // Slack, not linger, owns dispatch here.
  BatchFormer former(options);

  // Deadline 0.050; dispatch-by = 0.050 - 0.002 - 0.001 = 0.047.
  former.Add(MakeRequest(1, 0.0, 0.05));
  EXPECT_NEAR(former.DispatchBy(), 0.047, 1e-12);
  EXPECT_FALSE(former.ShouldDispatch(0.046));
  EXPECT_TRUE(former.ShouldDispatch(0.047));

  // A later but tighter request pulls the dispatch point earlier: the
  // former tracks the minimum slack across pending, not just the oldest.
  former.Add(MakeRequest(2, 0.01, 0.02));  // Dispatch-by 0.027.
  EXPECT_NEAR(former.DispatchBy(), 0.027, 1e-12);
  EXPECT_TRUE(former.ShouldDispatch(0.027));
  EXPECT_EQ(former.TakeBatch().size(), 2u);
}

TEST(BatchFormerTest, ServiceEstimateUpdateMovesTheDeadline) {
  BatchFormerOptions options;
  options.max_batch = 8;
  options.service_estimate_seconds = 0.001;
  options.max_linger_seconds = 10.0;
  BatchFormer former(options);
  former.Add(MakeRequest(1, 0.0, 0.05));
  EXPECT_NEAR(former.DispatchBy(), 0.049, 1e-12);
  former.set_service_estimate(0.010);
  EXPECT_NEAR(former.DispatchBy(), 0.040, 1e-12);
}

TEST(BatchFormerTest, LingerCapBoundsLightLoadWaits) {
  BatchFormerOptions options;
  options.max_batch = 16;
  options.service_estimate_seconds = 0.001;
  options.max_linger_seconds = 0.002;
  BatchFormer former(options);
  // Huge SLO slack, but the linger cap dispatches 2ms after admission.
  former.Add(MakeRequest(1, 0.0, 10.0));
  EXPECT_NEAR(former.DispatchBy(), 0.002, 1e-12);
  EXPECT_FALSE(former.ShouldDispatch(0.0015));
  EXPECT_TRUE(former.ShouldDispatch(0.002));
  // The linger anchor is the OLDEST request: a later add does not extend it.
  former.Add(MakeRequest(2, 0.0015, 10.0));
  EXPECT_NEAR(former.DispatchBy(), 0.002, 1e-12);
}

// One virtual-clock simulation of the former against a random arrival
// schedule; returns the dispatch log for determinism comparison while
// asserting the three safety invariants inline.
struct DispatchEvent {
  double time = 0.0;
  std::vector<RequestId> ids;

  bool operator==(const DispatchEvent& other) const {
    return time == other.time && ids == other.ids;
  }
};

std::vector<DispatchEvent> SimulateFormer(std::uint64_t seed) {
  Rng rng(seed);
  BatchFormerOptions options;
  options.max_batch = 1 + rng.NextBounded(7);
  options.service_estimate_seconds = 0.002;
  options.slack_threshold_seconds = 0.0;
  options.max_linger_seconds = 0.001 + rng.NextDouble() * 0.02;
  BatchFormer former(options);

  const std::size_t num_requests = 300;
  std::vector<InferRequest> arrivals;
  double clock = 0.0;
  for (std::size_t i = 0; i < num_requests; ++i) {
    clock += rng.NextDouble() * 0.004;
    // SLO always above the service estimate so slack is positive at add
    // time — a request admitted with negative slack dispatches instantly,
    // which is a different (trivially safe) regime.
    arrivals.push_back(MakeRequest(i + 1, clock, 0.005 + rng.NextDouble() * 0.03));
  }

  std::vector<DispatchEvent> log;
  std::size_t dispatched = 0;
  const auto dispatch_at = [&](double now) {
    EXPECT_TRUE(former.ShouldDispatch(now));
    DispatchEvent event;
    event.time = now;
    std::vector<InferRequest> batch = former.TakeBatch();
    EXPECT_FALSE(batch.empty());  // Never dispatches empty.
    EXPECT_LE(batch.size(), options.max_batch);  // Never over-fills.
    for (const InferRequest& request : batch) {
      // No admitted request waits past its SLO slack: the dispatch happens
      // at or before deadline - estimate - threshold.
      EXPECT_LE(now, request.Deadline() - options.service_estimate_seconds -
                         options.slack_threshold_seconds + 1e-9)
          << "request " << request.id << " held past its slack";
      event.ids.push_back(request.id);
    }
    // The linger cap holds too: the oldest member never sat past it.
    EXPECT_LE(now, batch.front().admit_time + options.max_linger_seconds + 1e-9);
    dispatched += batch.size();
    log.push_back(std::move(event));
  };

  for (const InferRequest& request : arrivals) {
    // Let every deadline that expires before this arrival fire first.
    while (!former.empty() && former.DispatchBy() <= request.arrival) {
      dispatch_at(std::max(former.DispatchBy(), 0.0));
    }
    if (former.Full()) {
      dispatch_at(request.arrival);
    }
    former.Add(request);
    if (former.ShouldDispatch(request.arrival)) {
      dispatch_at(request.arrival);
    }
  }
  while (!former.empty()) {
    dispatch_at(std::max(former.DispatchBy(), clock));
  }
  EXPECT_EQ(dispatched, num_requests);  // Nothing lost, nothing duplicated.
  return log;
}

TEST(BatchFormerPropertyTest, RandomizedArrivalsNeverStarveOrOverfill) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    SimulateFormer(seed);
  }
}

TEST(BatchFormerPropertyTest, FixedSeedReplaysTheExactDispatchSequence) {
  const std::vector<DispatchEvent> a = SimulateFormer(99);
  const std::vector<DispatchEvent> b = SimulateFormer(99);
  EXPECT_EQ(a, b);
  const std::vector<DispatchEvent> c = SimulateFormer(100);
  EXPECT_NE(a, c);  // A different seed is a different workload.
}

// --- Admission queue --------------------------------------------------------

TEST(AdmissionTest, CapacityBoundsTheQueue) {
  AdmissionOptions options;
  options.capacity = 4;
  AdmissionQueue queue(options);
  for (std::uint64_t i = 0; i < 4; ++i) {
    const auto verdict = queue.Admit(MakeRequest(i + 1, 0.0, 10.0), 0.0, 0.0, 0.0);
    EXPECT_TRUE(verdict.admitted);
  }
  const auto rejected = queue.Admit(MakeRequest(5, 0.0, 10.0), 0.0, 0.0, 0.0);
  EXPECT_FALSE(rejected.admitted);
  EXPECT_EQ(rejected.outcome, RequestOutcome::kShedQueueFull);
  EXPECT_EQ(queue.depth(), 4u);
  EXPECT_EQ(queue.offered(), 5u);
  EXPECT_EQ(queue.admitted(), 4u);
  EXPECT_EQ(queue.shed_queue_full(), 1u);
  EXPECT_EQ(queue.shed_overload(), 0u);
}

TEST(AdmissionTest, OverloadShedsWhenProjectedWaitBlowsTheSlo) {
  AdmissionQueue queue(AdmissionOptions{});
  // Projection: now + depth * drain + batch_service = 0 + 0 + 0.02, past
  // the 0.01 deadline.
  const auto shed = queue.Admit(MakeRequest(1, 0.0, 0.01), 0.0, 0.005, 0.02);
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(shed.outcome, RequestOutcome::kShedOverload);
  EXPECT_GT(shed.projected_wait, 0.01);
  EXPECT_EQ(queue.shed_overload(), 1u);

  // The same projection under the SLO admits.
  const auto admitted = queue.Admit(MakeRequest(2, 0.0, 0.05), 0.0, 0.005, 0.02);
  EXPECT_TRUE(admitted.admitted);

  // Depth feeds the projection: with one queued request the drain term now
  // contributes.
  const auto deeper = queue.Admit(MakeRequest(3, 0.0, 0.024), 0.0, 0.005, 0.02);
  EXPECT_FALSE(deeper.admitted);  // 0 + 1*0.005 + 0.02 = 0.025 > 0.024.
  EXPECT_EQ(deeper.outcome, RequestOutcome::kShedOverload);
}

TEST(AdmissionTest, SheddingDisabledOnlyRejectsOnCapacity) {
  AdmissionOptions options;
  options.capacity = 2;
  options.shedding = false;
  AdmissionQueue queue(options);
  // Hopeless projection, but the unshed baseline admits anyway.
  EXPECT_TRUE(queue.Admit(MakeRequest(1, 0.0, 0.001), 0.0, 1.0, 1.0).admitted);
  EXPECT_TRUE(queue.Admit(MakeRequest(2, 0.0, 0.001), 0.0, 1.0, 1.0).admitted);
  const auto full = queue.Admit(MakeRequest(3, 0.0, 0.001), 0.0, 1.0, 1.0);
  EXPECT_FALSE(full.admitted);
  EXPECT_EQ(full.outcome, RequestOutcome::kShedQueueFull);
  EXPECT_EQ(queue.shed_overload(), 0u);
}

TEST(AdmissionTest, PopIsFifoAndAdmissionStampsAdmitTime) {
  AdmissionQueue queue(AdmissionOptions{});
  EXPECT_TRUE(queue.Admit(MakeRequest(7, 0.0, 10.0), 1.5, 0.0, 0.0).admitted);
  EXPECT_TRUE(queue.Admit(MakeRequest(8, 0.0, 10.0), 2.5, 0.0, 0.0).admitted);
  InferRequest out;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.id, 7u);
  EXPECT_DOUBLE_EQ(out.admit_time, 1.5);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.id, 8u);
  EXPECT_DOUBLE_EQ(out.admit_time, 2.5);
  EXPECT_FALSE(queue.Pop(&out));
  EXPECT_EQ(queue.depth(), 0u);
}

#if GNNLAB_OBS_ENABLED
TEST(AdmissionTest, BoundMetricsMirrorTheCounters) {
  MetricRegistry registry;
  AdmissionOptions options;
  options.capacity = 1;
  AdmissionQueue queue(options);
  queue.BindMetrics(&registry);
  EXPECT_TRUE(queue.Admit(MakeRequest(1, 0.0, 10.0), 0.0, 0.0, 0.0).admitted);
  EXPECT_FALSE(queue.Admit(MakeRequest(2, 0.0, 10.0), 0.0, 0.0, 0.0).admitted);
  const Counter* offered = registry.FindCounter(kMetricServeOffered);
  const Counter* shed = registry.FindCounter(kMetricServeShedFull);
  const Gauge* depth = registry.FindGauge(kMetricServeQueueDepth);
  ASSERT_NE(offered, nullptr);
  ASSERT_NE(shed, nullptr);
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(offered->value(), 2u);
  EXPECT_EQ(shed->value(), 1u);
  EXPECT_DOUBLE_EQ(depth->value(), 1.0);
}
#endif  // GNNLAB_OBS_ENABLED

// --- Load generator ---------------------------------------------------------

TEST(LoadGenTest, OpenLoopScheduleIsDeterministicInTheSeed) {
  LoadGenOptions options;
  options.mode = LoadMode::kOpen;
  options.rate_rps = 1000.0;
  options.num_requests = 64;
  options.seed = 5;
  const std::vector<Arrival> a = BuildArrivalSchedule(options, 1000);
  const std::vector<Arrival> b = BuildArrivalSchedule(options, 1000);
  ASSERT_EQ(a.size(), 64u);
  ASSERT_EQ(b.size(), 64u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].offset, b[i].offset);
    EXPECT_EQ(a[i].vertex, b[i].vertex);
    EXPECT_LT(a[i].vertex, 1000u);
    if (i > 0) {
      EXPECT_GT(a[i].offset, a[i - 1].offset);  // Strictly later arrivals.
    }
  }
  options.seed = 6;
  const std::vector<Arrival> other = BuildArrivalSchedule(options, 1000);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    differs = differs || a[i].offset != other[i].offset || a[i].vertex != other[i].vertex;
  }
  EXPECT_TRUE(differs);
}

TEST(LoadGenTest, OpenLoopMeanGapTracksTheRate) {
  LoadGenOptions options;
  options.mode = LoadMode::kOpen;
  options.rate_rps = 2000.0;
  options.num_requests = 2000;
  const std::vector<Arrival> schedule = BuildArrivalSchedule(options, 100);
  // 2000 exponential gaps at 2000 rps span ~1s; allow generous slack.
  EXPECT_GT(schedule.back().offset, 0.5);
  EXPECT_LT(schedule.back().offset, 2.0);
}

TEST(LoadGenTest, ClosedLoopScheduleCoversEveryClientRequest) {
  LoadGenOptions options;
  options.mode = LoadMode::kClosed;
  options.num_clients = 3;
  options.requests_per_client = 10;
  const std::vector<Arrival> schedule = BuildArrivalSchedule(options, 50);
  ASSERT_EQ(schedule.size(), 30u);
  for (const Arrival& arrival : schedule) {
    EXPECT_DOUBLE_EQ(arrival.offset, 0.0);  // Clients pace themselves.
    EXPECT_LT(arrival.vertex, 50u);
  }
}

// --- Switch gate: serving pressure metric -----------------------------------

#if GNNLAB_OBS_ENABLED  // The override rides alert rules, compiled out otherwise.
TEST(ServeSwitchGateTest, ServeQueuePressureOverridesANegativeProfit) {
  MetricRegistry registry;
  registry.GetGauge(kMetricServeQueueDepth)->Set(50.0);
  AlertRule rule;
  ASSERT_TRUE(ParseAlertRule("serve_pressure: serve.queue.depth > 5", &rule));
  HealthMonitor::Options monitor_options;
  monitor_options.rules = {rule};
  HealthMonitor monitor(&registry, monitor_options);

  const StandbyFetchEval serving = EvaluateStandbyFetch(
      /*now=*/1.0, /*queue_depth=*/50, /*profit_says_fetch=*/false,
      /*profit_value=*/-1.0, &monitor, /*force_health_eval=*/true,
      kMetricServeQueueDepth);
  EXPECT_TRUE(serving.fetch);
  EXPECT_TRUE(serving.decision.pressure_override);

  // The training gate (default pressure metric: the training queue) does
  // NOT see the serving alert — the two roles' overrides stay separate.
  const StandbyFetchEval training = EvaluateStandbyFetch(
      /*now=*/1.0, /*queue_depth=*/50, /*profit_says_fetch=*/false,
      /*profit_value=*/-1.0, &monitor, /*force_health_eval=*/true);
  EXPECT_FALSE(training.fetch);
  EXPECT_FALSE(training.decision.pressure_override);
}
#endif  // GNNLAB_OBS_ENABLED

// --- Inference stage --------------------------------------------------------

TEST(ServeInferenceStageTest, PredictsEverySeedDeterministically) {
  ServeFixture& fixture = Fixture();
  std::unique_ptr<Sampler> sampler =
      MakeSampler(fixture.workload, fixture.dataset, nullptr);
  std::vector<VertexId> seeds = {1, 5, 9, 13, 21, 34};
  Rng rng(17);
  SampleSpec spec;
  spec.cache = &fixture.store.gpu();
  const SampleOutcome sample = RunSampleStage(sampler.get(), seeds, &rng, spec);
  ASSERT_EQ(sample.block.num_seeds(), seeds.size());

  Extractor extractor(fixture.features);
  const InferenceOutcome a =
      RunInferenceStage(fixture.model.get(), fixture.features, &extractor, sample.block);
  ASSERT_EQ(a.predictions.size(), seeds.size());
  for (const std::uint32_t prediction : a.predictions) {
    EXPECT_LT(prediction, kClasses);
  }
  EXPECT_EQ(a.gather.distinct_vertices, sample.block.vertices().size());
  EXPECT_GT(a.gather.cache_hits, 0u);  // Half the universe is cached.
  EXPECT_GE(a.infer_end, a.infer_begin);
  EXPECT_GE(a.extract_end, a.extract_begin);

  // The forward pass is pure in (weights, block): same inputs, same answer.
  const InferenceOutcome b =
      RunInferenceStage(fixture.model.get(), fixture.features, &extractor, sample.block);
  EXPECT_EQ(a.predictions, b.predictions);
}

// --- Server end-to-end ------------------------------------------------------

TEST(ServeServerTest, ClosedLoopLightLoadServesEveryRequest) {
  ServeFixture& fixture = Fixture();
  MetricRegistry registry;
  FlowTracer flows;
  ServeOptions options;
  options.max_batch = 8;
  options.workers = 2;
  options.metrics = &registry;
  options.flows = &flows;
  InferenceServer server(fixture.dataset, fixture.workload, fixture.features,
                         &fixture.store, fixture.model.get(), options);
  server.Start();

  LoadGenOptions load;
  load.mode = LoadMode::kClosed;
  load.num_clients = 4;
  load.requests_per_client = 25;
  load.slo_seconds = 5.0;  // Generous: nothing sheds, nothing violates.
  const LoadReport client = RunLoad(&server, load);
  server.Stop();
  const ServeReport report = server.Report();

  EXPECT_EQ(client.offered, 100u);
  EXPECT_EQ(client.served, 100u);
  EXPECT_EQ(client.shed, 0u);
  for (const InferResult& result : client.results) {
    EXPECT_EQ(result.outcome, RequestOutcome::kServed);
    EXPECT_LT(result.predicted_class, kClasses);
    EXPECT_GT(result.e2e_seconds, 0.0);
    EXPECT_GE(result.e2e_seconds, result.batch_seconds);
  }

  // Server-side truth agrees with the client's view.
  EXPECT_EQ(report.offered, 100u);
  EXPECT_EQ(report.admitted, 100u);
  EXPECT_EQ(report.served, 100u);
  EXPECT_EQ(report.shed_queue_full + report.shed_overload, 0u);
  EXPECT_EQ(report.e2e_latency.count, 100u);
  EXPECT_EQ(report.queue_latency.count, 100u);
  EXPECT_GT(report.batches, 0u);
  EXPECT_GT(report.duration_seconds, 0.0);
  EXPECT_GT(report.throughput_rps, 0.0);
  EXPECT_GT(report.cache_hits + report.host_misses, 0u);
  EXPECT_GT(report.bytes_from_cache + report.bytes_from_host, 0u);

#if GNNLAB_OBS_ENABLED
  // Registry mirrors and per-request flows landed.
  const Counter* served = registry.FindCounter(kMetricServeServed);
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(served->value(), 100u);
  const Gauge* depth = registry.FindGauge(kMetricServeQueueDepth);
  ASSERT_NE(depth, nullptr);
  EXPECT_DOUBLE_EQ(depth->value(), 0.0);  // Fully drained.
  EXPECT_GT(flows.size(), 0u);
#endif  // GNNLAB_OBS_ENABLED
}

TEST(ServeServerTest, SubmitAfterStopShedsImmediately) {
  ServeFixture& fixture = Fixture();
  ServeOptions options;
  InferenceServer server(fixture.dataset, fixture.workload, fixture.features,
                         &fixture.store, fixture.model.get(), options);
  server.Start();
  server.Stop();
  std::future<InferResult> future = server.Submit(1, 1.0);
  const InferResult result = future.get();
  EXPECT_NE(result.outcome, RequestOutcome::kServed);
}

TEST(ServeServerTest, OverloadShedsBoundTailLatencyNearTheSlo) {
  ServeFixture& fixture = Fixture();

  // Calibrate one batch's service time on THIS machine (also exercising the
  // open-loop driver at an easy rate), then size the SLO and the flood in
  // service-time units so the overload is structural, not speed-dependent.
  double estimate = 0.0;
  {
    ServeOptions calibration;
    calibration.max_batch = 4;
    calibration.workers = 1;
    InferenceServer server(fixture.dataset, fixture.workload, fixture.features,
                           &fixture.store, fixture.model.get(), calibration);
    server.Start();
    LoadGenOptions warmup;
    warmup.mode = LoadMode::kOpen;
    warmup.rate_rps = 400.0;
    warmup.num_requests = 40;
    warmup.slo_seconds = 5.0;
    const LoadReport client = RunLoad(&server, warmup);
    server.Stop();
    EXPECT_EQ(client.served, 40u);
    estimate = server.batch_estimate_seconds();
  }
  ASSERT_GT(estimate, 0.0);

  // SLO = 20 batch-times; the flood of 400 needs ~100 batch-times to drain
  // through one worker, so the unshed tail is ~5x past the deadline by
  // construction while early arrivals still fit comfortably.
  const double slo = 20.0 * estimate;
  const std::size_t kFlood = 400;
  const auto flood = [&](bool shedding) {
    ServeOptions options;
    options.max_batch = 4;
    options.workers = 1;
    options.admission_capacity = 8192;
    options.shedding = shedding;
    options.initial_batch_estimate_seconds = estimate;
    options.max_linger_seconds = std::max(slo / 4.0, 1e-4);
    InferenceServer server(fixture.dataset, fixture.workload, fixture.features,
                           &fixture.store, fixture.model.get(), options);
    server.Start();
    std::vector<std::future<InferResult>> futures;
    futures.reserve(kFlood);
    for (std::size_t i = 0; i < kFlood; ++i) {
      futures.push_back(
          server.Submit(static_cast<VertexId>(i % server.num_vertices()), slo));
    }
    for (std::future<InferResult>& future : futures) {
      future.get();
    }
    server.Stop();
    return server.Report();
  };

  const ServeReport shed_report = flood(/*shedding=*/true);
  EXPECT_GT(shed_report.served, 0u);  // Early arrivals fit under the SLO.
  EXPECT_GT(shed_report.shed_overload, 0u) << "a 5x overload flood must shed";
  EXPECT_EQ(shed_report.served + shed_report.shed_overload + shed_report.shed_queue_full,
            kFlood);

  const ServeReport unshed_report = flood(/*shedding=*/false);
  EXPECT_EQ(unshed_report.served, kFlood);  // Baseline admits everything...
  EXPECT_EQ(unshed_report.shed_overload, 0u);
  EXPECT_GT(unshed_report.slo_violations, 0u);  // ...and blows deadlines.

  // The contrast the shedding exists for: the shed run's served tail stays
  // near the SLO while the unshed tail absorbs the whole backlog, and the
  // shed run violates fewer SLOs among what it chose to serve.
  EXPECT_GE(unshed_report.e2e_latency.p99, shed_report.e2e_latency.p99);
  EXPECT_LE(shed_report.slo_violations, unshed_report.slo_violations);
  EXPECT_LE(shed_report.e2e_latency.p99, 5.0 * slo);
}

TEST(ServeServerTest, StandbyWorkersReclaimThroughTheSwitchGate) {
  ServeFixture& fixture = Fixture();
  // A heavier per-request neighborhood than the shared fixture: the burst
  // must outlive several standby poll intervals, so stretch the drain.
  Workload heavy = fixture.workload;
  heavy.fanouts = {12, 10};
  ServeOptions options;
  options.max_batch = 2;
  options.workers = 1;
  options.standby_workers = 2;
  options.admission_capacity = 8192;
  options.shedding = false;  // Keep the whole burst; the point is the drain.
  options.standby_poll_seconds = 0.0005;
  InferenceServer server(fixture.dataset, heavy, fixture.features, &fixture.store,
                         fixture.model.get(), options);
  server.Start();

  const std::size_t kBurst = 2000;
  std::vector<std::future<InferResult>> futures;
  futures.reserve(kBurst);
  for (std::size_t i = 0; i < kBurst; ++i) {
    futures.push_back(
        server.Submit(static_cast<VertexId>(i % server.num_vertices()), 30.0));
  }
  std::size_t served = 0;
  std::size_t standby_served = 0;
  for (std::future<InferResult>& future : futures) {
    const InferResult result = future.get();
    served += result.outcome == RequestOutcome::kServed ? 1 : 0;
    standby_served += result.standby_worker ? 1 : 0;
  }
  server.Stop();
  const ServeReport report = server.Report();

  EXPECT_EQ(served, kBurst);
  // A 600-deep backlog against one dedicated worker (threshold: depth >
  // max_batch * workers = 2) keeps the profit gate positive for the whole
  // drain — the standbys must have been reclaimed.
  EXPECT_GT(report.standby_batches, 0u);
  EXPECT_GT(standby_served, 0u);
  ASSERT_FALSE(report.switch_decisions.empty());
  bool any_fetch = false;
  for (const SwitchDecision& decision : report.switch_decisions) {
    any_fetch = any_fetch || decision.fetched;
  }
  EXPECT_TRUE(any_fetch);
}

// --- Space-sharing: training and serving mark the same cache ----------------

TEST(ServeSpaceSharingTest, ConcurrentTrainingMarksAndServingStayExact) {
  ServeFixture& fixture = Fixture();
  // Private store so this test owns the counters.
  const VertexId nv = fixture.dataset.graph.num_vertices();
  std::vector<VertexId> ranked(nv);
  std::iota(ranked.begin(), ranked.end(), VertexId{0});
  TieredFeatureStore store =
      TieredFeatureStore::FromCache(FeatureCache::Load(ranked, 0.5, nv, kFeatureDim));

  ServeOptions options;
  options.max_batch = 8;
  options.workers = 2;
  InferenceServer server(fixture.dataset, fixture.workload, fixture.features, &store,
                         fixture.model.get(), options);
  server.Start();

  // The training side: a Sampler thread running the same Sample stage body
  // training uses, marking blocks against the SAME cache the server is
  // marking — the space-sharing arrangement under test.
  std::uint64_t train_lookups = 0;
  std::thread trainer([&] {
    std::unique_ptr<Sampler> sampler =
        MakeSampler(fixture.workload, fixture.dataset, nullptr);
    Rng rng(23);
    SampleSpec spec;
    spec.cache = &store.gpu();
    for (std::size_t batch = 0; batch < 40; ++batch) {
      std::vector<VertexId> seeds;
      for (std::size_t s = 0; s < 16; ++s) {
        seeds.push_back(static_cast<VertexId>(rng.NextBounded(nv)));
      }
      const SampleOutcome outcome = RunSampleStage(sampler.get(), seeds, &rng, spec);
      train_lookups += outcome.block.vertices().size();
    }
  });

  LoadGenOptions load;
  load.mode = LoadMode::kClosed;
  load.num_clients = 4;
  load.requests_per_client = 20;
  load.slo_seconds = 5.0;
  const LoadReport client = RunLoad(&server, load);
  trainer.join();
  server.Stop();
  const ServeReport report = server.Report();

  EXPECT_EQ(client.served, 80u);
  // Exactness under concurrency: every MarkBlock from either role counted
  // once. The serving side's lookups are exactly its gather totals (each
  // served batch marks then extracts the same distinct-vertex set).
  EXPECT_EQ(store.gpu().lookup_total(),
            train_lookups + report.cache_hits + report.host_misses);
  EXPECT_LE(store.gpu().lookup_hits(), store.gpu().lookup_total());
  EXPECT_GT(store.gpu().lookup_hits(), 0u);
}

TEST(ServeCacheConcurrencyTest, TwoThreadsMarkingCountExactly) {
  ServeFixture& fixture = Fixture();
  const VertexId nv = fixture.dataset.graph.num_vertices();
  std::vector<VertexId> ranked(nv);
  std::iota(ranked.begin(), ranked.end(), VertexId{0});
  const FeatureCache cache = FeatureCache::Load(ranked, 0.25, nv, kFeatureDim);

  std::unique_ptr<Sampler> sampler =
      MakeSampler(fixture.workload, fixture.dataset, nullptr);
  Rng rng(31);
  SampleBlock block_a =
      RunSampleStage(sampler.get(), std::vector<VertexId>{2, 4, 6, 8}, &rng, SampleSpec{})
          .block;
  SampleBlock block_b =
      RunSampleStage(sampler.get(), std::vector<VertexId>{1, 3, 5, 7}, &rng, SampleSpec{})
          .block;

  constexpr std::size_t kIterations = 2000;
  const auto mark_loop = [&cache](SampleBlock* block) {
    for (std::size_t i = 0; i < kIterations; ++i) {
      cache.MarkBlock(block);  // Each thread owns its block's mark vector.
    }
  };
  std::thread a(mark_loop, &block_a);
  std::thread b(mark_loop, &block_b);
  a.join();
  b.join();

  const std::uint64_t expected =
      kIterations * (block_a.vertices().size() + block_b.vertices().size());
  EXPECT_EQ(cache.lookup_total(), expected);  // No lost increments.
  std::uint64_t hits_a = 0;
  std::uint64_t hits_b = 0;
  for (const std::uint8_t mark : block_a.cache_marks()) {
    hits_a += mark;
  }
  for (const std::uint8_t mark : block_b.cache_marks()) {
    hits_b += mark;
  }
  EXPECT_EQ(cache.lookup_hits(), kIterations * (hits_a + hits_b));
}

TEST(ServeCacheCopyTest, CopyAndMoveSnapshotTheCounters) {
  std::vector<VertexId> ranked = {0, 1, 2, 3};
  FeatureCache cache = FeatureCache::Load(ranked, 0.5, 4, 4);
  const FeatureCache copy = cache;  // NOLINT: the copy is the test.
  EXPECT_EQ(copy.num_cached(), cache.num_cached());
  EXPECT_EQ(copy.lookup_total(), 0u);
  FeatureCache moved = std::move(cache);
  EXPECT_EQ(moved.num_cached(), copy.num_cached());
}

// --- Report JSON ------------------------------------------------------------

TEST(ServeReportJsonTest, SerializesCountersLatenciesAndSheds) {
  ServeReport report;
  report.offered = 10;
  report.admitted = 8;
  report.served = 7;
  report.shed_queue_full = 1;
  report.shed_overload = 1;
  report.slo_violations = 2;
  report.batches = 3;
  report.standby_batches = 1;
  report.cache_hits = 40;
  report.host_misses = 12;
  const std::string json = ServeReportToJson(report);
  EXPECT_NE(json.find("\"offered\":10"), std::string::npos);
  EXPECT_NE(json.find("\"shed_queue_full\":1"), std::string::npos);
  EXPECT_NE(json.find("\"shed_overload\":1"), std::string::npos);
  EXPECT_NE(json.find("\"extract\":{\"cache_hits\":40"), std::string::npos);
  EXPECT_NE(json.find("\"queue_latency\":"), std::string::npos);
  EXPECT_NE(json.find("\"e2e_latency\":"), std::string::npos);
  EXPECT_NE(json.find("\"switch_decisions\":[]"), std::string::npos);
}

}  // namespace
}  // namespace gnnlab
