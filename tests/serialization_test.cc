// Tests for model checkpointing, the FastGCN sampler, the GAT/FastGCN
// workloads through the engine, and the RunReport JSON export.
#include <cstdio>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/workload.h"
#include "feature/feature_store.h"
#include "nn/checkpoint.h"
#include "report/json.h"
#include "tensor/tensor.h"

namespace gnnlab {
namespace {

const Dataset& Products() {
  static const Dataset* ds = new Dataset(MakeDataset(DatasetId::kProducts, 0.1, 42));
  return *ds;
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

ModelConfig SmallConfig(GnnModelKind kind) {
  ModelConfig config;
  config.kind = kind;
  config.num_layers = 2;
  config.in_dim = 6;
  config.hidden_dim = 8;
  config.num_classes = 4;
  return config;
}

// --- Checkpointing -----------------------------------------------------------

TEST(CheckpointTest, RoundTripRestoresAllParameters) {
  Rng rng_a(1);
  Rng rng_b(2);
  GnnModel original(SmallConfig(GnnModelKind::kGraphSage), &rng_a);
  GnnModel restored(SmallConfig(GnnModelKind::kGraphSage), &rng_b);

  const std::string path = TempPath("model.ckpt");
  ASSERT_TRUE(SaveModel(&original, path));
  ASSERT_TRUE(LoadModel(&restored, path));

  auto a = original.Params();
  auto b = restored.Params();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t p = 0; p < a.size(); ++p) {
    ASSERT_EQ(a[p]->size(), b[p]->size());
    for (std::size_t i = 0; i < a[p]->size(); ++i) {
      EXPECT_EQ(a[p]->data()[i], b[p]->data()[i]);
    }
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, RoundTripForEveryModelKind) {
  for (const GnnModelKind kind : {GnnModelKind::kGcn, GnnModelKind::kGraphSage,
                                  GnnModelKind::kPinSage, GnnModelKind::kGat}) {
    Rng rng(3);
    GnnModel model(SmallConfig(kind), &rng);
    const std::string path = TempPath("kind.ckpt");
    ASSERT_TRUE(SaveModel(&model, path)) << GnnModelKindName(kind);
    ASSERT_TRUE(LoadModel(&model, path)) << GnnModelKindName(kind);
    std::remove(path.c_str());
  }
}

TEST(CheckpointTest, ShapeMismatchRejectedAndModelUntouched) {
  Rng rng(4);
  GnnModel saved(SmallConfig(GnnModelKind::kGcn), &rng);
  ModelConfig bigger = SmallConfig(GnnModelKind::kGcn);
  bigger.hidden_dim = 16;
  GnnModel target(bigger, &rng);
  const float sentinel = target.Params()[0]->data()[0];

  const std::string path = TempPath("mismatch.ckpt");
  ASSERT_TRUE(SaveModel(&saved, path));
  EXPECT_FALSE(LoadModel(&target, path));
  EXPECT_EQ(target.Params()[0]->data()[0], sentinel);
  std::remove(path.c_str());
}

TEST(CheckpointTest, LayerCountMismatchRejected) {
  Rng rng(5);
  GnnModel saved(SmallConfig(GnnModelKind::kGcn), &rng);
  ModelConfig deeper = SmallConfig(GnnModelKind::kGcn);
  deeper.num_layers = 3;
  GnnModel target(deeper, &rng);
  const std::string path = TempPath("layers.ckpt");
  ASSERT_TRUE(SaveModel(&saved, path));
  EXPECT_FALSE(LoadModel(&target, path));
  std::remove(path.c_str());
}

TEST(CheckpointTest, WarmStartForwardIsBitIdentical) {
  // The serving layer's warm-start contract: a model restored from a
  // checkpoint answers exactly like the one that was saved — same block,
  // same logits, bit for bit — even though the two were seeded differently.
  const Dataset& dataset = Products();
  Workload workload = StandardWorkload(GnnModelKind::kGraphSage);
  workload.fanouts = {4, 4};
  std::unique_ptr<Sampler> sampler = MakeSampler(workload, dataset, nullptr);
  Rng sample_rng(9);
  const std::vector<VertexId> seeds = {1, 2, 3, 4, 5, 6, 7, 8};
  const SampleBlock block = sampler->Sample(seeds, &sample_rng, nullptr);

  Tensor input(block.vertices().size(), 6);
  Rng feature_rng(10);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input.data()[i] = static_cast<float>(feature_rng.NextDouble());
  }

  Rng rng_a(1);
  Rng rng_b(2);
  GnnModel original(SmallConfig(GnnModelKind::kGraphSage), &rng_a);
  GnnModel restored(SmallConfig(GnnModelKind::kGraphSage), &rng_b);
  const std::string path = TempPath("warmstart.ckpt");
  ASSERT_TRUE(SaveModel(&original, path));
  ASSERT_TRUE(LoadModel(&restored, path));

  // Copy out: Forward returns a reference into the model's own buffers.
  const Tensor& logits_a = original.Forward(block, input);
  const std::vector<float> expected(logits_a.data(), logits_a.data() + logits_a.size());
  const Tensor& logits_b = restored.Forward(block, input);
  ASSERT_EQ(logits_b.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(logits_b.data()[i], expected[i]) << "logit " << i;
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, EngineWarmStartResumesDeterministically) {
  // End-to-end over the engine flags: train one epoch and save; two
  // warm-started continuations from that checkpoint must land on
  // bit-identical weights (and must have moved from the saved start).
  const Dataset& dataset = Products();
  const VertexId nv = dataset.graph.num_vertices();
  Rng feature_rng(11);
  const std::vector<std::uint32_t> labels = MakeCommunityLabels(nv, 128, 4);
  const FeatureStore features =
      FeatureStore::Clustered(nv, 6, labels, 4, 0.3, &feature_rng);
  RealTrainingOptions real;
  real.features = &features;
  real.labels = labels;
  real.num_classes = 4;
  real.hidden_dim = 8;

  const Workload workload = StandardWorkload(GnnModelKind::kGraphSage);
  const std::string first = TempPath("resume_first.ckpt");
  const std::string second = TempPath("resume_second.ckpt");
  const std::string third = TempPath("resume_third.ckpt");

  const auto run = [&](const std::string& load, const std::string& save) {
    EngineOptions options;
    options.epochs = 1;
    options.seed = 7;
    options.real = &real;
    options.load_checkpoint = load;
    options.save_checkpoint = save;
    Engine engine(dataset, workload, options);
    const RunReport report = engine.Run();
    EXPECT_FALSE(report.oom);
  };
  run("", first);
  run(first, second);
  run(first, third);

  const auto read_bytes = [](const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::vector<unsigned char> bytes;
    if (f != nullptr) {
      int c = 0;
      while ((c = std::fgetc(f)) != EOF) {
        bytes.push_back(static_cast<unsigned char>(c));
      }
      std::fclose(f);
    }
    return bytes;
  };
  const auto a = read_bytes(first);
  const auto b = read_bytes(second);
  const auto c = read_bytes(third);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(b, c);  // Same warm start, same continuation.
  EXPECT_NE(a, b);  // The continuation actually trained.
  std::remove(first.c_str());
  std::remove(second.c_str());
  std::remove(third.c_str());
}

TEST(CheckpointTest, GarbageFileRejected) {
  const std::string path = TempPath("garbage.ckpt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a checkpoint, just bytes............", f);
  std::fclose(f);
  Rng rng(6);
  GnnModel model(SmallConfig(GnnModelKind::kGcn), &rng);
  EXPECT_FALSE(LoadModel(&model, path));
  std::remove(path.c_str());
}

// --- FastGCN sampler -----------------------------------------------------------

TEST(FastGcnSamplerTest, LayerSizesBoundDistinctNewVertices) {
  const Dataset& ds = Products();
  auto sampler = MakeFastGcnSampler(ds.graph, {30, 20});
  Rng rng(7);
  const VertexId seeds[] = {1, 2, 3, 4, 5};
  const SampleBlock block = sampler->Sample(seeds, &rng, nullptr);
  EXPECT_EQ(block.num_hops(), 2u);
  // Each hop adds at most layer_size new distinct vertices.
  EXPECT_LE(block.VerticesAfterHop(1) - block.VerticesAfterHop(0), 30u);
  EXPECT_LE(block.VerticesAfterHop(2) - block.VerticesAfterHop(1), 20u);
  EXPECT_EQ(sampler->algorithm(), SamplingAlgorithm::kFastGcn);
}

TEST(FastGcnSamplerTest, EdgesOnlyTargetChosenVertices) {
  const Dataset& ds = Products();
  auto sampler = MakeFastGcnSampler(ds.graph, {10});
  Rng rng(8);
  const VertexId seeds[] = {10, 20, 30};
  const SampleBlock block = sampler->Sample(seeds, &rng, nullptr);
  // Every edge endpoint must be a real neighbor relation.
  for (std::size_t e = 0; e < block.hop(0).size(); ++e) {
    const VertexId src = block.vertices()[block.hop(0).src_local[e]];
    const VertexId dst = block.vertices()[block.hop(0).dst_local[e]];
    const auto nbrs = ds.graph.Neighbors(dst);
    EXPECT_TRUE(std::find(nbrs.begin(), nbrs.end(), src) != nbrs.end())
        << dst << "->" << src << " is not a graph edge";
  }
}

TEST(FastGcnSamplerTest, PrefersHighDegreeVertices) {
  const Dataset& ds = Products();
  auto sampler = MakeFastGcnSampler(ds.graph, {20, 20, 20});
  Rng shuffle(9);
  Rng rng(10);
  EpochBatches batches(ds.train_set, ds.batch_size, &shuffle);
  double sampled_degree_sum = 0.0;
  std::size_t sampled_count = 0;
  while (batches.HasNext()) {
    const SampleBlock block = sampler->Sample(batches.NextBatch(), &rng, nullptr);
    for (std::size_t v = block.num_seeds(); v < block.vertices().size(); ++v) {
      sampled_degree_sum += static_cast<double>(ds.graph.out_degree(block.vertices()[v]));
      ++sampled_count;
    }
  }
  const double graph_mean = static_cast<double>(ds.graph.num_edges()) /
                            static_cast<double>(ds.graph.num_vertices());
  EXPECT_GT(sampled_degree_sum / static_cast<double>(sampled_count), graph_mean);
}

TEST(FastGcnWorkloadTest, RunsThroughTheEngine) {
  const Workload workload = FastGcnWorkload();
  EXPECT_EQ(workload.sampling, SamplingAlgorithm::kFastGcn);
  EngineOptions options;
  options.num_gpus = 2;
  options.num_samplers = 1;
  options.gpu_memory = 8 * kMiB;
  options.epochs = 2;
  Engine engine(Products(), workload, options);
  const RunReport report = engine.Run();
  ASSERT_FALSE(report.oom) << report.oom_detail;
  EXPECT_EQ(report.epochs[0].batches, Products().BatchesPerEpoch());
}

// --- GAT through the engine -------------------------------------------------------

TEST(GatWorkloadTest, SimulatedRun) {
  const Workload workload = StandardWorkload(GnnModelKind::kGat);
  EXPECT_EQ(workload.num_layers, 2u);
  EngineOptions options;
  options.num_gpus = 4;
  options.gpu_memory = 8 * kMiB;
  options.epochs = 2;
  Engine engine(Products(), workload, options);
  const RunReport report = engine.Run();
  ASSERT_FALSE(report.oom) << report.oom_detail;
  EXPECT_EQ(report.epochs[0].batches, Products().BatchesPerEpoch());
}

TEST(GatWorkloadTest, RealTrainingLearns) {
  const Dataset& ds = Products();
  Rng rng(11);
  const auto labels = MakeCommunityLabels(ds.graph.num_vertices(), 128, 6);
  const FeatureStore features =
      FeatureStore::Clustered(ds.graph.num_vertices(), 12, labels, 6, 0.3, &rng);
  std::vector<VertexId> eval;
  for (VertexId v = 0; v < 150; ++v) {
    eval.push_back(v);
  }
  RealTrainingOptions real;
  real.features = &features;
  real.labels = labels;
  real.eval_vertices = eval;
  real.num_classes = 6;
  real.hidden_dim = 12;

  const Workload workload = StandardWorkload(GnnModelKind::kGat);
  EngineOptions options;
  options.num_gpus = 3;
  options.gpu_memory = 8 * kMiB;
  options.epochs = 4;
  options.real = &real;
  Engine engine(ds, workload, options);
  const RunReport report = engine.Run();
  ASSERT_FALSE(report.oom);
  EXPECT_LT(report.epochs.back().mean_loss, report.epochs.front().mean_loss);
  EXPECT_GT(report.epochs.back().eval_accuracy, 0.25);  // >> 1/6 random.
}

// --- JSON export -------------------------------------------------------------------

TEST(RunReportJsonTest, ContainsAllSections) {
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  EngineOptions options;
  options.num_gpus = 2;
  options.num_samplers = 1;
  options.gpu_memory = 8 * kMiB;
  options.epochs = 2;
  Engine engine(Products(), workload, options);
  const RunReport report = engine.Run();
  const std::string json = RunReportToJson(report);
  for (const char* key :
       {"\"num_samplers\":", "\"cache_ratio\":", "\"preprocess\":", "\"queue\":",
        "\"epochs\":[", "\"stage\":", "\"hit_rate\":", "\"gradient_updates\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Two epoch objects.
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = json.find("\"epoch_time\":", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 2u);
}

TEST(RunReportJsonTest, EscapesOomDetail) {
  RunReport report;
  report.oom = true;
  report.oom_detail = "line1\nquote\"backslash\\";
  report.epochs.push_back({});
  const std::string json = RunReportToJson(report);
  EXPECT_NE(json.find("line1\\nquote\\\"backslash\\\\"), std::string::npos);
}

TEST(RunReportJsonTest, WriteToFile) {
  RunReport report;
  report.num_samplers = 2;
  report.epochs.push_back({});
  const std::string path = TempPath("report.json");
  ASSERT_TRUE(WriteRunReportJson(report, path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char c = 0;
  ASSERT_EQ(std::fread(&c, 1, 1, f), 1u);
  std::fclose(f);
  EXPECT_EQ(c, '{');
  std::remove(path.c_str());
}

TEST(SamplingAlgorithmNameTest, FastGcn) {
  EXPECT_STREQ(SamplingAlgorithmName(SamplingAlgorithm::kFastGcn), "fastgcn");
}

}  // namespace
}  // namespace gnnlab
