// Tests for model checkpointing, the FastGCN sampler, the GAT/FastGCN
// workloads through the engine, and the RunReport JSON export.
#include <cstdio>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "nn/checkpoint.h"
#include "report/json.h"

namespace gnnlab {
namespace {

const Dataset& Products() {
  static const Dataset* ds = new Dataset(MakeDataset(DatasetId::kProducts, 0.1, 42));
  return *ds;
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

ModelConfig SmallConfig(GnnModelKind kind) {
  ModelConfig config;
  config.kind = kind;
  config.num_layers = 2;
  config.in_dim = 6;
  config.hidden_dim = 8;
  config.num_classes = 4;
  return config;
}

// --- Checkpointing -----------------------------------------------------------

TEST(CheckpointTest, RoundTripRestoresAllParameters) {
  Rng rng_a(1);
  Rng rng_b(2);
  GnnModel original(SmallConfig(GnnModelKind::kGraphSage), &rng_a);
  GnnModel restored(SmallConfig(GnnModelKind::kGraphSage), &rng_b);

  const std::string path = TempPath("model.ckpt");
  ASSERT_TRUE(SaveModel(&original, path));
  ASSERT_TRUE(LoadModel(&restored, path));

  auto a = original.Params();
  auto b = restored.Params();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t p = 0; p < a.size(); ++p) {
    ASSERT_EQ(a[p]->size(), b[p]->size());
    for (std::size_t i = 0; i < a[p]->size(); ++i) {
      EXPECT_EQ(a[p]->data()[i], b[p]->data()[i]);
    }
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, RoundTripForEveryModelKind) {
  for (const GnnModelKind kind : {GnnModelKind::kGcn, GnnModelKind::kGraphSage,
                                  GnnModelKind::kPinSage, GnnModelKind::kGat}) {
    Rng rng(3);
    GnnModel model(SmallConfig(kind), &rng);
    const std::string path = TempPath("kind.ckpt");
    ASSERT_TRUE(SaveModel(&model, path)) << GnnModelKindName(kind);
    ASSERT_TRUE(LoadModel(&model, path)) << GnnModelKindName(kind);
    std::remove(path.c_str());
  }
}

TEST(CheckpointTest, ShapeMismatchRejectedAndModelUntouched) {
  Rng rng(4);
  GnnModel saved(SmallConfig(GnnModelKind::kGcn), &rng);
  ModelConfig bigger = SmallConfig(GnnModelKind::kGcn);
  bigger.hidden_dim = 16;
  GnnModel target(bigger, &rng);
  const float sentinel = target.Params()[0]->data()[0];

  const std::string path = TempPath("mismatch.ckpt");
  ASSERT_TRUE(SaveModel(&saved, path));
  EXPECT_FALSE(LoadModel(&target, path));
  EXPECT_EQ(target.Params()[0]->data()[0], sentinel);
  std::remove(path.c_str());
}

TEST(CheckpointTest, LayerCountMismatchRejected) {
  Rng rng(5);
  GnnModel saved(SmallConfig(GnnModelKind::kGcn), &rng);
  ModelConfig deeper = SmallConfig(GnnModelKind::kGcn);
  deeper.num_layers = 3;
  GnnModel target(deeper, &rng);
  const std::string path = TempPath("layers.ckpt");
  ASSERT_TRUE(SaveModel(&saved, path));
  EXPECT_FALSE(LoadModel(&target, path));
  std::remove(path.c_str());
}

TEST(CheckpointTest, GarbageFileRejected) {
  const std::string path = TempPath("garbage.ckpt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a checkpoint, just bytes............", f);
  std::fclose(f);
  Rng rng(6);
  GnnModel model(SmallConfig(GnnModelKind::kGcn), &rng);
  EXPECT_FALSE(LoadModel(&model, path));
  std::remove(path.c_str());
}

// --- FastGCN sampler -----------------------------------------------------------

TEST(FastGcnSamplerTest, LayerSizesBoundDistinctNewVertices) {
  const Dataset& ds = Products();
  auto sampler = MakeFastGcnSampler(ds.graph, {30, 20});
  Rng rng(7);
  const VertexId seeds[] = {1, 2, 3, 4, 5};
  const SampleBlock block = sampler->Sample(seeds, &rng, nullptr);
  EXPECT_EQ(block.num_hops(), 2u);
  // Each hop adds at most layer_size new distinct vertices.
  EXPECT_LE(block.VerticesAfterHop(1) - block.VerticesAfterHop(0), 30u);
  EXPECT_LE(block.VerticesAfterHop(2) - block.VerticesAfterHop(1), 20u);
  EXPECT_EQ(sampler->algorithm(), SamplingAlgorithm::kFastGcn);
}

TEST(FastGcnSamplerTest, EdgesOnlyTargetChosenVertices) {
  const Dataset& ds = Products();
  auto sampler = MakeFastGcnSampler(ds.graph, {10});
  Rng rng(8);
  const VertexId seeds[] = {10, 20, 30};
  const SampleBlock block = sampler->Sample(seeds, &rng, nullptr);
  // Every edge endpoint must be a real neighbor relation.
  for (std::size_t e = 0; e < block.hop(0).size(); ++e) {
    const VertexId src = block.vertices()[block.hop(0).src_local[e]];
    const VertexId dst = block.vertices()[block.hop(0).dst_local[e]];
    const auto nbrs = ds.graph.Neighbors(dst);
    EXPECT_TRUE(std::find(nbrs.begin(), nbrs.end(), src) != nbrs.end())
        << dst << "->" << src << " is not a graph edge";
  }
}

TEST(FastGcnSamplerTest, PrefersHighDegreeVertices) {
  const Dataset& ds = Products();
  auto sampler = MakeFastGcnSampler(ds.graph, {20, 20, 20});
  Rng shuffle(9);
  Rng rng(10);
  EpochBatches batches(ds.train_set, ds.batch_size, &shuffle);
  double sampled_degree_sum = 0.0;
  std::size_t sampled_count = 0;
  while (batches.HasNext()) {
    const SampleBlock block = sampler->Sample(batches.NextBatch(), &rng, nullptr);
    for (std::size_t v = block.num_seeds(); v < block.vertices().size(); ++v) {
      sampled_degree_sum += static_cast<double>(ds.graph.out_degree(block.vertices()[v]));
      ++sampled_count;
    }
  }
  const double graph_mean = static_cast<double>(ds.graph.num_edges()) /
                            static_cast<double>(ds.graph.num_vertices());
  EXPECT_GT(sampled_degree_sum / static_cast<double>(sampled_count), graph_mean);
}

TEST(FastGcnWorkloadTest, RunsThroughTheEngine) {
  const Workload workload = FastGcnWorkload();
  EXPECT_EQ(workload.sampling, SamplingAlgorithm::kFastGcn);
  EngineOptions options;
  options.num_gpus = 2;
  options.num_samplers = 1;
  options.gpu_memory = 8 * kMiB;
  options.epochs = 2;
  Engine engine(Products(), workload, options);
  const RunReport report = engine.Run();
  ASSERT_FALSE(report.oom) << report.oom_detail;
  EXPECT_EQ(report.epochs[0].batches, Products().BatchesPerEpoch());
}

// --- GAT through the engine -------------------------------------------------------

TEST(GatWorkloadTest, SimulatedRun) {
  const Workload workload = StandardWorkload(GnnModelKind::kGat);
  EXPECT_EQ(workload.num_layers, 2u);
  EngineOptions options;
  options.num_gpus = 4;
  options.gpu_memory = 8 * kMiB;
  options.epochs = 2;
  Engine engine(Products(), workload, options);
  const RunReport report = engine.Run();
  ASSERT_FALSE(report.oom) << report.oom_detail;
  EXPECT_EQ(report.epochs[0].batches, Products().BatchesPerEpoch());
}

TEST(GatWorkloadTest, RealTrainingLearns) {
  const Dataset& ds = Products();
  Rng rng(11);
  const auto labels = MakeCommunityLabels(ds.graph.num_vertices(), 128, 6);
  const FeatureStore features =
      FeatureStore::Clustered(ds.graph.num_vertices(), 12, labels, 6, 0.3, &rng);
  std::vector<VertexId> eval;
  for (VertexId v = 0; v < 150; ++v) {
    eval.push_back(v);
  }
  RealTrainingOptions real;
  real.features = &features;
  real.labels = labels;
  real.eval_vertices = eval;
  real.num_classes = 6;
  real.hidden_dim = 12;

  const Workload workload = StandardWorkload(GnnModelKind::kGat);
  EngineOptions options;
  options.num_gpus = 3;
  options.gpu_memory = 8 * kMiB;
  options.epochs = 4;
  options.real = &real;
  Engine engine(ds, workload, options);
  const RunReport report = engine.Run();
  ASSERT_FALSE(report.oom);
  EXPECT_LT(report.epochs.back().mean_loss, report.epochs.front().mean_loss);
  EXPECT_GT(report.epochs.back().eval_accuracy, 0.25);  // >> 1/6 random.
}

// --- JSON export -------------------------------------------------------------------

TEST(RunReportJsonTest, ContainsAllSections) {
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  EngineOptions options;
  options.num_gpus = 2;
  options.num_samplers = 1;
  options.gpu_memory = 8 * kMiB;
  options.epochs = 2;
  Engine engine(Products(), workload, options);
  const RunReport report = engine.Run();
  const std::string json = RunReportToJson(report);
  for (const char* key :
       {"\"num_samplers\":", "\"cache_ratio\":", "\"preprocess\":", "\"queue\":",
        "\"epochs\":[", "\"stage\":", "\"hit_rate\":", "\"gradient_updates\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Two epoch objects.
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = json.find("\"epoch_time\":", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 2u);
}

TEST(RunReportJsonTest, EscapesOomDetail) {
  RunReport report;
  report.oom = true;
  report.oom_detail = "line1\nquote\"backslash\\";
  report.epochs.push_back({});
  const std::string json = RunReportToJson(report);
  EXPECT_NE(json.find("line1\\nquote\\\"backslash\\\\"), std::string::npos);
}

TEST(RunReportJsonTest, WriteToFile) {
  RunReport report;
  report.num_samplers = 2;
  report.epochs.push_back({});
  const std::string path = TempPath("report.json");
  ASSERT_TRUE(WriteRunReportJson(report, path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char c = 0;
  ASSERT_EQ(std::fread(&c, 1, 1, f), 1u);
  std::fclose(f);
  EXPECT_EQ(c, '{');
  std::remove(path.c_str());
}

TEST(SamplingAlgorithmNameTest, FastGcn) {
  EXPECT_STREQ(SamplingAlgorithmName(SamplingAlgorithm::kFastGcn), "fastgcn");
}

}  // namespace
}  // namespace gnnlab
