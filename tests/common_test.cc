// Tests for src/common: deterministic RNG, byte formatting, logging levels.
#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "common/units.h"

namespace gnnlab {
namespace {

TEST(SplitMix64Test, IsDeterministic) {
  std::uint64_t a = 42;
  std::uint64_t b = 42;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(SplitMix64(&a), SplitMix64(&b));
  }
  EXPECT_EQ(a, b);
}

TEST(SplitMix64Test, AdvancesState) {
  std::uint64_t state = 7;
  const std::uint64_t first = SplitMix64(&state);
  const std::uint64_t second = SplitMix64(&state);
  EXPECT_NE(first, second);
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.NextBounded(1), 0u);
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(77);
  constexpr std::uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.NextBounded(kBound)];
  }
  const double expected = static_cast<double>(kSamples) / kBound;
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.1);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(11);
  Rng child0 = parent.Fork(0);
  Rng child1 = parent.Fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child0.Next() == child1.Next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng parent(11);
  Rng a = parent.Fork(5);
  Rng b = parent.Fork(5);
  EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, ForkDoesNotDisturbParent) {
  Rng a(13);
  Rng b(13);
  (void)a.Fork(1);
  EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, WorksWithStdShuffle) {
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) {
    v[i] = i;
  }
  Rng rng(21);
  std::shuffle(v.begin(), v.end(), rng);
  std::set<int> seen(v.begin(), v.end());
  EXPECT_EQ(seen.size(), 100u);  // Still a permutation.
}

TEST(UnitsTest, FormatBytesPicksUnit) {
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(2 * kKiB), "2.0KB");
  EXPECT_EQ(FormatBytes(3 * kMiB + kMiB / 2), "3.5MB");
  EXPECT_EQ(FormatBytes(11 * kGiB + 2 * kGiB / 5), "11.4GB");
}

TEST(UnitsTest, FormatSecondsPicksUnit) {
  EXPECT_EQ(FormatSeconds(0.0001), "0.100ms");
  EXPECT_EQ(FormatSeconds(0.0475), "47.5ms");
  EXPECT_EQ(FormatSeconds(12.5), "12.50s");
}

TEST(LoggingTest, LevelFiltering) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_FALSE(GNNLAB_LOG_ENABLED(LogLevel::kInfo));
  EXPECT_TRUE(GNNLAB_LOG_ENABLED(LogLevel::kError));
  SetLogLevel(original);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ CHECK_EQ(1, 2) << "boom"; }, "Check failed");
}

TEST(LoggingTest, CheckPassesSilently) {
  CHECK_EQ(1, 1);
  CHECK_LT(1, 2);
  CHECK_GE(2, 2);
  CHECK(true);
}

}  // namespace
}  // namespace gnnlab
