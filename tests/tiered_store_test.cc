// Tests for src/cache/tiered_store.h: the GPU -> host -> SSD tier stack.
// Invariants pinned here: a one-tier store degenerates to the flat seed
// FeatureCache (no tier traffic, identical counters), residency is
// exclusive between the GPU and host tiers, the Belady oracle reproduces
// textbook OPT on exact sequences and matches-or-beats LRU on replayed
// traces, and the engines surface tier traffic only when a host tier is
// configured.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "cache/feature_cache.h"
#include "cache/tiered_store.h"
#include "common/rng.h"
#include "core/engine.h"
#include "core/workload.h"
#include "graph/dataset.h"
#include "sampling/sample_block.h"

namespace gnnlab {
namespace {

constexpr VertexId kNumVertices = 200;
constexpr std::size_t kDim = 16;                     // 64-byte rows.
constexpr ByteCount kRowBytes = kDim * sizeof(float);

const Dataset& Products() {
  static const Dataset* ds = new Dataset(MakeDataset(DatasetId::kProducts, 0.1, 42));
  return *ds;
}

// A store with no GPU-cached rows: every access is a GPU miss, so the host
// tier sees the full stream. `capacity_rows` sizes the host tier.
TieredFeatureStore MakeHostOnlyStore(std::size_t capacity_rows, HostEvictPolicy policy) {
  TierStackOptions options;
  options.host_budget_bytes = capacity_rows * kRowBytes;
  options.host_policy = policy;
  options.seed = 7;
  return TieredFeatureStore::FromCache(
      FeatureCache::Load({}, 0.0, kNumVertices, kDim), options);
}

SampleBlock BlockOf(std::span<const VertexId> seeds) {
  RemapScratch scratch(kNumVertices);
  SampleBlockBuilder builder(&scratch);
  builder.Begin(seeds);
  return builder.Finish();
}

TEST(TieredStoreTest, ParseAndNameRoundTrip) {
  for (const HostEvictPolicy policy :
       {HostEvictPolicy::kBelady, HostEvictPolicy::kLru, HostEvictPolicy::kDegree,
        HostEvictPolicy::kRandom}) {
    const auto parsed = ParseHostEvictPolicy(HostEvictPolicyName(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(ParseHostEvictPolicy("fifo").has_value());
}

TEST(TieredStoreTest, OneTierDegeneratesToFlatCache) {
  const std::vector<VertexId> ranked{4, 5};
  const FeatureCache flat = FeatureCache::Load(ranked, 0.2, 10, kDim);
  const TieredFeatureStore store =
      TieredFeatureStore::FromCache(FeatureCache::Load(ranked, 0.2, 10, kDim));
  EXPECT_FALSE(store.host_enabled());
  EXPECT_EQ(store.host_capacity_rows(), 0u);
  EXPECT_EQ(store.gpu().num_cached(), flat.num_cached());
  EXPECT_DOUBLE_EQ(store.gpu().ratio(), flat.ratio());

  // The same marking stream leaves identical lookup counters, and the
  // degenerate store reports zero tier traffic for the misses.
  RemapScratch scratch(10);
  SampleBlockBuilder builder(&scratch);
  const VertexId seeds[] = {4, 1, 7};
  builder.Begin(seeds);
  SampleBlock block = builder.Finish();
  flat.MarkBlock(&block);
  store.gpu().MarkBlock(&block);
  EXPECT_EQ(store.gpu().lookup_total(), flat.lookup_total());
  EXPECT_EQ(store.gpu().lookup_hits(), flat.lookup_hits());

  const TierAccess access = store.AccessMisses(block);
  EXPECT_EQ(access.host_tier_hits, 0u);
  EXPECT_EQ(access.ssd_fetches, 0u);
  EXPECT_EQ(access.bytes_from_ssd, 0u);
  EXPECT_DOUBLE_EQ(access.ssd_seconds, 0.0);
  EXPECT_EQ(store.host_hits_total(), 0u);
  EXPECT_EQ(store.ssd_fetches_total(), 0u);
}

TEST(TieredStoreTest, ExclusiveResidencyAcrossTiers) {
  // Vertices 0..9 live in the GPU tier; a 4-row host tier serves the rest.
  std::vector<VertexId> ranked(kNumVertices);
  for (VertexId v = 0; v < kNumVertices; ++v) ranked[v] = v;
  TierStackOptions options;
  options.host_budget_bytes = 4 * kRowBytes;
  options.host_policy = HostEvictPolicy::kLru;
  const TieredFeatureStore store = TieredFeatureStore::FromCache(
      FeatureCache::Load(ranked, 10.0 / kNumVertices, kNumVertices, kDim), options);
  ASSERT_TRUE(store.host_enabled());
  ASSERT_EQ(store.host_capacity_rows(), 4u);

  Rng rng(123);
  for (int i = 0; i < 500; ++i) {
    const VertexId v = static_cast<VertexId>(rng.Next() % kNumVertices);
    std::vector<VertexId> seeds{v};
    SampleBlock block = BlockOf(seeds);
    store.gpu().MarkBlock(&block);
    store.AccessMisses(block);
  }
  const std::vector<VertexId> residents = store.HostResidentVertices();
  EXPECT_LE(residents.size(), store.host_capacity_rows());
  for (const VertexId v : residents) {
    EXPECT_FALSE(store.gpu().Contains(v))
        << "vertex " << v << " resident in both the GPU and host tiers";
  }
}

TEST(TieredStoreTest, RemoteOwnedMissesAreNotServedLocally) {
  const TieredFeatureStore store = MakeHostOnlyStore(4, HostEvictPolicy::kLru);
  const std::vector<VertexId> seeds{1, 2, 3};
  SampleBlock block = BlockOf(seeds);
  store.gpu().MarkBlock(&block);
  // All three vertices are owned by node 1; we are node 0: the remote fetch
  // path pays for them, not the local host/SSD tiers.
  const std::vector<std::int32_t> owners(kNumVertices, 1);
  const TierAccess access = store.AccessMisses(block, owners, 0);
  EXPECT_EQ(access.host_tier_hits, 0u);
  EXPECT_EQ(access.ssd_fetches, 0u);
  EXPECT_TRUE(store.HostResidentVertices().empty());
}

TEST(TieredStoreTest, SsdReadTimeModel) {
  TierStackOptions options;
  options.host_budget_bytes = kRowBytes;
  options.ssd_read_bandwidth = 1024.0;
  options.ssd_read_latency = 0.5;
  const TieredFeatureStore store = TieredFeatureStore::FromCache(
      FeatureCache::Load({}, 0.0, kNumVertices, kDim), options);
  EXPECT_DOUBLE_EQ(store.SsdReadTime(0, 0), 0.0);
  // 2 fetches * 0.5s latency + 2048 bytes / 1024 B/s = 3s.
  EXPECT_DOUBLE_EQ(store.SsdReadTime(2, 2048), 3.0);
}

TEST(TieredStoreTest, BeladyReproducesTextbookOpt) {
  // Capacity 2, trace 0 1 2 0 1: OPT bypasses 2 (never reused) and keeps
  // {0, 1} resident, scoring hits on the last two accesses. LRU churns
  // through every row and scores none.
  const std::vector<VertexId> trace{0, 1, 2, 0, 1};

  TieredFeatureStore belady = MakeHostOnlyStore(2, HostEvictPolicy::kBelady);
  belady.LoadHostReplayTrace(trace);
  TierAccess belady_total;
  for (const VertexId v : trace) belady_total.Add(belady.TestAccess(v));
  EXPECT_EQ(belady_total.host_tier_hits, 2u);
  EXPECT_EQ(belady_total.ssd_fetches, 3u);
  EXPECT_EQ(belady_total.bytes_from_ssd, 3 * kRowBytes);

  TieredFeatureStore lru = MakeHostOnlyStore(2, HostEvictPolicy::kLru);
  TierAccess lru_total;
  for (const VertexId v : trace) lru_total.Add(lru.TestAccess(v));
  EXPECT_EQ(lru_total.host_tier_hits, 0u);
  EXPECT_EQ(lru_total.ssd_fetches, 5u);
}

// Property: on any replayed trace, the Belady oracle's host hit count
// matches or beats LRU, degree, and random eviction at the same budget —
// OPT optimality, observable because the oracle sees the exact stream.
TEST(BeladyPropertyTest, MatchesOrBeatsEveryOtherPolicyOnReplayedTraces) {
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    // Skewed reuse: a 20-vertex hot set mixed with cold scans.
    Rng rng(seed);
    std::vector<VertexId> trace;
    trace.reserve(2000);
    for (int i = 0; i < 2000; ++i) {
      const VertexId v = (i % 3 != 0) ? static_cast<VertexId>(rng.Next() % 20)
                                      : static_cast<VertexId>(rng.Next() % kNumVertices);
      trace.push_back(v);
    }

    const auto hits_for = [&trace](HostEvictPolicy policy) {
      TieredFeatureStore store = MakeHostOnlyStore(8, policy);
      if (policy == HostEvictPolicy::kBelady) {
        store.LoadHostReplayTrace(trace);
      }
      if (policy == HostEvictPolicy::kDegree) {
        std::vector<VertexId> ranked(kNumVertices);
        for (VertexId v = 0; v < kNumVertices; ++v) ranked[v] = v;
        store.SetHostStaticRanks(ranked);
      }
      TierAccess total;
      for (const VertexId v : trace) total.Add(store.TestAccess(v));
      return total.host_tier_hits;
    };

    const std::size_t belady = hits_for(HostEvictPolicy::kBelady);
    EXPECT_GE(belady, hits_for(HostEvictPolicy::kLru)) << "seed " << seed;
    EXPECT_GE(belady, hits_for(HostEvictPolicy::kDegree)) << "seed " << seed;
    EXPECT_GE(belady, hits_for(HostEvictPolicy::kRandom)) << "seed " << seed;
  }
}

// --- Engine integration ------------------------------------------------------

EngineOptions SmallEngineOptions() {
  EngineOptions options;
  options.num_gpus = 2;
  options.num_samplers = 1;
  options.dynamic_switching = false;
  options.cache_ratio_override = 0.05;
  options.epochs = 2;
  options.seed = 42;
  return options;
}

TEST(TieredStoreEngineTest, OneTierRunReportsNoTierTraffic) {
  Engine engine(Products(), StandardWorkload(GnnModelKind::kGcn), SmallEngineOptions());
  const RunReport report = engine.Run();
  ASSERT_FALSE(report.oom);
  for (const EpochReport& epoch : report.epochs) {
    EXPECT_FALSE(epoch.tiers.Any());
    EXPECT_DOUBLE_EQ(epoch.tiers.ssd_seconds, 0.0);
  }
}

TEST(TieredStoreEngineTest, HostTierTrafficIsDeterministicAndBeladyWins) {
  const auto run = [](HostEvictPolicy policy) {
    EngineOptions options = SmallEngineOptions();
    options.tiers.host_budget_bytes = Products().FeatureBytes() / 20;
    options.tiers.host_policy = policy;
    Engine engine(Products(), StandardWorkload(GnnModelKind::kGcn), options);
    return engine.Run();
  };
  const RunReport belady = run(HostEvictPolicy::kBelady);
  const RunReport belady2 = run(HostEvictPolicy::kBelady);
  const RunReport lru = run(HostEvictPolicy::kLru);
  ASSERT_FALSE(belady.oom);

  TierEpochStats belady_total, belady2_total, lru_total;
  for (const EpochReport& e : belady.epochs) belady_total.Add(e.tiers);
  for (const EpochReport& e : belady2.epochs) belady2_total.Add(e.tiers);
  for (const EpochReport& e : lru.epochs) lru_total.Add(e.tiers);

  // Tier traffic exists, is reproducible, and the modeled SSD stall pushes
  // the epoch makespan: Belady must match-or-beat LRU on both axes.
  EXPECT_GT(belady_total.host_hits + belady_total.ssd_fetches, 0u);
  EXPECT_EQ(belady_total.host_hits, belady2_total.host_hits);
  EXPECT_EQ(belady_total.ssd_fetches, belady2_total.ssd_fetches);
  EXPECT_DOUBLE_EQ(belady.AvgEpochTime(), belady2.AvgEpochTime());
  EXPECT_GE(belady_total.HostHitRate(), lru_total.HostHitRate());
  EXPECT_LE(belady.AvgEpochTime(), lru.AvgEpochTime());
  EXPECT_GT(belady_total.ssd_seconds, 0.0);
}

}  // namespace
}  // namespace gnnlab
