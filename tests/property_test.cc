// Cross-cutting property tests: parameterized invariants that must hold for
// every sampling kernel, caching policy, and scheduler input — the
// "robust to diverse sampling algorithms and GNN datasets" claims of the
// paper, checked structurally.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "cache/cache_policy.h"
#include "cache/feature_cache.h"
#include "core/engine.h"
#include "core/scheduler.h"

namespace gnnlab {
namespace {

const Dataset& Products() {
  static const Dataset* ds = new Dataset(MakeDataset(DatasetId::kProducts, 0.1, 42));
  return *ds;
}

std::unique_ptr<Sampler> SamplerFor(SamplingAlgorithm algorithm, const Dataset& ds,
                                    const EdgeWeights* weights) {
  switch (algorithm) {
    case SamplingAlgorithm::kKhopUniform:
      return MakeKhopUniformSampler(ds.graph, {15, 10, 5});
    case SamplingAlgorithm::kKhopReservoir:
      return MakeKhopReservoirSampler(ds.graph, {15, 10, 5});
    case SamplingAlgorithm::kKhopWeighted:
      return MakeKhopWeightedSampler(ds.graph, *weights, {15, 10, 5});
    case SamplingAlgorithm::kRandomWalk:
      return MakeRandomWalkSampler(ds.graph, 3, 4, 3, 5);
    case SamplingAlgorithm::kSubgraph:
      return MakeSubgraphSampler(ds.graph, 3);
  }
  return nullptr;
}

// --- Block invariants across every kernel -------------------------------------

class BlockInvariantTest : public ::testing::TestWithParam<SamplingAlgorithm> {};

TEST_P(BlockInvariantTest, StructureIsWellFormed) {
  const Dataset& ds = Products();
  const EdgeWeights weights = ds.MakeWeights();
  auto sampler = SamplerFor(GetParam(), ds, &weights);
  Rng rng(17);
  const VertexId seeds[] = {1, 5, 9, 13, 200, 301};
  const SampleBlock block = sampler->Sample(seeds, &rng, nullptr);

  // Seeds keep their order and lead the local-id space.
  ASSERT_EQ(block.num_seeds(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(block.vertices()[i], seeds[i]);
  }
  // Distinct local ids map to distinct globals.
  std::set<VertexId> unique(block.vertices().begin(), block.vertices().end());
  EXPECT_EQ(unique.size(), block.vertices().size());
  // hop_end is monotone and bounds every hop's local ids.
  std::size_t prev_end = block.num_seeds();
  for (std::size_t h = 0; h < block.num_hops(); ++h) {
    const std::size_t end = block.VerticesAfterHop(h + 1);
    EXPECT_GE(end, prev_end);
    for (std::size_t e = 0; e < block.hop(h).size(); ++e) {
      EXPECT_LT(block.hop(h).dst_local[e], block.VerticesAfterHop(h));
      EXPECT_LT(block.hop(h).src_local[e], end);
    }
    prev_end = end;
  }
  EXPECT_EQ(prev_end, block.vertices().size());
}

TEST_P(BlockInvariantTest, DeterministicGivenSeed) {
  const Dataset& ds = Products();
  const EdgeWeights weights = ds.MakeWeights();
  auto sampler_a = SamplerFor(GetParam(), ds, &weights);
  auto sampler_b = SamplerFor(GetParam(), ds, &weights);
  Rng rng_a(99);
  Rng rng_b(99);
  const VertexId seeds[] = {2, 4, 8, 16};
  const SampleBlock a = sampler_a->Sample(seeds, &rng_a, nullptr);
  const SampleBlock b = sampler_b->Sample(seeds, &rng_b, nullptr);
  ASSERT_EQ(a.vertices().size(), b.vertices().size());
  EXPECT_TRUE(std::equal(a.vertices().begin(), a.vertices().end(), b.vertices().begin()));
  for (std::size_t h = 0; h < a.num_hops(); ++h) {
    EXPECT_EQ(a.hop(h).src_local, b.hop(h).src_local);
    EXPECT_EQ(a.hop(h).dst_local, b.hop(h).dst_local);
  }
}

TEST_P(BlockInvariantTest, StatsMatchBlockContents) {
  const Dataset& ds = Products();
  const EdgeWeights weights = ds.MakeWeights();
  auto sampler = SamplerFor(GetParam(), ds, &weights);
  Rng rng(7);
  const VertexId seeds[] = {3, 33, 333};
  SamplerStats stats;
  const SampleBlock block = sampler->Sample(seeds, &rng, &stats);
  std::size_t edges = 0;
  for (std::size_t h = 0; h < block.num_hops(); ++h) {
    edges += block.hop(h).size();
  }
  EXPECT_EQ(stats.sampled_neighbors, edges);
  EXPECT_GT(stats.vertices_expanded, 0u);
}

INSTANTIATE_TEST_SUITE_P(Kernels, BlockInvariantTest,
                         ::testing::Values(SamplingAlgorithm::kKhopUniform,
                                           SamplingAlgorithm::kKhopReservoir,
                                           SamplingAlgorithm::kKhopWeighted,
                                           SamplingAlgorithm::kRandomWalk,
                                           SamplingAlgorithm::kSubgraph));

// --- Cache prefix property across policies --------------------------------------

class CachePrefixTest : public ::testing::TestWithParam<int> {};

TEST_P(CachePrefixTest, LargerRatioIsSuperset) {
  const Dataset& ds = Products();
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  CachePolicyContext context;
  context.graph = &ds.graph;
  context.train_set = &ds.train_set;
  context.batch_size = ds.batch_size;
  context.seed = 5;
  context.sampler_factory = [&ds, &workload] { return MakeSampler(workload, ds, nullptr); };
  std::unique_ptr<CachePolicy> policy;
  switch (GetParam()) {
    case 0:
      policy = MakeRandomPolicy();
      break;
    case 1:
      policy = MakeDegreePolicy();
      break;
    default:
      policy = MakePreSamplingPolicy(1);
      break;
  }
  const auto ranked = policy->Rank(context);
  const FeatureCache small = FeatureCache::Load(ranked, 0.1, ds.graph.num_vertices(), 16);
  const FeatureCache large = FeatureCache::Load(ranked, 0.3, ds.graph.num_vertices(), 16);
  for (VertexId v = 0; v < ds.graph.num_vertices(); ++v) {
    if (small.Contains(v)) {
      EXPECT_TRUE(large.Contains(v)) << "prefix property violated at " << v;
    }
  }
  EXPECT_GT(large.num_cached(), small.num_cached());
}

INSTANTIATE_TEST_SUITE_P(Policies, CachePrefixTest, ::testing::Values(0, 1, 2));

// --- Scheduler formula sweep -------------------------------------------------------

struct SchedulerCase {
  int gpus;
  double t_sample;
  double t_train;
};

class SchedulerSweepTest : public ::testing::TestWithParam<SchedulerCase> {};

TEST_P(SchedulerSweepTest, AllocationIsSaneAndMatchesFormula) {
  const auto [gpus, t_sample, t_train] = GetParam();
  const ScheduleDecision d = DecideAllocation(gpus, t_sample, t_train);
  EXPECT_GE(d.num_samplers, 1);
  EXPECT_LE(d.num_samplers, gpus);
  EXPECT_EQ(d.num_samplers + d.num_trainers, gpus);
  const double k = t_train / t_sample;
  const int expected = std::min(
      gpus, std::max(1, static_cast<int>(std::ceil(static_cast<double>(gpus) / (k + 1)))));
  EXPECT_EQ(d.num_samplers, expected);
}

TEST_P(SchedulerSweepTest, MoreTrainTimeNeverAddsSamplers) {
  const auto [gpus, t_sample, t_train] = GetParam();
  const ScheduleDecision base = DecideAllocation(gpus, t_sample, t_train);
  const ScheduleDecision slower = DecideAllocation(gpus, t_sample, t_train * 2.0);
  EXPECT_LE(slower.num_samplers, base.num_samplers);
}

INSTANTIATE_TEST_SUITE_P(Grid, SchedulerSweepTest,
                         ::testing::Values(SchedulerCase{1, 1.0, 1.0},
                                           SchedulerCase{2, 1.0, 0.1},
                                           SchedulerCase{4, 2.0, 3.0},
                                           SchedulerCase{8, 1.0, 4.0},
                                           SchedulerCase{8, 5.0, 1.0},
                                           SchedulerCase{16, 1.0, 7.0}));

// --- Engine monotonicity in cache ratio ----------------------------------------------

class CacheRatioEngineTest : public ::testing::TestWithParam<double> {};

TEST_P(CacheRatioEngineTest, MoreCacheNeverSlowsTheEpoch) {
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  EngineOptions options;
  options.num_gpus = 2;
  options.num_samplers = 1;
  options.dynamic_switching = false;
  options.gpu_memory = 8 * kMiB;
  options.epochs = 1;
  options.policy = CachePolicyKind::kPreSC1;

  options.cache_ratio_override = GetParam();
  Engine lean(Products(), workload, options);
  options.cache_ratio_override = GetParam() + 0.2;
  Engine rich(Products(), workload, options);
  const RunReport lean_report = lean.Run();
  const RunReport rich_report = rich.Run();
  ASSERT_FALSE(lean_report.oom);
  ASSERT_FALSE(rich_report.oom);
  EXPECT_LE(rich_report.epochs[0].stage.extract, lean_report.epochs[0].stage.extract + 1e-9);
  EXPECT_LE(rich_report.AvgEpochTime(), lean_report.AvgEpochTime() + 1e-9);
  EXPECT_GE(rich_report.epochs[0].extract.HitRate() + 1e-9,
            lean_report.epochs[0].extract.HitRate());
}

INSTANTIATE_TEST_SUITE_P(Ratios, CacheRatioEngineTest, ::testing::Values(0.0, 0.1, 0.3, 0.6));

// --- Extraction conservation over datasets ----------------------------------------------

class ExtractionConservationTest : public ::testing::TestWithParam<DatasetId> {};

TEST_P(ExtractionConservationTest, CountsAndBytesBalance) {
  const Dataset ds = MakeDataset(GetParam(), 0.05, 11);
  const Workload workload = StandardWorkload(GnnModelKind::kGraphSage);
  CachePolicyContext context;
  context.graph = &ds.graph;
  context.train_set = &ds.train_set;
  context.batch_size = ds.batch_size;
  context.seed = 11;
  const auto ranked = MakeDegreePolicy()->Rank(context);
  const FeatureCache cache =
      FeatureCache::Load(ranked, 0.2, ds.graph.num_vertices(), ds.feature_dim);
  auto sampler = MakeSampler(workload, ds, nullptr);
  const EpochExtractionResult result = MeasureEpochExtraction(
      sampler.get(), ds.train_set, ds.batch_size, cache, ds.feature_dim, 77);
  EXPECT_EQ(result.batches, ds.BatchesPerEpoch());
  EXPECT_GE(result.distinct_vertices, result.cache_hits);
  EXPECT_EQ(result.bytes_from_host,
            (result.distinct_vertices - result.cache_hits) * ds.feature_dim * sizeof(float));
}

INSTANTIATE_TEST_SUITE_P(Datasets, ExtractionConservationTest,
                         ::testing::Values(DatasetId::kProducts, DatasetId::kTwitter,
                                           DatasetId::kPapers, DatasetId::kUk));

}  // namespace
}  // namespace gnnlab
