// Tests for the paper's §8 extension features: self-reliant partitioning
// and partition cycling, ClusterGCN-style subgraph sampling, bounded-
// staleness asynchronous training, and graph serialization.
#include <cstdio>
#include <set>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/partition.h"

namespace gnnlab {
namespace {

const Dataset& Products() {
  static const Dataset* ds = new Dataset(MakeDataset(DatasetId::kProducts, 0.1, 42));
  return *ds;
}
const Dataset& Twitter() {
  static const Dataset* ds = new Dataset(MakeDataset(DatasetId::kTwitter, 0.05, 42));
  return *ds;
}

// --- Self-reliant partitioning -----------------------------------------------

TEST(PartitionTest, ShardsCoverTrainingSet) {
  const Dataset& ds = Products();
  const auto partitions = BuildSelfReliantPartitions(ds.graph, ds.train_set, 4, 3);
  ASSERT_EQ(partitions.size(), 4u);
  std::size_t covered = 0;
  for (const auto& partition : partitions) {
    covered += partition.train_shard.size();
  }
  EXPECT_EQ(covered, ds.train_set.size());
}

TEST(PartitionTest, ClosureContainsShardAndNeighbors) {
  // Path graph 0 -> 1 -> 2 -> 3: the 2-hop closure of {0} is {0, 1, 2}.
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  const CsrGraph g = std::move(builder).Build();
  const TrainingSet ts({0});
  const auto partitions = BuildSelfReliantPartitions(g, ts, 1, 2);
  ASSERT_EQ(partitions.size(), 1u);
  EXPECT_EQ(partitions[0].closure, (std::vector<VertexId>{0, 1, 2}));
  // Edges sourced in the closure: 0->1, 1->2, and 2->3 (the frontier
  // vertex's adjacency must be resident to sample its neighbors).
  EXPECT_EQ(partitions[0].closure_edges, 3u);
}

TEST(PartitionTest, DeeperHopsGrowClosure) {
  const Dataset& ds = Products();
  const auto shallow = BuildSelfReliantPartitions(ds.graph, ds.train_set, 2, 1);
  const auto deep = BuildSelfReliantPartitions(ds.graph, ds.train_set, 2, 3);
  EXPECT_GE(deep[0].closure.size(), shallow[0].closure.size());
}

TEST(PartitionTest, PowerLawClosureSharesBarelyShrink) {
  // The paper's §8 argument: more partitions do NOT proportionally shrink
  // each partition's footprint on a power-law graph.
  const Dataset& tw = Twitter();
  const auto two = BuildSelfReliantPartitions(tw.graph, tw.train_set, 2, 3);
  const auto eight = BuildSelfReliantPartitions(tw.graph, tw.train_set, 8, 3);
  const double share2 = MeanClosureShare(two, tw.graph.num_vertices());
  const double share8 = MeanClosureShare(eight, tw.graph.num_vertices());
  EXPECT_GT(share8, 0.5 * share2);  // Far from the 1/4 ideal shrink.
  EXPECT_GT(share8, 0.3);           // Each of 8 shards still holds a large chunk.
}

TEST(PartitionTest, MeanClosureShareEmptyIsZero) {
  EXPECT_DOUBLE_EQ(MeanClosureShare({}, 100), 0.0);
}

TEST(PartitionCycleTest, ShardCountCoversBudget) {
  const Dataset& ds = Products();
  const ByteCount topo = ds.TopologyBytes();
  const PartitionCyclePlan plan = PlanPartitionCycle(ds.graph, topo / 3 + 1, 3);
  EXPECT_EQ(plan.num_partitions, 3);
  EXPECT_LE(plan.bytes_per_partition, topo / 3 + 1);
  EXPECT_EQ(plan.loads_per_epoch, 9u);
  EXPECT_GT(plan.BytesPerEpoch(), topo);  // Reloads exceed a one-time load.
}

TEST(PartitionCycleTest, WholeGraphFitsMeansOneShard) {
  const Dataset& ds = Products();
  const PartitionCyclePlan plan = PlanPartitionCycle(ds.graph, ds.TopologyBytes() + 1, 3);
  EXPECT_EQ(plan.num_partitions, 1);
}

// --- Subgraph (ClusterGCN-style) sampling -------------------------------------

TEST(SubgraphSamplerTest, NoExpansionBeyondSeeds) {
  const Dataset& ds = Products();
  auto sampler = MakeSubgraphSampler(ds.graph, 3);
  Rng rng(1);
  const VertexId seeds[] = {0, 1, 2, 3, 4, 5, 6, 7};
  const SampleBlock block = sampler->Sample(seeds, &rng, nullptr);
  EXPECT_EQ(block.vertices().size(), 8u);  // Nothing outside the batch.
  EXPECT_EQ(block.num_hops(), 3u);
  EXPECT_EQ(sampler->algorithm(), SamplingAlgorithm::kSubgraph);
}

TEST(SubgraphSamplerTest, EdgesAreInduced) {
  // Triangle 0-1-2 (directed both ways) plus an outside vertex 3.
  GraphBuilder builder(4);
  builder.set_symmetrize(true);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(0, 3);  // 3 is outside the batch.
  const CsrGraph g = std::move(builder).Build();
  auto sampler = MakeSubgraphSampler(g, 1);
  Rng rng(2);
  const VertexId seeds[] = {0, 1, 2};
  const SampleBlock block = sampler->Sample(seeds, &rng, nullptr);
  // Induced edges: 0<->1, 1<->2 = 4 directed edges; 0->3 excluded.
  EXPECT_EQ(block.hop(0).size(), 4u);
  for (const LocalId src : block.hop(0).src_local) {
    EXPECT_LT(block.vertices()[src], 3u);
  }
}

TEST(SubgraphSamplerTest, LayersShareTheInducedEdgeSet) {
  const Dataset& ds = Products();
  auto sampler = MakeSubgraphSampler(ds.graph, 2);
  Rng rng(3);
  const VertexId seeds[] = {10, 11, 12, 13};
  const SampleBlock block = sampler->Sample(seeds, &rng, nullptr);
  EXPECT_EQ(block.hop(0).size(), block.hop(1).size());
}

TEST(SubgraphSamplerTest, FootprintIsExactlyTheTrainingSet) {
  // Each training vertex is visited once per epoch as a seed (plus induced
  // edge endpoints, all inside the training set) — the property that mutes
  // PreSC (paper §8).
  const Dataset& ds = Products();
  auto sampler = MakeSubgraphSampler(ds.graph, 2);
  Footprint fp(ds.graph.num_vertices());
  Rng shuffle(4);
  Rng rng(5);
  EpochBatches batches(ds.train_set, ds.batch_size, &shuffle);
  while (batches.HasNext()) {
    fp.Accumulate(sampler->Sample(batches.NextBatch(), &rng, nullptr));
  }
  const std::set<VertexId> train(ds.train_set.vertices().begin(),
                                 ds.train_set.vertices().end());
  for (VertexId v = 0; v < ds.graph.num_vertices(); ++v) {
    if (fp.counts()[v] > 0) {
      EXPECT_TRUE(train.count(v) > 0) << "vertex " << v << " outside the training set";
    }
  }
}

TEST(ClusterGcnWorkloadTest, RunsThroughTheEngine) {
  const Workload workload = ClusterGcnWorkload();
  EngineOptions options;
  options.num_gpus = 2;
  options.num_samplers = 1;
  options.gpu_memory = 8 * kMiB;
  options.epochs = 2;
  Engine engine(Products(), workload, options);
  const RunReport report = engine.Run();
  ASSERT_FALSE(report.oom) << report.oom_detail;
  EXPECT_EQ(report.epochs[0].batches, Products().BatchesPerEpoch());
  // Sampling is trivial relative to training: highly skewed K (paper §8).
  EXPECT_GT(report.k_ratio, 3.0);
}

// --- Asynchronous (bounded staleness) training ---------------------------------

TEST(AsyncTrainingTest, ConvergesAndUpdatesPerBatch) {
  const Dataset& ds = Products();
  Rng rng(3);
  const auto labels = MakeCommunityLabels(ds.graph.num_vertices(), 128, 8);
  const FeatureStore features =
      FeatureStore::Clustered(ds.graph.num_vertices(), 16, labels, 8, 0.3, &rng);
  std::vector<VertexId> eval;
  for (VertexId v = 0; v < 200; ++v) {
    eval.push_back(v);
  }
  RealTrainingOptions real;
  real.features = &features;
  real.labels = labels;
  real.eval_vertices = eval;
  real.num_classes = 8;
  real.hidden_dim = 16;

  const Workload workload = StandardWorkload(GnnModelKind::kGraphSage);
  EngineOptions options;
  options.num_gpus = 4;
  options.gpu_memory = 8 * kMiB;
  options.epochs = 4;
  options.real = &real;
  options.async_updates = true;
  options.staleness_bound = 2;
  Engine engine(ds, workload, options);
  const RunReport report = engine.Run();
  ASSERT_FALSE(report.oom);

  // Async mode applies one master update per mini-batch.
  EXPECT_EQ(report.epochs[0].gradient_updates, report.epochs[0].batches);
  // And it still learns.
  EXPECT_LT(report.epochs.back().mean_loss, report.epochs.front().mean_loss);
  EXPECT_GT(report.epochs.back().eval_accuracy, 0.2);
}

TEST(AsyncTrainingTest, DeterministicAcrossRuns) {
  const Dataset& ds = Products();
  Rng rng(9);
  const auto labels = MakeCommunityLabels(ds.graph.num_vertices(), 128, 4);
  const FeatureStore features =
      FeatureStore::Clustered(ds.graph.num_vertices(), 8, labels, 4, 0.3, &rng);
  RealTrainingOptions real;
  real.features = &features;
  real.labels = labels;
  real.num_classes = 4;
  real.hidden_dim = 8;
  const Workload workload = StandardWorkload(GnnModelKind::kGraphSage);
  EngineOptions options;
  options.num_gpus = 3;
  options.gpu_memory = 8 * kMiB;
  options.epochs = 2;
  options.real = &real;
  options.async_updates = true;
  Engine a(ds, workload, options);
  Engine b(ds, workload, options);
  EXPECT_DOUBLE_EQ(a.Run().epochs.back().mean_loss, b.Run().epochs.back().mean_loss);
}

// --- Graph I/O -------------------------------------------------------------------

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(GraphIoTest, RoundTripPreservesGraph) {
  const Dataset& ds = Products();
  const std::string path = TempPath("roundtrip.gnng");
  ASSERT_TRUE(SaveCsrGraph(ds.graph, path));
  const auto loaded = LoadCsrGraph(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_vertices(), ds.graph.num_vertices());
  EXPECT_EQ(loaded->num_edges(), ds.graph.num_edges());
  for (VertexId v = 0; v < ds.graph.num_vertices(); v += 97) {
    const auto a = ds.graph.Neighbors(v);
    const auto b = loaded->Neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
  std::remove(path.c_str());
}

TEST(GraphIoTest, EmptyGraphRoundTrips) {
  GraphBuilder builder(3);
  const CsrGraph g = std::move(builder).Build();
  const std::string path = TempPath("empty.gnng");
  ASSERT_TRUE(SaveCsrGraph(g, path));
  const auto loaded = LoadCsrGraph(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_vertices(), 3u);
  EXPECT_EQ(loaded->num_edges(), 0u);
  std::remove(path.c_str());
}

TEST(GraphIoTest, MissingFileFailsCleanly) {
  EXPECT_FALSE(LoadCsrGraph(TempPath("does-not-exist.gnng")).has_value());
}

TEST(GraphIoTest, BadMagicRejected) {
  const std::string path = TempPath("bad.gnng");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a graph file at all, padding padding", f);
  std::fclose(f);
  EXPECT_FALSE(LoadCsrGraph(path).has_value());
  std::remove(path.c_str());
}

TEST(GraphIoTest, TruncatedFileRejected) {
  const Dataset& ds = Products();
  const std::string path = TempPath("trunc.gnng");
  ASSERT_TRUE(SaveCsrGraph(ds.graph, path));
  // Truncate to half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  EXPECT_FALSE(LoadCsrGraph(path).has_value());
  std::remove(path.c_str());
}

TEST(SamplingAlgorithmNameTest, Subgraph) {
  EXPECT_STREQ(SamplingAlgorithmName(SamplingAlgorithm::kSubgraph), "subgraph");
}

}  // namespace
}  // namespace gnnlab
