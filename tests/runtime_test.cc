// Tests for src/runtime: the bounded MPMC queue (GNNLab's threaded global
// queue) and the thread pool, including multi-threaded stress checks.
#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/mpmc_queue.h"
#include "runtime/thread_pool.h"

namespace gnnlab {
namespace {

TEST(MpmcQueueTest, FifoSingleThread) {
  MpmcQueue<int> q(10);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_TRUE(q.Push(3));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_EQ(q.Pop().value(), 3);
}

TEST(MpmcQueueTest, TryPushRespectsCapacity) {
  MpmcQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_EQ(q.size(), 2u);
}

TEST(MpmcQueueTest, TryPopEmptyReturnsNullopt) {
  MpmcQueue<int> q(2);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(MpmcQueueTest, CloseDrainsThenEnds) {
  MpmcQueue<int> q(4);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.Push(3));
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(MpmcQueueTest, CloseWakesBlockedConsumer) {
  MpmcQueue<int> q(4);
  std::thread consumer([&] { EXPECT_FALSE(q.Pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  consumer.join();
}

TEST(MpmcQueueTest, BlockedProducerUnblocksOnPop) {
  MpmcQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(2));  // Blocks until the pop below.
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.Pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.Pop().value(), 2);
}

TEST(MpmcQueueTest, MultiProducerMultiConsumerDeliversEverything) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  MpmcQueue<int> q(64);
  std::atomic<long long> sum{0};
  std::atomic<int> received{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum += *v;
        ++received;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads[p].join();
  }
  q.Close();
  for (int c = 0; c < kConsumers; ++c) {
    threads[kProducers + c].join();
  }
  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(MpmcQueueTest, MovesNonCopyableValues) {
  MpmcQueue<std::unique_ptr<int>> q(4);
  ASSERT_TRUE(q.Push(std::make_unique<int>(42)));
  auto v = q.Pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 42);
}

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { ++counter; });
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(64, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, DestructorDrainsPendingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++counter;
      });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, NumThreads) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
}

}  // namespace
}  // namespace gnnlab
