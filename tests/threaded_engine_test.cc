// Tests for the threaded (real-concurrency) GNNLab runtime: epoch
// completion, exactly-once training, deterministic sampling counts,
// convergence, dynamic switching, the zero-Trainer degenerate mode, and the
// wall-clock telemetry (tracer spans, metric registry, snapshot series).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "core/threaded_engine.h"
#include "obs/health.h"
#include "report/json.h"
#include "report/json_parse.h"

namespace gnnlab {
namespace {

struct Fixture {
  Dataset dataset = MakeDataset(DatasetId::kProducts, 0.1, 42);
  std::vector<std::uint32_t> labels;
  FeatureStore features;
  std::vector<VertexId> eval;
  RealTrainingOptions real;

  Fixture() {
    Rng rng(3);
    labels = MakeCommunityLabels(dataset.graph.num_vertices(), 128, 8);
    features = FeatureStore::Clustered(dataset.graph.num_vertices(), 16, labels, 8, 0.3, &rng);
    for (VertexId v = 0; v < 200; ++v) {
      eval.push_back(v);
    }
    real.features = &features;
    real.labels = labels;
    real.eval_vertices = eval;
    real.num_classes = 8;
    real.hidden_dim = 16;
  }
};

Fixture& SharedFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

ThreadedEngineOptions BaseOptions(const Fixture& fixture) {
  ThreadedEngineOptions options;
  options.num_samplers = 1;
  options.num_trainers = 2;
  options.epochs = 2;
  options.seed = 1;
  options.real = &fixture.real;
  return options;
}

TEST(ThreadedEngineTest, TrainsEveryBatchExactlyOnce) {
  Fixture& fixture = SharedFixture();
  ThreadedEngine engine(fixture.dataset, StandardWorkload(GnnModelKind::kGraphSage),
                        BaseOptions(fixture));
  const ThreadedRunReport report = engine.Run();
  ASSERT_EQ(report.epochs.size(), 2u);
  for (const ThreadedEpochReport& epoch : report.epochs) {
    EXPECT_EQ(epoch.batches, fixture.dataset.BatchesPerEpoch());
    EXPECT_EQ(epoch.gradient_updates, epoch.batches);  // Async: one per batch.
    EXPECT_GT(epoch.wall_seconds, 0.0);
    EXPECT_EQ(epoch.extract.distinct_vertices,
              epoch.extract.cache_hits + epoch.extract.host_misses);
  }
  EXPECT_GT(report.cache_ratio, 0.0);
}

TEST(ThreadedEngineTest, SampledCountsDeterministicAcrossRuns) {
  // Thread interleavings change update ORDER but not WHAT is sampled.
  Fixture& fixture = SharedFixture();
  const Workload workload = StandardWorkload(GnnModelKind::kGraphSage);
  ThreadedEngine a(fixture.dataset, workload, BaseOptions(fixture));
  ThreadedEngine b(fixture.dataset, workload, BaseOptions(fixture));
  const ThreadedRunReport ra = a.Run();
  const ThreadedRunReport rb = b.Run();
  for (std::size_t e = 0; e < ra.epochs.size(); ++e) {
    EXPECT_EQ(ra.epochs[e].extract.distinct_vertices, rb.epochs[e].extract.distinct_vertices);
    EXPECT_EQ(ra.epochs[e].extract.cache_hits, rb.epochs[e].extract.cache_hits);
    EXPECT_EQ(ra.epochs[e].extract.bytes_from_host, rb.epochs[e].extract.bytes_from_host);
  }
}

TEST(ThreadedEngineTest, LearnsOverEpochs) {
  Fixture& fixture = SharedFixture();
  ThreadedEngineOptions options = BaseOptions(fixture);
  options.epochs = 4;
  ThreadedEngine engine(fixture.dataset, StandardWorkload(GnnModelKind::kGraphSage), options);
  const ThreadedRunReport report = engine.Run();
  EXPECT_LT(report.epochs.back().mean_loss, report.epochs.front().mean_loss);
  EXPECT_GT(report.epochs.back().eval_accuracy, 0.2);  // >> 1/8 random.
}

TEST(ThreadedEngineTest, ZeroTrainersDrainsViaSwitching) {
  // The single-GPU mode on threads: the Sampler thread finishes its epoch,
  // then becomes the (only) Trainer via dynamic switching.
  Fixture& fixture = SharedFixture();
  ThreadedEngineOptions options = BaseOptions(fixture);
  options.num_samplers = 1;
  options.num_trainers = 0;
  options.queue_capacity = 4096;  // Holds the whole epoch, as in §7.9.
  ThreadedEngine engine(fixture.dataset, StandardWorkload(GnnModelKind::kGraphSage), options);
  const ThreadedRunReport report = engine.Run();
  for (const ThreadedEpochReport& epoch : report.epochs) {
    EXPECT_EQ(epoch.switched_batches, epoch.batches);
  }
}

TEST(ThreadedEngineTest, MultipleSamplersAndTrainers) {
  Fixture& fixture = SharedFixture();
  ThreadedEngineOptions options = BaseOptions(fixture);
  options.num_samplers = 2;
  options.num_trainers = 3;
  options.epochs = 1;
  ThreadedEngine engine(fixture.dataset, StandardWorkload(GnnModelKind::kGcn), options);
  const ThreadedRunReport report = engine.Run();
  EXPECT_EQ(report.epochs[0].batches, fixture.dataset.BatchesPerEpoch());
}

TEST(ThreadedEngineTest, CachePolicyAffectsHitRate) {
  Fixture& fixture = SharedFixture();
  const Workload workload = StandardWorkload(GnnModelKind::kGraphSage);
  ThreadedEngineOptions options = BaseOptions(fixture);
  options.epochs = 1;
  options.cache_ratio = 0.1;
  options.policy = CachePolicyKind::kPreSC1;
  ThreadedEngine presc(fixture.dataset, workload, options);
  options.policy = CachePolicyKind::kRandom;
  ThreadedEngine random(fixture.dataset, workload, options);
  EXPECT_GT(presc.Run().epochs[0].extract.HitRate(),
            random.Run().epochs[0].extract.HitRate());
}

TEST(ThreadedEngineTest, NoCacheMeansAllMisses) {
  Fixture& fixture = SharedFixture();
  ThreadedEngineOptions options = BaseOptions(fixture);
  options.epochs = 1;
  options.policy = CachePolicyKind::kNone;
  ThreadedEngine engine(fixture.dataset, StandardWorkload(GnnModelKind::kGraphSage), options);
  const ThreadedRunReport report = engine.Run();
  EXPECT_DOUBLE_EQ(report.cache_ratio, 0.0);
  EXPECT_EQ(report.epochs[0].extract.cache_hits, 0u);
}

TEST(ThreadedEngineTest, ReportCarriesStageLatenciesAndSnapshots) {
  Fixture& fixture = SharedFixture();
  ThreadedEngineOptions options = BaseOptions(fixture);
  options.epochs = 1;
  options.snapshot_interval_seconds = 0.005;
  ThreadedEngine engine(fixture.dataset, StandardWorkload(GnnModelKind::kGraphSage),
                        options);
  const ThreadedRunReport report = engine.Run();
  const ThreadedEpochReport& epoch = report.epochs[0];
  // One observation per batch for the per-batch stages.
  EXPECT_EQ(epoch.latency.sample.count, epoch.batches);
  EXPECT_EQ(epoch.latency.copy.count, epoch.batches);
  EXPECT_EQ(epoch.latency.extract.count, epoch.batches);
  EXPECT_EQ(epoch.latency.train.count, epoch.batches);
  EXPECT_GT(epoch.latency.train.p50, 0.0);
  EXPECT_GE(epoch.latency.train.p99, epoch.latency.train.p50);
  EXPECT_GE(epoch.latency.train.max, epoch.latency.train.p99);
  // The Stop()-time sample guarantees a non-empty series even for a short
  // run, and its cumulative counters cover the whole epoch.
  ASSERT_FALSE(report.snapshots.empty());
#if GNNLAB_OBS_ENABLED
  EXPECT_EQ(report.snapshots.back().cache_hits + report.snapshots.back().cache_misses,
            epoch.extract.distinct_vertices);
#endif

  // The report JSON round-trips through the parser with the new fields.
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(ThreadedRunReportToJson(report), &root, &error)) << error;
  EXPECT_NE(root.Find("epochs")->array[0].Find("latency")->Find("train"), nullptr);
  EXPECT_EQ(root.Find("snapshots")->array.size(), report.snapshots.size());
}

#if GNNLAB_OBS_ENABLED
TEST(ThreadedEngineTest, TracerRecordsAllFiveStageCategories) {
  Fixture& fixture = SharedFixture();
  RuntimeTracer tracer;
  MetricRegistry registry;
  ThreadedEngineOptions options = BaseOptions(fixture);
  options.epochs = 1;
  options.tracer = &tracer;
  options.metrics = &registry;
  ThreadedEngine engine(fixture.dataset, StandardWorkload(GnnModelKind::kGraphSage),
                        options);
  const ThreadedRunReport report = engine.Run();
  const std::size_t batches = report.epochs[0].batches;

  std::set<std::string> lanes;
  std::set<std::string> categories;
  std::size_t train_spans = 0;
  for (const TraceSpan& span : tracer.Collect()) {
    lanes.insert(span.lane);
    categories.insert(span.category);
    EXPECT_LE(span.begin, span.end);
    if (span.category == "train") {
      ++train_spans;
    }
  }
  EXPECT_EQ(categories,
            (std::set<std::string>{"sample", "mark", "copy", "extract", "train"}));
  EXPECT_EQ(train_spans, batches);
  EXPECT_TRUE(lanes.count("sampler0"));
  EXPECT_TRUE(lanes.count("trainer0"));

  // The trace JSON is well-formed and keeps the per-thread lanes.
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(tracer.ToChromeJson(), &root, &error)) << error;
  EXPECT_GE(root.Find("traceEvents")->array.size(), tracer.size());

  // The external registry saw the run: every batch was enqueued, the mark
  // stage counted every sampled vertex, and the extractor's counters agree
  // with the report's.
  EXPECT_EQ(registry.FindCounter(kMetricQueueEnqueued)->value(), batches);
  EXPECT_EQ(registry.FindCounter(kMetricCacheHits)->value(),
            report.epochs[0].extract.cache_hits);
  EXPECT_EQ(registry.FindCounter(kMetricMarkTotal)->value(),
            report.epochs[0].extract.distinct_vertices);
  EXPECT_EQ(registry.FindHistogram("stage.train")->count(), batches);
}

TEST(ThreadedEngineTest, FlowDagCoversEveryBatchExactlyOncePerStage) {
  Fixture& fixture = SharedFixture();
  FlowTracer flows;
  ThreadedEngineOptions options = BaseOptions(fixture);
  options.flows = &flows;
  ThreadedEngine engine(fixture.dataset, StandardWorkload(GnnModelKind::kGraphSage),
                        options);
  const ThreadedRunReport report = engine.Run();
  std::size_t total_batches = 0;
  for (const ThreadedEpochReport& epoch : report.epochs) {
    total_batches += epoch.batches;
  }

  // Per stage, per flow id: occurrence count. Every batch must appear
  // exactly once in each per-batch stage — no lost or duplicated flows.
  std::map<std::string, std::map<FlowId, std::size_t>> stage_flows;
  for (const FlowStep& step : flows.Collect()) {
    EXPECT_LE(step.begin, step.end);
    EXPECT_GE(step.stall, 0.0);
    EXPECT_LE(step.stall, step.end - step.begin + 1e-12);
    ++stage_flows[step.stage][step.flow];
  }
  for (const char* stage : {"sample", "mark", "copy", "extract", "train"}) {
    const auto& per_flow = stage_flows[stage];
    EXPECT_EQ(per_flow.size(), total_batches) << stage;
    for (const auto& [flow, count] : per_flow) {
      EXPECT_EQ(count, 1u) << stage << " flow epoch=" << FlowEpoch(flow)
                           << " batch=" << FlowBatch(flow);
    }
  }
  // Queue-wait edges are conditional (only when the pop observes the wait),
  // but never duplicated.
  for (const auto& [flow, count] : stage_flows["queue_wait"]) {
    EXPECT_EQ(count, 1u) << "queue_wait flow " << flow;
  }

  // The fold over those DAGs lands in the report with fractions summing to 1.
  EXPECT_EQ(report.attribution.flows, total_batches);
  double fraction_sum = 0.0;
  const StageBlame fractions = report.attribution.Fractions();
  for (std::size_t i = 0; i < kNumBlameStages; ++i) {
    EXPECT_GE(fractions.Component(i), 0.0);
    fraction_sum += fractions.Component(i);
  }
  EXPECT_NEAR(fraction_sum, 1.0, 1e-6);
  for (const ThreadedEpochReport& epoch : report.epochs) {
    EXPECT_EQ(epoch.attribution.flows, epoch.batches);
  }
}

TEST(ThreadedEngineTest, StandbyDecisionsAreLoggedAndHealthDriven) {
  // All-switching config: the Sampler drains its own queue as a standby
  // Trainer, so every batch rides a logged fetch decision.
  Fixture& fixture = SharedFixture();
  MetricRegistry registry;
  HealthMonitor::Options health_options;
  AlertRule rule;
  ASSERT_TRUE(ParseAlertRule("backlog: queue.depth > 0", &rule));
  health_options.rules.push_back(rule);
  HealthMonitor health(&registry, health_options);

  ThreadedEngineOptions options = BaseOptions(fixture);
  options.num_samplers = 1;
  options.num_trainers = 0;
  options.queue_capacity = 4096;
  options.epochs = 1;
  options.metrics = &registry;
  options.health = &health;
  ThreadedEngine engine(fixture.dataset, StandardWorkload(GnnModelKind::kGraphSage),
                        options);
  const ThreadedRunReport report = engine.Run();

  ASSERT_FALSE(report.switch_decisions.empty());
  std::size_t fetched = 0;
  for (const SwitchDecision& d : report.switch_decisions) {
    EXPECT_GE(d.ts, 0.0);
    fetched += d.fetched ? 1 : 0;
    if (d.pressure_override) {
      // Overrides only happen when the queue-pressure rule was firing.
      EXPECT_NE(d.alerts.find("backlog"), std::string::npos);
    }
  }
  EXPECT_EQ(fetched, report.epochs[0].batches);

  // The rule's evaluations are visible in the registry (and hence the
  // Prometheus exposition) as an alert gauge.
  EXPECT_NE(registry.FindGauge("alert.backlog"), nullptr);
  EXPECT_NE(health.Exposition().find("gnnlab_alert_backlog"), std::string::npos);
  // Attribution gauges were published for blame-based alerting.
  EXPECT_NE(registry.FindGauge("attribution.queue_wait"), nullptr);
}
#endif

// Option validation happens at Run() entry (one clear diagnostic instead of
// a downstream crash), so construction alone must not die.
TEST(ThreadedEngineDeathTest, RequiresRealTraining) {
  Fixture& fixture = SharedFixture();
  ThreadedEngineOptions options;
  options.real = nullptr;
  ThreadedEngine engine(fixture.dataset, StandardWorkload(GnnModelKind::kGcn), options);
  EXPECT_DEATH({ engine.Run(); }, "trains for real");
}

TEST(ThreadedEngineDeathTest, ZeroTrainersWithoutSwitching) {
  Fixture& fixture = SharedFixture();
  ThreadedEngineOptions options = BaseOptions(fixture);
  options.num_trainers = 0;
  options.dynamic_switching = false;
  ThreadedEngine engine(fixture.dataset, StandardWorkload(GnnModelKind::kGcn), options);
  EXPECT_DEATH({ engine.Run(); }, "requires dynamic switching");
}

}  // namespace
}  // namespace gnnlab
