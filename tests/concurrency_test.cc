// Concurrency battery for the runtime primitives and the parallel hot
// paths: MpmcQueue under producer/consumer stress, ThreadPool::ParallelFor
// edge cases, shutdown contracts, worker-count determinism of the parallel
// Extract and k-hop expansion, and the ThreadedEngine at queue_capacity=1.
// Designed to run clean under -DGNNLAB_SANITIZE=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "core/threaded_engine.h"
#include "feature/extractor.h"
#include "feature/feature_store.h"
#include "graph/edge_weights.h"
#include "graph/generators.h"
#include "runtime/mpmc_queue.h"
#include "runtime/thread_pool.h"
#include "sampling/sampler.h"

namespace gnnlab {
namespace {

// --- MpmcQueue stress -------------------------------------------------------

struct Item {
  int producer;
  int seq;
};

TEST(MpmcQueueStressTest, ManyProducersManyConsumers) {
  constexpr int kProducers = 8;
  constexpr int kConsumers = 8;
  constexpr int kPerProducer = 2000;
  static constexpr std::size_t kCapacity = 16;
  MpmcQueue<Item> queue(kCapacity);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int s = 0; s < kPerProducer; ++s) {
        ASSERT_TRUE(queue.Push({p, s}));
      }
    });
  }

  std::vector<std::vector<Item>> consumed(kConsumers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&queue, &consumed, c] {
      while (auto item = queue.Pop()) {
        // size() is a momentary snapshot, but it can never legitimately
        // exceed the bound.
        EXPECT_LE(queue.size(), kCapacity);
        consumed[c].push_back(*item);
      }
    });
  }

  for (auto& t : producers) {
    t.join();
  }
  queue.Close();
  for (auto& t : consumers) {
    t.join();
  }

  // No lost or duplicated items: every (producer, seq) pair arrives exactly
  // once across all consumers.
  std::vector<std::vector<int>> seen(kProducers, std::vector<int>(kPerProducer, 0));
  std::size_t total = 0;
  for (const auto& items : consumed) {
    total += items.size();
    // FIFO per producer within each consumer: a single producer's items are
    // pushed in seq order, so any one consumer must observe an increasing
    // seq subsequence per producer.
    std::map<int, int> last_seq;
    for (const Item& item : items) {
      ++seen[item.producer][item.seq];
      auto it = last_seq.find(item.producer);
      if (it != last_seq.end()) {
        EXPECT_LT(it->second, item.seq)
            << "producer " << item.producer << " reordered";
      }
      last_seq[item.producer] = item.seq;
    }
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kProducers) * kPerProducer);
  for (int p = 0; p < kProducers; ++p) {
    for (int s = 0; s < kPerProducer; ++s) {
      EXPECT_EQ(seen[p][s], 1) << "producer " << p << " seq " << s;
    }
  }
}

TEST(MpmcQueueStressTest, TryPushRespectsCapacityUnderContention) {
  static constexpr std::size_t kCapacity = 4;
  MpmcQueue<int> queue(kCapacity);
  std::atomic<int> accepted{0};
  std::vector<std::thread> pushers;
  for (int t = 0; t < 4; ++t) {
    pushers.emplace_back([&queue, &accepted] {
      for (int i = 0; i < 100; ++i) {
        if (queue.TryPush(i)) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
        EXPECT_LE(queue.size(), kCapacity);
      }
    });
  }
  for (auto& t : pushers) {
    t.join();
  }
  // Nothing was popped, so exactly kCapacity pushes can have succeeded.
  EXPECT_EQ(accepted.load(), static_cast<int>(kCapacity));
  EXPECT_EQ(queue.size(), kCapacity);
}

// --- ThreadPool::ParallelFor ------------------------------------------------

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;  // Far more indices than threads.
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, EmptyRangeIsNoOp) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL() << "fn called for empty range"; });
}

TEST(ParallelForTest, SingleItemRunsInline) {
  ThreadPool pool(2);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.ParallelFor(1, [&ran_on](std::size_t) { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);
}

TEST(ParallelForTest, NestedCallDoesNotDeadlock) {
  // A fn that itself issues ParallelFor on the same pool must complete: the
  // inner call degrades to an inline loop on the worker.
  ThreadPool pool(2);
  std::atomic<int> inner_runs{0};
  pool.ParallelFor(4, [&pool, &inner_runs](std::size_t) {
    pool.ParallelFor(8, [&inner_runs](std::size_t) {
      inner_runs.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_runs.load(), 4 * 8);
}

TEST(ParallelForTest, ConcurrentExternalCallers) {
  // Multiple external threads sharing one pool, as Sampler and Trainer
  // threads do in the ThreadedEngine.
  ThreadPool pool(3);
  std::atomic<int> runs{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 3; ++t) {
    callers.emplace_back([&pool, &runs] {
      for (int round = 0; round < 20; ++round) {
        pool.ParallelFor(64, [&runs](std::size_t) {
          runs.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : callers) {
    t.join();
  }
  EXPECT_EQ(runs.load(), 3 * 20 * 64);
}

// --- ThreadPool shutdown contracts ------------------------------------------

TEST(ThreadPoolShutdownTest, DoubleShutdownIsHarmless) {
  ThreadPool pool(2);
  std::atomic<int> runs{0};
  pool.Submit([&runs] { runs.fetch_add(1); });
  pool.Shutdown();
  EXPECT_TRUE(pool.shut_down());
  EXPECT_EQ(runs.load(), 1);  // Shutdown drained the queue first.
  pool.Shutdown();  // No-op; the destructor adds a third call.
}

TEST(ThreadPoolShutdownDeathTest, SubmitAfterShutdownAborts) {
  ThreadPool pool(2);
  pool.Shutdown();  // Workers are joined: the death-test fork is safe.
  EXPECT_DEATH(pool.Submit([] {}), "after Shutdown");
}

TEST(ThreadPoolTest, ResolveThreads) {
  EXPECT_EQ(ThreadPool::ResolveThreads(3), 3u);
  EXPECT_EQ(ThreadPool::ResolveThreads(1), 1u);
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1u);  // hardware_concurrency, min 1.
}

// --- Worker-count determinism -----------------------------------------------

TEST(ParallelExtractTest, BuffersBitIdenticalAcrossWorkerCounts) {
  Rng rng(21);
  constexpr VertexId kVertices = 4096;
  const FeatureStore store = FeatureStore::Random(kVertices, 16, &rng);

  // A block of 3072 distinct vertices: large enough that a bound pool
  // engages several workers (the extractor chunks at 512 rows per worker).
  std::vector<VertexId> seeds(3072);
  for (VertexId v = 0; v < seeds.size(); ++v) {
    seeds[v] = (v * 37) % kVertices;  // 37 coprime to 4096: distinct ids.
  }
  RemapScratch scratch(kVertices);
  SampleBlockBuilder builder(&scratch);
  builder.Begin(seeds);
  SampleBlock block = builder.Finish();
  auto& marks = block.mutable_cache_marks();
  marks.assign(block.vertices().size(), 0);
  for (std::size_t i = 0; i < marks.size(); i += 3) {
    marks[i] = 1;  // Mix cache hits and host misses into the tallies.
  }

  std::vector<float> serial_out;
  const ExtractStats serial = Extractor(store).Extract(block, &serial_out);
  EXPECT_EQ(serial.parallel_workers, 1u);
  ASSERT_EQ(serial_out.size(), block.vertices().size() * store.dim());

  for (const std::size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<float> out;
    const ExtractStats stats = Extractor(store, &pool).Extract(block, &out);
    ASSERT_EQ(out.size(), serial_out.size());
    EXPECT_EQ(std::memcmp(out.data(), serial_out.data(), out.size() * sizeof(float)), 0)
        << "gather differs with " << threads << " pool threads";
    EXPECT_EQ(stats.distinct_vertices, serial.distinct_vertices);
    EXPECT_EQ(stats.cache_hits, serial.cache_hits);
    EXPECT_EQ(stats.host_misses, serial.host_misses);
    EXPECT_EQ(stats.bytes_from_cache, serial.bytes_from_cache);
    EXPECT_EQ(stats.bytes_from_host, serial.bytes_from_host);
    EXPECT_GT(stats.parallel_workers, 1u);
    EXPECT_EQ(stats.worker_busy_seconds.size(), stats.parallel_workers);
  }
}

void ExpectBlocksEqual(const SampleBlock& a, const SampleBlock& b,
                       const std::string& label) {
  ASSERT_EQ(a.vertices().size(), b.vertices().size()) << label;
  for (std::size_t i = 0; i < a.vertices().size(); ++i) {
    ASSERT_EQ(a.vertices()[i], b.vertices()[i]) << label << " vertex " << i;
  }
  ASSERT_EQ(a.num_hops(), b.num_hops()) << label;
  for (std::size_t h = 0; h <= a.num_hops(); ++h) {
    ASSERT_EQ(a.VerticesAfterHop(h), b.VerticesAfterHop(h)) << label << " hop " << h;
  }
  for (std::size_t h = 0; h < a.num_hops(); ++h) {
    ASSERT_EQ(a.hop(h).src_local, b.hop(h).src_local) << label << " hop " << h;
    ASSERT_EQ(a.hop(h).dst_local, b.hop(h).dst_local) << label << " hop " << h;
  }
}

TEST(ParallelSamplingTest, BlocksIdenticalAcrossWorkerCounts) {
  Rng graph_rng(5);
  RmatParams params;
  params.num_vertices = 16384;
  params.num_edges = 8 * 16384;
  const CsrGraph graph = GenerateRmat(params, &graph_rng);
  const EdgeWeights weights = EdgeWeights::RandomTimestamps(graph, 1.0, &graph_rng);

  // 1024 seeds: above the 512-vertex frontier threshold, so a bound pool
  // parallelizes every hop.
  std::vector<VertexId> seeds(1024);
  for (VertexId v = 0; v < seeds.size(); ++v) {
    seeds[v] = (v * 13) % params.num_vertices;
  }

  struct Case {
    const char* name;
    std::unique_ptr<Sampler> sampler;
  };
  Case cases[3] = {
      {"uniform", MakeKhopUniformSampler(graph, {10, 5})},
      {"reservoir", MakeKhopReservoirSampler(graph, {10, 5})},
      {"weighted", MakeKhopWeightedSampler(graph, weights, {10, 5})},
  };
  for (Case& c : cases) {
    Rng rng_serial(99);
    const SampleBlock serial = c.sampler->Sample(seeds, &rng_serial, nullptr);
    for (const std::size_t threads : {2u, 8u}) {
      ThreadPool pool(threads);
      c.sampler->BindThreadPool(&pool);
      Rng rng(99);
      SamplerStats stats;
      const SampleBlock parallel = c.sampler->Sample(seeds, &rng, &stats);
      c.sampler->BindThreadPool(nullptr);
      ExpectBlocksEqual(serial, parallel,
                        std::string(c.name) + " @" + std::to_string(threads));
      EXPECT_GT(stats.sampled_neighbors, 0u);
    }
  }
}

TEST(ParallelSamplingTest, RepeatedCallsOnOneRngDiffer) {
  // Sample must advance the caller's stream: back-to-back batches from one
  // Rng may not repeat each other.
  Rng graph_rng(6);
  RmatParams params;
  params.num_vertices = 1024;
  params.num_edges = 16 * 1024;
  const CsrGraph graph = GenerateRmat(params, &graph_rng);
  auto sampler = MakeKhopUniformSampler(graph, {4});
  const VertexId seeds[] = {1, 2, 3, 4};
  Rng rng(7);
  const SampleBlock first = sampler->Sample(seeds, &rng, nullptr);
  const SampleBlock second = sampler->Sample(seeds, &rng, nullptr);
  bool identical = first.vertices().size() == second.vertices().size();
  if (identical) {
    for (std::size_t i = 0; i < first.vertices().size(); ++i) {
      identical = identical && first.vertices()[i] == second.vertices()[i];
    }
  }
  EXPECT_FALSE(identical);
}

// --- ThreadedEngine under extreme backpressure ------------------------------

TEST(ThreadedEngineConcurrencyTest, QueueCapacityOneCompletes) {
  Dataset dataset = MakeDataset(DatasetId::kProducts, 0.05, 42);
  Rng rng(3);
  std::vector<std::uint32_t> labels = MakeCommunityLabels(dataset.graph.num_vertices(), 128, 8);
  FeatureStore features =
      FeatureStore::Clustered(dataset.graph.num_vertices(), 16, labels, 8, 0.3, &rng);
  std::vector<VertexId> eval;
  for (VertexId v = 0; v < 100; ++v) {
    eval.push_back(v);
  }
  RealTrainingOptions real;
  real.features = &features;
  real.labels = labels;
  real.eval_vertices = eval;
  real.num_classes = 8;
  real.hidden_dim = 16;

  ThreadedEngineOptions options;
  options.num_samplers = 2;
  options.num_trainers = 2;
  options.queue_capacity = 1;  // Maximum backpressure: every Push blocks.
  options.epochs = 1;
  options.extract_threads = 2;
  options.real = &real;
  ThreadedEngine engine(dataset, StandardWorkload(GnnModelKind::kGraphSage), options);
  const ThreadedRunReport report = engine.Run();
  ASSERT_EQ(report.epochs.size(), 1u);
  EXPECT_EQ(report.epochs[0].batches, dataset.BatchesPerEpoch());
  EXPECT_EQ(report.epochs[0].extract.distinct_vertices,
            report.epochs[0].extract.cache_hits + report.epochs[0].extract.host_misses);
}

// End-to-end guard for the determinism contract: every count-based statistic
// of a threaded run is independent of the pool size. (Loss/accuracy may vary
// with update order; vertex counts, hit/miss splits and bytes may not.)
// Regression test for a dangling-Workload bug where the engine kept a
// reference to a dead `StandardWorkload(...)` temporary and the pool size
// merely perturbed what the freed memory got reused for.
TEST(ThreadedEngineConcurrencyTest, ExtractCountersIndependentOfPoolSize) {
  Dataset dataset = MakeDataset(DatasetId::kProducts, 0.05, 42);
  Rng rng(3);
  std::vector<std::uint32_t> labels = MakeCommunityLabels(dataset.graph.num_vertices(), 128, 8);
  FeatureStore features =
      FeatureStore::Clustered(dataset.graph.num_vertices(), 16, labels, 8, 0.3, &rng);
  RealTrainingOptions real;
  real.features = &features;
  real.labels = labels;
  real.num_classes = 8;
  real.hidden_dim = 16;

  auto run = [&](std::size_t extract_threads) {
    ThreadedEngineOptions options;
    options.num_samplers = 1;
    options.num_trainers = 2;
    options.epochs = 2;
    options.extract_threads = extract_threads;
    options.real = &real;
    ThreadedEngine engine(dataset, StandardWorkload(GnnModelKind::kGraphSage), options);
    return engine.Run();
  };

  const ThreadedRunReport serial = run(1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    const ThreadedRunReport pooled = run(threads);
    ASSERT_EQ(pooled.epochs.size(), serial.epochs.size());
    for (std::size_t e = 0; e < serial.epochs.size(); ++e) {
      SCOPED_TRACE("threads=" + std::to_string(threads) + " epoch=" + std::to_string(e));
      EXPECT_EQ(pooled.epochs[e].batches, serial.epochs[e].batches);
      EXPECT_EQ(pooled.epochs[e].gradient_updates, serial.epochs[e].gradient_updates);
      EXPECT_EQ(pooled.epochs[e].extract.distinct_vertices,
                serial.epochs[e].extract.distinct_vertices);
      EXPECT_EQ(pooled.epochs[e].extract.cache_hits, serial.epochs[e].extract.cache_hits);
      EXPECT_EQ(pooled.epochs[e].extract.host_misses, serial.epochs[e].extract.host_misses);
      EXPECT_EQ(pooled.epochs[e].extract.bytes_from_cache,
                serial.epochs[e].extract.bytes_from_cache);
      EXPECT_EQ(pooled.epochs[e].extract.bytes_from_host,
                serial.epochs[e].extract.bytes_from_host);
    }
  }
}

}  // namespace
}  // namespace gnnlab
