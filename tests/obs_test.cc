// Tests for the observability layer: metric registry (counters, gauges,
// latency histograms), the wall-clock RuntimeTracer, and the snapshot
// exporter. The JSON every component emits is validated by round-tripping
// it through the report JSON parser.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "report/json_parse.h"

namespace gnnlab {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(HistogramTest, QuantilesOnUniformDistribution) {
  // Bounds 1..100, one observation per bucket: the quantiles are exact
  // because linear interpolation lands on each bucket's upper bound.
  std::vector<double> bounds;
  for (int i = 1; i <= 100; ++i) {
    bounds.push_back(static_cast<double>(i));
  }
  Histogram histogram{std::move(bounds)};
  for (int v = 1; v <= 100; ++v) {
    histogram.Record(static_cast<double>(v));
  }
  EXPECT_EQ(histogram.count(), 100u);
  EXPECT_DOUBLE_EQ(histogram.mean(), 50.5);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 100.0);

  const LatencySummary summary = histogram.Summary();
  EXPECT_EQ(summary.count, 100u);
  EXPECT_DOUBLE_EQ(summary.p50, 50.0);
  EXPECT_DOUBLE_EQ(summary.p95, 95.0);
  EXPECT_DOUBLE_EQ(summary.p99, 99.0);
  EXPECT_DOUBLE_EQ(summary.max, 100.0);
}

TEST(HistogramTest, DefaultBoundsCoverStageLatencies) {
  Histogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 0.0);

  histogram.Record(3e-6);   // A fast mark.
  histogram.Record(2e-3);   // A typical sample.
  histogram.Record(0.5);    // A slow train step.
  EXPECT_EQ(histogram.count(), 3u);
  // Quantile resolution is one log2 bucket: the median must land within 2x
  // of the true middle observation.
  const double p50 = histogram.Quantile(0.5);
  EXPECT_GE(p50, 1e-3);
  EXPECT_LE(p50, 4e-3);
  EXPECT_DOUBLE_EQ(histogram.max(), 0.5);
}

TEST(HistogramTest, OverflowBucketReportsLastBound) {
  Histogram histogram{std::vector<double>{1.0, 2.0}};
  histogram.Record(100.0);  // Beyond the last bound.
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.99), 2.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 100.0);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram histogram;
  histogram.Record(1.0);
  histogram.Record(2.0);
  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.99), 0.0);
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.Increment();
      }
      counter.Increment(5);  // Bulk increments mix in.
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.value(), kThreads * (kPerThread + 5));
}

TEST(HistogramTest, ConcurrentRecordsCountExactly) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  Histogram histogram;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(1e-5 * static_cast<double>(t + 1));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(histogram.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(histogram.max(), 8e-5);
}

TEST(MetricRegistryTest, ResolveOnceReturnsStablePointers) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("queue.enqueued");
  EXPECT_EQ(registry.GetCounter("queue.enqueued"), counter);
  Gauge* gauge = registry.GetGauge("queue.depth");
  EXPECT_EQ(registry.GetGauge("queue.depth"), gauge);
  Histogram* histogram = registry.GetHistogram("stage.sample");
  EXPECT_EQ(registry.GetHistogram("stage.sample"), histogram);
  EXPECT_EQ(registry.size(), 3u);

  counter->Increment(7);
  EXPECT_EQ(registry.FindCounter("queue.enqueued")->value(), 7u);
  // Absent names and kind mismatches both come back null.
  EXPECT_EQ(registry.FindCounter("nope"), nullptr);
  EXPECT_EQ(registry.FindGauge("queue.enqueued"), nullptr);
  EXPECT_EQ(registry.FindHistogram("queue.depth"), nullptr);
}

TEST(MetricRegistryTest, ConcurrentRegistrationAndUpdates) {
  MetricRegistry registry;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Every thread resolves the same name; first one registers.
      Counter* counter = registry.GetCounter("shared.counter");
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter->Increment();
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(registry.FindCounter("shared.counter")->value(), kThreads * kPerThread);
}

TEST(MetricRegistryTest, SnapshotJsonParsesAndCarriesValues) {
  MetricRegistry registry;
  registry.GetCounter("queue.enqueued")->Increment(42);
  registry.GetGauge("queue.depth")->Set(3.5);
  registry.GetHistogram("stage.train")->Record(0.25);

  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(registry.SnapshotJson(), &root, &error)) << error;
  ASSERT_TRUE(root.IsObject());
  ASSERT_NE(root.Find("queue.enqueued"), nullptr);
  EXPECT_DOUBLE_EQ(root.Find("queue.enqueued")->number, 42.0);
  EXPECT_DOUBLE_EQ(root.Find("queue.depth")->number, 3.5);
  const JsonValue* train = root.Find("stage.train");
  ASSERT_NE(train, nullptr);
  ASSERT_TRUE(train->IsObject());
  EXPECT_DOUBLE_EQ(train->Find("count")->number, 1.0);
  EXPECT_DOUBLE_EQ(train->Find("max")->number, 0.25);
}

TEST(ScopedTimerTest, RecordsElapsedSeconds) {
  Histogram histogram;
  {
    ScopedTimer timer(&histogram);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_GE(histogram.max(), 0.004);
  // Null histogram: a no-op, not a crash.
  ScopedTimer noop(nullptr);
}

TEST(RuntimeTracerTest, JsonRoundTripsThroughReportParser) {
  RuntimeTracer tracer;
  const double t0 = MonotonicSeconds();
  tracer.Record("sampler0", "sample b0", "sample", t0, t0 + 0.001);
  tracer.Record("sampler0", "mark b0", "mark", t0 + 0.001, t0 + 0.0015);
  tracer.Record("sampler0", "copy b0", "copy", t0 + 0.0015, t0 + 0.002);
  tracer.Record("trainer0", "extract b0", "extract", t0 + 0.002, t0 + 0.004);
  tracer.Record("trainer0", "train b0", "train", t0 + 0.004, t0 + 0.009);
  EXPECT_EQ(tracer.size(), 5u);

  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(tracer.ToChromeJson(), &root, &error)) << error;
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->IsArray());

  std::set<std::string> lanes;
  std::set<std::string> categories;
  std::size_t complete_events = 0;
  for (const JsonValue& event : events->array) {
    const std::string& phase = event.Find("ph")->string;
    if (phase == "M") {
      lanes.insert(event.Find("args")->Find("name")->string);
    } else if (phase == "X") {
      ++complete_events;
      categories.insert(event.Find("cat")->string);
      EXPECT_GE(event.Find("ts")->number, 0.0);
      EXPECT_GE(event.Find("dur")->number, 0.0);
    }
  }
  EXPECT_EQ(complete_events, 5u);
  EXPECT_EQ(lanes, (std::set<std::string>{"sampler0", "trainer0"}));
  EXPECT_EQ(categories,
            (std::set<std::string>{"sample", "mark", "copy", "extract", "train"}));
}

TEST(RuntimeTracerTest, ConcurrentRecordsAllCollected) {
  RuntimeTracer tracer;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      const std::string lane = "worker" + std::to_string(t);
      for (int i = 0; i < kPerThread; ++i) {
        const double begin = MonotonicSeconds();
        tracer.Record(lane, "span", "sample", begin, begin + 1e-6);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const std::vector<TraceSpan> spans = tracer.Collect();
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LE(spans[i - 1].begin, spans[i].begin) << "Collect() must sort by begin";
  }
}

TEST(SnapshotTest, SampleFromRegistryReadsWellKnownMetrics) {
  MetricRegistry registry;
  registry.GetGauge(kMetricQueueDepth)->Set(4);
  registry.GetGauge(kMetricQueueBytes)->Set(1024);
  registry.GetCounter(kMetricCacheHits)->Increment(30);
  registry.GetCounter(kMetricCacheMisses)->Increment(10);
  registry.GetCounter(kMetricBytesFromHost)->Increment(4096);
  registry.GetCounter(kMetricBytesFromCache)->Increment(8192);
  registry.GetGauge(kMetricPoolBusy)->Set(3);
  registry.GetGauge(kMetricPoolSize)->Set(8);

  const TelemetrySample sample = SampleFromRegistry(registry, 1.5);
  EXPECT_DOUBLE_EQ(sample.ts, 1.5);
  EXPECT_EQ(sample.queue_depth, 4u);
  EXPECT_EQ(sample.queue_bytes, 1024u);
  EXPECT_EQ(sample.cache_hits, 30u);
  EXPECT_EQ(sample.cache_misses, 10u);
  EXPECT_EQ(sample.bytes_from_host, 4096u);
  EXPECT_EQ(sample.bytes_from_cache, 8192u);
  EXPECT_EQ(sample.pool_busy, 3u);
  EXPECT_EQ(sample.pool_size, 8u);

  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(TelemetrySampleToJson(sample), &root, &error)) << error;
  EXPECT_DOUBLE_EQ(root.Find("queue_depth")->number, 4.0);
  EXPECT_DOUBLE_EQ(root.Find("cache_hits")->number, 30.0);
}

TEST(SnapshotTest, ExporterEmitsValidJsonLines) {
  MetricRegistry registry;
  Gauge* depth = registry.GetGauge(kMetricQueueDepth);
  Counter* hits = registry.GetCounter(kMetricCacheHits);

  const std::string path = TempPath("snapshots.metrics.jsonl");
  std::remove(path.c_str());

  SnapshotExporter::Options options;
  options.interval_seconds = 0.002;
  options.path = path;
  int pulls = 0;
  options.on_sample = [&pulls] { ++pulls; };

  SnapshotExporter exporter(&registry, options);
  ASSERT_TRUE(exporter.Start());
  for (int i = 0; i < 5; ++i) {
    depth->Set(static_cast<double>(i));
    hits->Increment(10);
    std::this_thread::sleep_for(std::chrono::milliseconds(4));
  }
  exporter.Stop();

  ASSERT_FALSE(exporter.series().empty());
  EXPECT_GT(pulls, 0);
  // The final (Stop-time) sample sees every increment.
  EXPECT_EQ(exporter.series().back().cache_hits, 50u);

  std::ifstream file(path);
  ASSERT_TRUE(file.is_open());
  std::string line;
  std::size_t lines = 0;
  double last_ts = -1.0;
  while (std::getline(file, line)) {
    ++lines;
    JsonValue root;
    std::string error;
    ASSERT_TRUE(ParseJson(line, &root, &error)) << "line " << lines << ": " << error;
    ASSERT_TRUE(root.IsObject());
    const JsonValue* ts = root.Find("ts");
    ASSERT_NE(ts, nullptr);
    EXPECT_GE(ts->number, last_ts) << "timestamps must be non-decreasing";
    last_ts = ts->number;
    EXPECT_NE(root.Find("queue_depth"), nullptr);
    EXPECT_NE(root.Find("cache_hits"), nullptr);
    // Each line also embeds the full registry snapshot.
    const JsonValue* metrics = root.Find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_TRUE(metrics->IsObject());
  }
  EXPECT_EQ(lines, exporter.series().size());
  std::remove(path.c_str());
}

// Regression: Stop() must take one final sample even when the sampling
// period has not elapsed — a short run with a long interval still captures
// the end state, and Stop() returns promptly instead of riding out the
// interval.
TEST(SnapshotTest, StopFlushesFinalSampleBeforePeriodElapses) {
  MetricRegistry registry;
  Counter* hits = registry.GetCounter(kMetricCacheHits);

  SnapshotExporter::Options options;
  options.interval_seconds = 3600.0;  // Would never tick again on its own.
  SnapshotExporter exporter(&registry, options);

  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(exporter.Start());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  hits->Increment(123);  // Lands after the initial Loop() sample.
  exporter.Stop();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  EXPECT_LT(elapsed, 60.0) << "Stop must not wait out the interval";
  ASSERT_GE(exporter.series().size(), 2u);  // Initial sample + final flush.
  EXPECT_EQ(exporter.series().front().cache_hits, 0u);
  EXPECT_EQ(exporter.series().back().cache_hits, 123u)
      << "the final flush must see state written after the last periodic sample";

  // Idempotent: a second Stop neither samples again nor crashes.
  const std::size_t samples = exporter.series().size();
  exporter.Stop();
  EXPECT_EQ(exporter.series().size(), samples);
}

TEST(SnapshotTest, SampleOnceWorksWithoutStart) {
  MetricRegistry registry;
  registry.GetGauge(kMetricQueueDepth)->Set(7);
  SnapshotExporter exporter(&registry, SnapshotExporter::Options{});
  const TelemetrySample sample = exporter.SampleOnce();
  EXPECT_EQ(sample.queue_depth, 7u);
  EXPECT_EQ(exporter.series().size(), 1u);
}

#if !GNNLAB_OBS_ENABLED
TEST(ObsCompileOutTest, MacroElidesStatements) {
  int hits = 0;
  GNNLAB_OBS_ONLY(++hits);
  EXPECT_EQ(hits, 0) << "hooks must vanish when GNNLAB_OBS is OFF";
}
#endif

}  // namespace
}  // namespace gnnlab
