// End-to-end tests of the GNNLab engine: epoch completion invariants,
// determinism, memory planning/OOM, scheduling, dynamic switching, the
// single-GPU degenerate mode, and real-training bookkeeping.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/engine.h"
#include "obs/critical_path.h"
#include "obs/health.h"

namespace gnnlab {
namespace {

const Dataset& Products() {
  static const Dataset* ds = new Dataset(MakeDataset(DatasetId::kProducts, 0.1, 42));
  return *ds;
}
const Dataset& Papers() {
  static const Dataset* ds = new Dataset(MakeDataset(DatasetId::kPapers, 0.05, 42));
  return *ds;
}

EngineOptions BaseOptions() {
  EngineOptions options;
  options.num_gpus = 4;
  options.gpu_memory = 8 * kMiB;
  options.epochs = 2;
  options.seed = 1;
  return options;
}

TEST(EngineTest, CompletesAllBatchesEveryEpoch) {
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  Engine engine(Products(), workload, BaseOptions());
  const RunReport report = engine.Run();
  ASSERT_FALSE(report.oom) << report.oom_detail;
  ASSERT_EQ(report.epochs.size(), 2u);
  for (const EpochReport& epoch : report.epochs) {
    EXPECT_EQ(epoch.batches, Products().BatchesPerEpoch());
    EXPECT_GT(epoch.epoch_time, 0.0);
    EXPECT_GT(epoch.stage.train, 0.0);
    EXPECT_GT(epoch.stage.sample_graph, 0.0);
    EXPECT_GT(epoch.extract.distinct_vertices, 0u);
  }
  EXPECT_EQ(report.queue.total_enqueued, 2 * Products().BatchesPerEpoch());
  EXPECT_EQ(report.num_samplers + report.num_trainers, 4);
  EXPECT_GE(report.num_samplers, 1);
}

TEST(EngineTest, DeterministicAcrossRuns) {
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  Engine a(Products(), workload, BaseOptions());
  Engine b(Products(), workload, BaseOptions());
  const RunReport ra = a.Run();
  const RunReport rb = b.Run();
  ASSERT_EQ(ra.epochs.size(), rb.epochs.size());
  for (std::size_t e = 0; e < ra.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(ra.epochs[e].epoch_time, rb.epochs[e].epoch_time);
    EXPECT_EQ(ra.epochs[e].extract.cache_hits, rb.epochs[e].extract.cache_hits);
    EXPECT_EQ(ra.epochs[e].extract.bytes_from_host, rb.epochs[e].extract.bytes_from_host);
  }
  EXPECT_EQ(ra.num_samplers, rb.num_samplers);
  EXPECT_DOUBLE_EQ(ra.cache_ratio, rb.cache_ratio);
}

TEST(EngineTest, SeedChangesTimeline) {
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  EngineOptions options = BaseOptions();
  Engine a(Products(), workload, options);
  options.seed = 99;
  Engine b(Products(), workload, options);
  EXPECT_NE(a.Run().epochs[0].extract.distinct_vertices,
            b.Run().epochs[0].extract.distinct_vertices);
}

TEST(EngineTest, EveryWorkloadRuns) {
  for (const GnnModelKind kind :
       {GnnModelKind::kGcn, GnnModelKind::kGraphSage, GnnModelKind::kPinSage}) {
    const Workload workload = StandardWorkload(kind);
    Engine engine(Products(), workload, BaseOptions());
    const RunReport report = engine.Run();
    ASSERT_FALSE(report.oom) << workload.name << ": " << report.oom_detail;
    EXPECT_EQ(report.epochs[0].batches, Products().BatchesPerEpoch()) << workload.name;
  }
}

TEST(EngineTest, WeightedWorkloadRuns) {
  const Workload workload = WeightedGcnWorkload();
  Engine engine(Products(), workload, BaseOptions());
  const RunReport report = engine.Run();
  ASSERT_FALSE(report.oom);
  EXPECT_EQ(report.epochs[0].batches, Products().BatchesPerEpoch());
}

TEST(EngineTest, ForcedSamplerCountIsRespected) {
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  EngineOptions options = BaseOptions();
  options.num_samplers = 3;
  Engine engine(Products(), workload, options);
  const RunReport report = engine.Run();
  ASSERT_FALSE(report.oom);
  EXPECT_EQ(report.num_samplers, 3);
  EXPECT_EQ(report.num_trainers, 1);
}

TEST(EngineTest, CacheRatioOverride) {
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  EngineOptions options = BaseOptions();
  options.cache_ratio_override = 0.25;
  Engine engine(Products(), workload, options);
  const RunReport report = engine.Run();
  ASSERT_FALSE(report.oom);
  EXPECT_NEAR(report.cache_ratio, 0.25, 0.01);
}

TEST(EngineTest, NoCachePolicyMeansAllMisses) {
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  EngineOptions options = BaseOptions();
  options.policy = CachePolicyKind::kNone;
  Engine engine(Products(), workload, options);
  const RunReport report = engine.Run();
  ASSERT_FALSE(report.oom);
  EXPECT_DOUBLE_EQ(report.cache_ratio, 0.0);
  EXPECT_EQ(report.epochs[0].extract.cache_hits, 0u);
  EXPECT_DOUBLE_EQ(report.preprocess.presample, 0.0);
}

TEST(EngineTest, BetterPolicyNeverSlower) {
  // PreSC#1 must not produce a slower epoch than Random at the same budget
  // (more cache hits -> less host traffic -> cheaper extraction).
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  EngineOptions options = BaseOptions();
  options.cache_ratio_override = 0.1;
  options.policy = CachePolicyKind::kPreSC1;
  Engine presc(Papers(), workload, options);
  options.policy = CachePolicyKind::kRandom;
  Engine random(Papers(), workload, options);
  const RunReport rp = presc.Run();
  const RunReport rr = random.Run();
  ASSERT_FALSE(rp.oom);
  ASSERT_FALSE(rr.oom);
  EXPECT_GT(rp.epochs[0].extract.HitRate(), rr.epochs[0].extract.HitRate());
  EXPECT_LE(rp.epochs[0].stage.extract, rr.epochs[0].stage.extract + 1e-9);
}

TEST(EngineTest, OptimalIsUpperBoundOnPreSC) {
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  EngineOptions options = BaseOptions();
  options.cache_ratio_override = 0.1;
  options.policy = CachePolicyKind::kOptimal;
  Engine optimal(Papers(), workload, options);
  options.policy = CachePolicyKind::kPreSC1;
  Engine presc(Papers(), workload, options);
  const double hr_optimal = optimal.Run().epochs[0].extract.HitRate();
  const double hr_presc = presc.Run().epochs[0].extract.HitRate();
  EXPECT_GE(hr_optimal + 1e-9, hr_presc);
  // Paper abstract: PreSC reaches 90-99% of optimal.
  EXPECT_GT(hr_presc, 0.85 * hr_optimal);
}

TEST(EngineTest, OomWhenTopologyExceedsGpu) {
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  EngineOptions options = BaseOptions();
  // Size the GPU below the topology footprint so the Sampler cannot load it.
  options.gpu_memory = static_cast<ByteCount>(Products().TopologyBytes() / 2);
  Engine engine(Products(), workload, options);
  const RunReport report = engine.Run();
  EXPECT_TRUE(report.oom);
  EXPECT_NE(report.oom_detail.find("topology"), std::string::npos);
}

TEST(EngineTest, SingleGpuRunsViaDynamicSwitching) {
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  EngineOptions options = BaseOptions();
  options.num_gpus = 1;
  Engine engine(Products(), workload, options);
  const RunReport report = engine.Run();
  ASSERT_FALSE(report.oom) << report.oom_detail;
  EXPECT_EQ(report.num_samplers, 1);
  EXPECT_EQ(report.num_trainers, 0);
  // Every batch is trained by the standby Trainer after sampling finishes.
  EXPECT_EQ(report.epochs[0].switched_batches, report.epochs[0].batches);
  // The queue holds the whole epoch at its peak (paper §5.3/§7.9).
  EXPECT_EQ(report.queue.max_depth, report.epochs[0].batches);
}

TEST(EngineDeathTest, SingleGpuWithoutSwitchingCannotTrain) {
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  EngineOptions options = BaseOptions();
  options.num_gpus = 1;
  options.dynamic_switching = false;
  Engine engine(Products(), workload, options);
  EXPECT_DEATH((void)engine.Run(), "no Trainer");
}

TEST(EngineTest, SwitchingDrainsFasterOnSkewedWorkload) {
  // PinSAGE: Train >> Sample. With 1 Sampler + 1 Trainer, enabling the
  // standby Trainer must shorten the epoch (paper Figure 17a).
  const Workload workload = StandardWorkload(GnnModelKind::kPinSage);
  EngineOptions options = BaseOptions();
  options.num_gpus = 2;
  options.num_samplers = 1;
  options.dynamic_switching = true;
  Engine with(Papers(), workload, options);
  options.dynamic_switching = false;
  Engine without(Papers(), workload, options);
  const RunReport rw = with.Run();
  const RunReport ro = without.Run();
  ASSERT_FALSE(rw.oom);
  ASSERT_FALSE(ro.oom);
  EXPECT_GT(rw.epochs[1].switched_batches, 0u);
  EXPECT_LT(rw.AvgEpochTime(), ro.AvgEpochTime());
}

TEST(EngineTest, MoreTrainersShortenSkewedEpochs) {
  // Scalability shape (paper Figure 14/15): with a fixed Sampler count and
  // a Train-bound workload, adding Trainer GPUs reduces epoch time.
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  EngineOptions options = BaseOptions();
  options.dynamic_switching = false;
  options.num_samplers = 1;
  options.num_gpus = 2;
  Engine small(Papers(), workload, options);
  options.num_gpus = 5;
  Engine large(Papers(), workload, options);
  const RunReport rs = small.Run();
  const RunReport rl = large.Run();
  ASSERT_FALSE(rs.oom);
  ASSERT_FALSE(rl.oom);
  EXPECT_LT(rl.AvgEpochTime(), rs.AvgEpochTime());
}

TEST(EngineTest, DevicesReflectFactoredLayout) {
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  EngineOptions options = BaseOptions();
  options.dynamic_switching = false;
  options.num_samplers = 1;
  Engine engine(Products(), workload, options);
  const RunReport report = engine.Run();
  ASSERT_FALSE(report.oom);
  const auto& devices = engine.devices();
  ASSERT_EQ(devices.size(), 4u);
  // Sampler GPU holds topology, no cache.
  EXPECT_GT(devices[0].used(MemoryKind::kTopology), 0u);
  EXPECT_EQ(devices[0].used(MemoryKind::kFeatureCache), 0u);
  // Trainer GPUs hold cache, no topology: the space-sharing design.
  for (std::size_t g = 1; g < 4; ++g) {
    EXPECT_EQ(devices[g].used(MemoryKind::kTopology), 0u);
    EXPECT_GT(devices[g].used(MemoryKind::kFeatureCache), 0u);
  }
}

TEST(EngineTest, PreprocessingReported) {
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  Engine engine(Products(), workload, BaseOptions());
  const RunReport report = engine.Run();
  EXPECT_GT(report.preprocess.disk_load, 0.0);
  EXPECT_GT(report.preprocess.topo_load, 0.0);
  EXPECT_GT(report.preprocess.cache_load, 0.0);
  EXPECT_GT(report.preprocess.presample, 0.0);
  // Pre-sampling is cheap relative to disk loading (paper Table 6).
  EXPECT_LT(report.preprocess.presample, report.preprocess.disk_load);
}

#if GNNLAB_OBS_ENABLED
TEST(EngineTest, FlowDagEmittedOnSimulatedClock) {
  const Workload workload = StandardWorkload(GnnModelKind::kGcn);
  FlowTracer flows;
  EngineOptions options = BaseOptions();
  options.flows = &flows;
  Engine engine(Products(), workload, options);
  const RunReport report = engine.Run();
  ASSERT_FALSE(report.oom);
  std::size_t total_batches = 0;
  for (const EpochReport& epoch : report.epochs) {
    total_batches += epoch.batches;
  }

  // Each batch appears exactly once per per-batch stage on the sim clock.
  std::map<std::string, std::map<FlowId, std::size_t>> stage_flows;
  for (const FlowStep& step : flows.Collect()) {
    EXPECT_LE(step.begin, step.end);
    ++stage_flows[step.stage][step.flow];
  }
  for (const char* stage : {"sample", "copy", "extract", "train"}) {
    EXPECT_EQ(stage_flows[stage].size(), total_batches) << stage;
    for (const auto& [flow, count] : stage_flows[stage]) {
      EXPECT_EQ(count, 1u) << stage << " flow " << flow;
    }
  }

  // The fold lands in the report; fractions sum to 1.
  EXPECT_EQ(report.attribution.flows, total_batches);
  double fraction_sum = 0.0;
  for (std::size_t i = 0; i < kNumBlameStages; ++i) {
    fraction_sum += report.attribution.Fractions().Component(i);
  }
  EXPECT_NEAR(fraction_sum, 1.0, 1e-6);
}

TEST(EngineTest, SwitchDecisionLogIsDeterministic) {
  // The sim forces health evaluation at decision points, so two identical
  // runs must log byte-identical decisions.
  const Workload workload = StandardWorkload(GnnModelKind::kPinSage);
  EngineOptions options = BaseOptions();
  options.num_gpus = 2;
  options.num_samplers = 1;
  options.dynamic_switching = true;
  Engine a(Papers(), workload, options);
  Engine b(Papers(), workload, options);
  const RunReport ra = a.Run();
  const RunReport rb = b.Run();
  ASSERT_FALSE(ra.oom);
  EXPECT_GT(ra.epochs[1].switched_batches, 0u);  // Standby Trainer was active...
  ASSERT_FALSE(ra.switch_decisions.empty());     // ...and its decisions logged.
  ASSERT_EQ(ra.switch_decisions.size(), rb.switch_decisions.size());
  std::size_t fetched = 0;
  for (std::size_t i = 0; i < ra.switch_decisions.size(); ++i) {
    const SwitchDecision& da = ra.switch_decisions[i];
    const SwitchDecision& db = rb.switch_decisions[i];
    EXPECT_DOUBLE_EQ(da.ts, db.ts);
    EXPECT_EQ(da.queue_depth, db.queue_depth);
    EXPECT_DOUBLE_EQ(da.profit, db.profit);
    EXPECT_EQ(da.fetched, db.fetched);
    fetched += da.fetched ? 1 : 0;
  }
  std::size_t switched = 0;
  for (const EpochReport& epoch : ra.epochs) {
    switched += epoch.switched_batches;
  }
  EXPECT_EQ(fetched, switched);  // One logged fetch per switched batch.
}

TEST(EngineTest, QueuePressureAlertForcesStandbyFetch) {
  // A rule on queue.depth that always fires while the queue is non-empty:
  // the standby Trainer must fetch even when the profit test alone would
  // decline, and the decision records the override + the firing rule.
  const Workload workload = StandardWorkload(GnnModelKind::kGraphSage);
  MetricRegistry registry;
  HealthMonitor::Options health_options;
  AlertRule rule;
  ASSERT_TRUE(ParseAlertRule("backlog: queue.depth > 0", &rule));
  health_options.rules.push_back(rule);
  HealthMonitor health(&registry, health_options);

  EngineOptions options = BaseOptions();
  options.num_gpus = 1;  // Single-GPU mode: profit is irrelevant, queue full.
  options.metrics = &registry;
  options.health = &health;
  Engine engine(Products(), workload, options);
  const RunReport report = engine.Run();
  ASSERT_FALSE(report.oom);
  EXPECT_EQ(report.epochs[0].switched_batches, report.epochs[0].batches);

  ASSERT_FALSE(report.switch_decisions.empty());
  bool any_override = false;
  for (const SwitchDecision& d : report.switch_decisions) {
    if (d.pressure_override) {
      any_override = true;
      EXPECT_TRUE(d.fetched);
      EXPECT_NE(d.alerts.find("backlog"), std::string::npos);
    }
  }
  // In single-GPU mode every fetch happens with the backlog rule firing;
  // whether it was an override depends on the profit sign, but the alert
  // itself must be visible in the registry either way.
  EXPECT_NE(registry.FindGauge("alert.backlog"), nullptr);
  (void)any_override;
  // Attribution gauges back blame-based rules.
  EXPECT_NE(registry.FindGauge("attribution.queue_wait"), nullptr);
}
#endif

TEST(EngineTest, RealTrainingLearnsAndCountsUpdates) {
  const Dataset& ds = Products();
  Rng rng(3);
  const auto labels = MakeCommunityLabels(ds.graph.num_vertices(), 128, 8);
  const FeatureStore features =
      FeatureStore::Clustered(ds.graph.num_vertices(), 16, labels, 8, 0.3, &rng);
  // Evaluate on vertices outside the training set.
  std::vector<VertexId> eval;
  for (VertexId v = 0; v < 200; ++v) {
    eval.push_back(v);
  }

  RealTrainingOptions real;
  real.features = &features;
  real.labels = labels;
  real.eval_vertices = eval;
  real.num_classes = 8;
  real.hidden_dim = 16;

  Workload workload = StandardWorkload(GnnModelKind::kGraphSage);
  EngineOptions options = BaseOptions();
  options.epochs = 4;
  options.real = &real;
  Engine engine(ds, workload, options);
  const RunReport report = engine.Run();
  ASSERT_FALSE(report.oom);

  // Gradient updates per epoch ~ batches / N_t (synchronous data
  // parallelism, paper Figure 16b).
  const EpochReport& first = report.epochs.front();
  const std::size_t group = report.num_trainers > 0
                                ? static_cast<std::size_t>(report.num_trainers)
                                : static_cast<std::size_t>(report.num_samplers);
  EXPECT_EQ(first.gradient_updates, (first.batches + group - 1) / group);

  // Loss decreases and accuracy beats random guessing (1/8).
  const EpochReport& last = report.epochs.back();
  EXPECT_LT(last.mean_loss, first.mean_loss);
  EXPECT_GT(last.eval_accuracy, 0.2);
}

}  // namespace
}  // namespace gnnlab
