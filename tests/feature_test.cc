// Tests for src/feature: the feature store modes and the Extract stage's
// hit/miss/byte accounting and gathering.
#include <gtest/gtest.h>

#include "feature/extractor.h"
#include "feature/feature_store.h"
#include "sampling/sample_block.h"

namespace gnnlab {
namespace {

SampleBlock MakeBlock(std::vector<std::uint8_t> marks) {
  RemapScratch scratch(10);
  SampleBlockBuilder builder(&scratch);
  const VertexId seeds[] = {0, 1};
  builder.Begin(seeds);
  builder.BeginHop();
  builder.AddEdge(0, 4);
  builder.AddEdge(1, 5);
  builder.EndHop();
  SampleBlock block = builder.Finish();
  block.mutable_cache_marks() = std::move(marks);
  return block;
}

TEST(FeatureStoreTest, VirtualStoreHasNoData) {
  const FeatureStore store = FeatureStore::Virtual(100, 64);
  EXPECT_FALSE(store.materialized());
  EXPECT_EQ(store.num_vertices(), 100u);
  EXPECT_EQ(store.dim(), 64u);
  EXPECT_EQ(store.RowBytes(), 64 * sizeof(float));
  EXPECT_EQ(store.TotalBytes(), 100 * 64 * sizeof(float));
}

TEST(FeatureStoreDeathTest, VirtualRowAccessAborts) {
  const FeatureStore store = FeatureStore::Virtual(10, 4);
  EXPECT_DEATH((void)store.Row(0), "Check failed");
}

TEST(FeatureStoreTest, RandomStoreValuesInRange) {
  Rng rng(1);
  const FeatureStore store = FeatureStore::Random(50, 8, &rng);
  ASSERT_TRUE(store.materialized());
  for (VertexId v = 0; v < 50; ++v) {
    for (const float x : store.Row(v)) {
      EXPECT_GE(x, -1.0f);
      EXPECT_LE(x, 1.0f);
    }
  }
}

TEST(FeatureStoreTest, ClusteredRowsNearCentroids) {
  Rng rng(2);
  const auto labels = MakeCommunityLabels(100, 10, 5);
  const FeatureStore store = FeatureStore::Clustered(100, 16, labels, 5, 0.01, &rng);
  // Two vertices with the same label should be much closer than two with
  // different labels (noise 0.01 vs centroid scale ~1).
  auto dist2 = [&](VertexId a, VertexId b) {
    double d = 0.0;
    for (std::uint32_t c = 0; c < 16; ++c) {
      const double diff = store.Row(a)[c] - store.Row(b)[c];
      d += diff * diff;
    }
    return d;
  };
  EXPECT_LT(dist2(0, 1), 0.1);    // Same community -> same label.
  EXPECT_GT(dist2(0, 10), 0.1);   // Adjacent communities differ.
}

TEST(FeatureStoreTest, CopyRowMatchesRow) {
  Rng rng(3);
  const FeatureStore store = FeatureStore::Random(10, 4, &rng);
  float buf[4];
  store.CopyRow(7, buf);
  const auto row = store.Row(7);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(buf[c], row[c]);
  }
}

TEST(CommunityLabelsTest, BlocksShareLabels) {
  const auto labels = MakeCommunityLabels(20, 4, 3);
  EXPECT_EQ(labels[0], labels[3]);
  EXPECT_NE(labels[0], labels[4]);
  EXPECT_EQ(labels[0], labels[12]);  // Community 3 wraps back to class 0.
}

TEST(ExtractorTest, UnmarkedBlockIsAllMisses) {
  const FeatureStore store = FeatureStore::Virtual(10, 32);
  const Extractor extractor(store);
  const SampleBlock block = MakeBlock({});
  const ExtractStats stats = extractor.Extract(block, nullptr);
  EXPECT_EQ(stats.distinct_vertices, 4u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.host_misses, 4u);
  EXPECT_EQ(stats.bytes_from_host, 4 * 32 * sizeof(float));
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.0);
}

TEST(ExtractorTest, MarkedBlockSplitsTraffic) {
  const FeatureStore store = FeatureStore::Virtual(10, 32);
  const Extractor extractor(store);
  const SampleBlock block = MakeBlock({1, 0, 1, 0});
  const ExtractStats stats = extractor.Extract(block, nullptr);
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(stats.host_misses, 2u);
  EXPECT_EQ(stats.bytes_from_cache, 2 * 32 * sizeof(float));
  EXPECT_EQ(stats.bytes_from_host, 2 * 32 * sizeof(float));
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(ExtractorTest, GathersRowsInLocalOrder) {
  Rng rng(4);
  const FeatureStore store = FeatureStore::Random(10, 4, &rng);
  const Extractor extractor(store);
  const SampleBlock block = MakeBlock({});
  std::vector<float> out;
  extractor.Extract(block, &out);
  ASSERT_EQ(out.size(), 4 * 4u);
  const auto vertices = block.vertices();
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const auto row = store.Row(vertices[i]);
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(out[i * 4 + c], row[c]);
    }
  }
}

TEST(ExtractorTest, VirtualStoreSkipsGather) {
  const FeatureStore store = FeatureStore::Virtual(10, 4);
  const Extractor extractor(store);
  const SampleBlock block = MakeBlock({});
  std::vector<float> out{1.0f, 2.0f};
  extractor.Extract(block, &out);
  EXPECT_EQ(out.size(), 2u);  // Untouched.
}

TEST(ExtractStatsTest, AddAccumulates) {
  ExtractStats a;
  a.distinct_vertices = 10;
  a.cache_hits = 4;
  a.host_misses = 6;
  a.bytes_from_host = 600;
  ExtractStats b = a;
  b.Add(a);
  EXPECT_EQ(b.distinct_vertices, 20u);
  EXPECT_EQ(b.cache_hits, 8u);
  EXPECT_EQ(b.bytes_from_host, 1200u);
}

}  // namespace
}  // namespace gnnlab
