// Tests for src/core building blocks: workloads, the DES global queue, the
// flexible-scheduling formula, the switching profit metric, stats, and the
// shared-resource timeline.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/executors.h"
#include "core/global_queue.h"
#include "core/scheduler.h"
#include "core/stats.h"
#include "core/switching.h"
#include "core/workload.h"
#include "graph/dataset.h"

namespace gnnlab {
namespace {

// --- Workload ---------------------------------------------------------------

TEST(WorkloadTest, StandardConfigsMatchPaper) {
  const Workload gcn = StandardWorkload(GnnModelKind::kGcn);
  EXPECT_EQ(gcn.fanouts, (std::vector<std::uint32_t>{15, 10, 5}));
  EXPECT_EQ(gcn.num_layers, 3u);
  EXPECT_EQ(gcn.hidden_dim, 256u);
  EXPECT_EQ(gcn.sampling, SamplingAlgorithm::kKhopUniform);

  const Workload sage = StandardWorkload(GnnModelKind::kGraphSage);
  EXPECT_EQ(sage.fanouts, (std::vector<std::uint32_t>{25, 10}));
  EXPECT_EQ(sage.num_layers, 2u);

  const Workload psg = StandardWorkload(GnnModelKind::kPinSage);
  EXPECT_EQ(psg.sampling, SamplingAlgorithm::kRandomWalk);
  EXPECT_EQ(psg.num_layers, 3u);
  EXPECT_EQ(psg.rw_walks, 4u);
  EXPECT_EQ(psg.rw_length, 3u);
  EXPECT_EQ(psg.rw_neighbors, 5u);
}

TEST(WorkloadTest, WeightedGcnUsesWeightedSampling) {
  const Workload w = WeightedGcnWorkload();
  EXPECT_EQ(w.sampling, SamplingAlgorithm::kKhopWeighted);
  EXPECT_EQ(w.fanouts, (std::vector<std::uint32_t>{15, 10, 5}));
}

TEST(WorkloadTest, MakeSamplerProducesMatchingAlgorithm) {
  const Dataset ds = MakeDataset(DatasetId::kProducts, 0.05, 42);
  for (const GnnModelKind kind :
       {GnnModelKind::kGcn, GnnModelKind::kGraphSage, GnnModelKind::kPinSage}) {
    const Workload w = StandardWorkload(kind);
    auto sampler = MakeSampler(w, ds, nullptr);
    EXPECT_EQ(sampler->algorithm(), w.sampling);
    EXPECT_EQ(sampler->num_layers(), w.num_layers);
  }
}

TEST(WorkloadDeathTest, WeightedSamplerRequiresWeights) {
  const Dataset ds = MakeDataset(DatasetId::kProducts, 0.05, 42);
  const Workload w = WeightedGcnWorkload();
  EXPECT_DEATH((void)MakeSampler(w, ds, nullptr), "weights");
}

TEST(WorkloadTest, MakeTrainWorkCountsBlock) {
  const Dataset ds = MakeDataset(DatasetId::kProducts, 0.05, 42);
  const Workload w = StandardWorkload(GnnModelKind::kGcn);
  auto sampler = MakeSampler(w, ds, nullptr);
  Rng rng(1);
  const VertexId seeds[] = {0, 1, 2};
  const SampleBlock block = sampler->Sample(seeds, &rng, nullptr);
  const TrainWork work = MakeTrainWork(w, ds, block);
  EXPECT_EQ(work.block_vertices, block.vertices().size());
  std::size_t edges = 0;
  for (std::size_t h = 0; h < block.num_hops(); ++h) {
    edges += block.hop(h).size();
  }
  EXPECT_EQ(work.block_edges, edges);
  EXPECT_EQ(work.feature_dim, ds.feature_dim);
  EXPECT_EQ(work.hidden_dim, 256u);
}

// --- GlobalQueue ----------------------------------------------------------------

SampleBlock TinyBlock(VertexId seed) {
  static RemapScratch scratch(100);
  SampleBlockBuilder builder(&scratch);
  const VertexId seeds[] = {seed};
  builder.Begin(seeds);
  return builder.Finish();
}

TEST(GlobalQueueTest, FifoOrder) {
  GlobalQueue q;
  q.Push({TinyBlock(1), 0, 0, 0.0});
  q.Push({TinyBlock(2), 0, 1, 0.0});
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.TryPop()->batch, 0u);
  EXPECT_EQ(q.TryPop()->batch, 1u);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(GlobalQueueTest, TracksStoredBytes) {
  GlobalQueue q;
  TrainTask task{TinyBlock(1), 0, 0, 0.0};
  const ByteCount bytes = task.block.QueueBytes();
  q.Push(std::move(task));
  EXPECT_EQ(q.stored_bytes(), bytes);
  (void)q.TryPop();
  EXPECT_EQ(q.stored_bytes(), 0u);
}

TEST(GlobalQueueTest, ReportTracksPeaks) {
  GlobalQueue q;
  q.Push({TinyBlock(1), 0, 0, 0.0});
  q.Push({TinyBlock(2), 0, 1, 0.0});
  (void)q.TryPop();
  q.Push({TinyBlock(3), 0, 2, 0.0});
  EXPECT_EQ(q.report().total_enqueued, 3u);
  EXPECT_EQ(q.report().max_depth, 2u);
  EXPECT_GT(q.report().max_stored_bytes, 0u);
  q.ResetReport();
  EXPECT_EQ(q.report().total_enqueued, 0u);
}

// --- Scheduler -------------------------------------------------------------------

TEST(SchedulerTest, FormulaMatchesPaper) {
  // N_s = ceil(N_g / (K + 1)), K = T_t / T_s.
  const ScheduleDecision d = DecideAllocation(8, 1.0, 3.0);  // K = 3.
  EXPECT_EQ(d.num_samplers, 2);
  EXPECT_EQ(d.num_trainers, 6);
  EXPECT_DOUBLE_EQ(d.k_ratio, 3.0);
}

TEST(SchedulerTest, SlowTrainersGetMoreGpus) {
  const ScheduleDecision d = DecideAllocation(8, 1.0, 10.0);  // K = 10.
  EXPECT_EQ(d.num_samplers, 1);
  EXPECT_EQ(d.num_trainers, 7);
}

TEST(SchedulerTest, SlowSamplersGetMoreGpus) {
  const ScheduleDecision d = DecideAllocation(8, 4.0, 1.0);  // K = 0.25.
  EXPECT_EQ(d.num_samplers, 7);  // ceil(8 / 1.25) = 7.
  EXPECT_EQ(d.num_trainers, 1);
}

TEST(SchedulerTest, SingleGpuIsOneSamplerZeroTrainers) {
  const ScheduleDecision d = DecideAllocation(1, 1.0, 1.0);
  EXPECT_EQ(d.num_samplers, 1);
  EXPECT_EQ(d.num_trainers, 0);
}

TEST(SchedulerTest, ExtremeKStillLeavesOneSampler) {
  const ScheduleDecision d = DecideAllocation(8, 1.0, 1e9);
  EXPECT_EQ(d.num_samplers, 1);
  EXPECT_EQ(d.num_trainers, 7);
}

TEST(SchedulerTest, EqualTimesSplitEvenly) {
  const ScheduleDecision d = DecideAllocation(8, 1.0, 1.0);  // K = 1.
  EXPECT_EQ(d.num_samplers, 4);
  EXPECT_EQ(d.num_trainers, 4);
}

// --- Switching --------------------------------------------------------------------

TEST(SwitchProfitTest, MatchesFormula) {
  // P = M_r * T_t / N_t - T_t'.
  EXPECT_DOUBLE_EQ(SwitchProfit(10, 2.0, 4, 3.0), 10 * 2.0 / 4 - 3.0);
}

TEST(SwitchProfitTest, InfiniteWithoutTrainers) {
  EXPECT_TRUE(std::isinf(SwitchProfit(0, 1.0, 0, 100.0)));
  EXPECT_GT(SwitchProfit(0, 1.0, 0, 100.0), 0.0);
}

TEST(SwitchProfitTest, NegativeWhenBacklogSmall) {
  EXPECT_LT(SwitchProfit(1, 1.0, 8, 2.0), 0.0);
}

TEST(SwitchControllerTest, DisabledNeverFetches) {
  SwitchController controller(/*enabled=*/false, /*num_trainers=*/0);
  controller.SeedEstimates(1.0, 1.0);
  EXPECT_FALSE(controller.ShouldFetch(1000));
}

TEST(SwitchControllerTest, ZeroTrainersAlwaysFetches) {
  SwitchController controller(true, 0);
  controller.SeedEstimates(1.0, 10.0);
  EXPECT_TRUE(controller.ShouldFetch(0));
  EXPECT_TRUE(controller.ShouldFetch(1));
}

TEST(SwitchControllerTest, FetchesOnlyWithEnoughBacklog) {
  SwitchController controller(true, 4);
  controller.SeedEstimates(/*t_train=*/1.0, /*t_train_standby=*/2.0);
  // P > 0 iff M_r * 1/4 > 2, i.e. M_r > 8.
  EXPECT_FALSE(controller.ShouldFetch(8));
  EXPECT_TRUE(controller.ShouldFetch(9));
}

TEST(SwitchControllerTest, ObservationsMoveEstimates) {
  SwitchController controller(true, 2);
  controller.ObserveTrainerBatch(1.0);
  EXPECT_DOUBLE_EQ(controller.t_train(), 1.0);
  controller.ObserveTrainerBatch(2.0);
  EXPECT_GT(controller.t_train(), 1.0);
  EXPECT_LT(controller.t_train(), 2.0);
  controller.ObserveStandbyBatch(4.0);
  EXPECT_DOUBLE_EQ(controller.t_train_standby(), 4.0);
}

TEST(SwitchControllerTest, SeedDoesNotOverrideObservations) {
  SwitchController controller(true, 2);
  controller.ObserveTrainerBatch(5.0);
  controller.SeedEstimates(1.0, 1.0);
  EXPECT_DOUBLE_EQ(controller.t_train(), 5.0);
}

// --- SharedResource -----------------------------------------------------------------

TEST(SharedResourceTest, FcfsSerializes) {
  SharedResource resource;
  EXPECT_DOUBLE_EQ(resource.Acquire(0.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(resource.Acquire(1.0, 2.0), 4.0);  // Queued behind.
  EXPECT_DOUBLE_EQ(resource.Acquire(10.0, 1.0), 11.0);  // Idle gap.
}

TEST(SharedResourceTest, ZeroDurationIsFree) {
  SharedResource resource;
  EXPECT_DOUBLE_EQ(resource.Acquire(5.0, 0.0), 5.0);
}

// --- Stats -------------------------------------------------------------------------

TEST(StatsTest, StageBreakdownAddAndTotal) {
  StageBreakdown a{1, 2, 3, 4, 5};
  StageBreakdown b{1, 1, 1, 1, 1};
  a.Add(b);
  EXPECT_DOUBLE_EQ(a.sample_graph, 2.0);
  EXPECT_DOUBLE_EQ(a.SampleTotal(), 2 + 3 + 4);
  EXPECT_DOUBLE_EQ(a.train, 6.0);
}

TEST(StatsTest, StageBreakdownAddPinsParallelFieldSemantics) {
  // parallel_workers aggregates by MAX (the widest fan-out seen), while
  // extract_busy aggregates by SUM (total busy seconds across executors) —
  // pinned here because AvgStage/scaling reports depend on exactly this.
  StageBreakdown a;
  a.parallel_workers = 4;
  a.extract_busy = 1.5;
  StageBreakdown b;
  b.parallel_workers = 2;
  b.extract_busy = 2.5;
  a.Add(b);
  EXPECT_EQ(a.parallel_workers, 4u);
  EXPECT_DOUBLE_EQ(a.extract_busy, 4.0);

  // MAX is symmetric: the wider side wins regardless of Add() direction.
  StageBreakdown c;
  c.parallel_workers = 2;
  c.Add(a);
  EXPECT_EQ(c.parallel_workers, 4u);

  // The five stage-time fields all SUM.
  StageBreakdown d{1, 2, 3, 4, 5};
  StageBreakdown e{10, 20, 30, 40, 50};
  d.Add(e);
  EXPECT_DOUBLE_EQ(d.sample_graph, 11.0);
  EXPECT_DOUBLE_EQ(d.sample_mark, 22.0);
  EXPECT_DOUBLE_EQ(d.sample_copy, 33.0);
  EXPECT_DOUBLE_EQ(d.extract, 44.0);
  EXPECT_DOUBLE_EQ(d.train, 55.0);
}

TEST(StatsTest, StageLatencyRecorderSummarizesPerEpoch) {
  StageLatencyRecorder recorder;
  recorder.RecordSample(0.010);
  recorder.RecordSample(0.020);
  recorder.RecordExtract(0.100);
  recorder.RecordTrain(0.200);
  StageLatencies latencies = recorder.Summarize();
  EXPECT_EQ(latencies.sample.count, 2u);
  EXPECT_DOUBLE_EQ(latencies.sample.mean, 0.015);
  EXPECT_DOUBLE_EQ(latencies.sample.max, 0.020);
  EXPECT_EQ(latencies.mark.count, 0u);  // Nothing cached, nothing marked.
  EXPECT_EQ(latencies.extract.count, 1u);
  EXPECT_EQ(latencies.train.count, 1u);

  recorder.Reset();
  EXPECT_EQ(recorder.Summarize().sample.count, 0u);
}

TEST(StatsTest, StageLatencyRecorderMirrorsIntoRegistry) {
  MetricRegistry registry;
  StageLatencyRecorder recorder;
  recorder.BindRegistry(&registry);
  recorder.RecordSample(0.010);
  recorder.RecordTrain(0.200);
  // Per-epoch Reset() leaves the run-wide registry mirror untouched.
  recorder.Reset();
  recorder.RecordSample(0.030);
#if GNNLAB_OBS_ENABLED
  EXPECT_EQ(registry.FindHistogram("stage.sample")->count(), 2u);
  EXPECT_EQ(registry.FindHistogram("stage.train")->count(), 1u);
#endif
  EXPECT_EQ(recorder.Summarize().sample.count, 1u);
}

TEST(GlobalQueueTest, BindMetricsMirrorsDepthAndBytes) {
  MetricRegistry registry;
  GlobalQueue q;
  q.BindMetrics(&registry);
  TrainTask task{TinyBlock(1), 0, 0, 0.0};
  const ByteCount bytes = task.block.QueueBytes();
  q.Push(std::move(task));
#if GNNLAB_OBS_ENABLED
  EXPECT_EQ(registry.FindCounter(kMetricQueueEnqueued)->value(), 1u);
  EXPECT_DOUBLE_EQ(registry.FindGauge(kMetricQueueDepth)->value(), 1.0);
  EXPECT_DOUBLE_EQ(registry.FindGauge(kMetricQueueBytes)->value(),
                   static_cast<double>(bytes));
  (void)q.TryPop();
  EXPECT_DOUBLE_EQ(registry.FindGauge(kMetricQueueDepth)->value(), 0.0);
  EXPECT_DOUBLE_EQ(registry.FindGauge(kMetricQueueBytes)->value(), 0.0);
#else
  (void)bytes;
#endif
}

TEST(StatsTest, RunReportAverages) {
  RunReport report;
  for (int e = 0; e < 3; ++e) {
    EpochReport epoch;
    epoch.epoch_time = 1.0 + e;
    epoch.stage.train = 2.0 * (e + 1);
    report.epochs.push_back(epoch);
  }
  EXPECT_DOUBLE_EQ(report.AvgEpochTime(), 2.0);
  EXPECT_DOUBLE_EQ(report.AvgEpochTime(1), 2.5);
  EXPECT_DOUBLE_EQ(report.AvgStage().train, 4.0);
  EXPECT_DOUBLE_EQ(report.AvgStage(2).train, 6.0);
}

TEST(StatsTest, PreprocessTotal) {
  PreprocessReport p;
  p.disk_load = 1.0;
  p.topo_load = 2.0;
  p.cache_load = 3.0;
  p.presample = 4.0;
  EXPECT_DOUBLE_EQ(p.Total(), 10.0);
}

TEST(CachePolicyKindTest, Names) {
  EXPECT_STREQ(CachePolicyKindName(CachePolicyKind::kNone), "None");
  EXPECT_STREQ(CachePolicyKindName(CachePolicyKind::kDegree), "Degree");
  EXPECT_STREQ(CachePolicyKindName(CachePolicyKind::kPreSC1), "PreSC#1");
  EXPECT_STREQ(CachePolicyKindName(CachePolicyKind::kOptimal), "Optimal");
}

}  // namespace
}  // namespace gnnlab
