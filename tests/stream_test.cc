// The streaming dynamic-graph layer's contract: batched ingest over delta
// segments is deterministic (duplicates dropped, compaction a pure
// per-vertex concatenation that the temporal sampler cannot observe);
// replaying a seeded growth schedule reproduces the generator's snapshot
// bit-for-bit; the temporal k-hop sampler degenerates to uniform k-hop
// when every edge is a candidate and respects the recency window when not;
// the incremental re-ranker moves a bounded number of rows per epoch and
// converges to the full ranking; and the engines' StreamHooks seam keeps
// the zero-ingest case indistinguishable from a static run while a real
// drift run gains an "ingest" attribution component, stream.* metrics,
// and a hit rate between the frozen and full-re-profile extremes.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include <cstdio>

#include "core/threaded_engine.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/temporal.h"
#include "obs/critical_path.h"
#include "obs/health.h"
#include "serve/server.h"
#include "stream/drift_harness.h"

namespace gnnlab {
namespace {

TemporalGraph SmallBase() {
  GraphBuilder builder(6);
  builder.AddTimestampedEdges({{0, 1, 0.10f},
                               {1, 0, 0.10f},
                               {0, 2, 0.20f},
                               {2, 3, 0.30f},
                               {3, 4, 0.40f},
                               {4, 5, 0.50f},
                               {5, 0, 0.60f},
                               {1, 2, 0.70f}});
  std::string error;
  std::optional<TemporalGraph> graph = std::move(builder).BuildTemporal(&error);
  EXPECT_TRUE(graph.has_value()) << error;
  return std::move(*graph);
}

std::vector<VertexId> BlockVertices(const SampleBlock& block) {
  return std::vector<VertexId>(block.vertices().begin(), block.vertices().end());
}

// ---------------------------------------------------------------------------
// DynamicGraph: ingest, duplicate handling, compaction.

TEST(DynamicGraphTest, AppliesBatchesAndDropsDuplicates) {
  DynamicGraph graph(SmallBase());
  ASSERT_EQ(graph.csr().num_edges(), 8u);
  EXPECT_FLOAT_EQ(graph.max_ts(), 0.70f);

  const std::vector<TimestampedEdge> batch = {
      {2, 4, 0.80f}, {0, 1, 0.85f} /* duplicate of a base edge */, {2, 5, 0.90f}};
  const DynamicGraph::ApplyResult result = graph.ApplyBatch(batch);
  EXPECT_EQ(result.applied, 2u);
  EXPECT_EQ(result.duplicates, 1u);
  EXPECT_EQ(graph.pending_edges(), 2u);
  EXPECT_EQ(graph.num_segments(), 1u);
  EXPECT_EQ(graph.total_edges(), 10u);
  EXPECT_FLOAT_EQ(graph.max_ts(), 0.90f);

  ASSERT_EQ(graph.Pending(2).size(), 2u);
  EXPECT_EQ(graph.Pending(2)[0].dst, 4u);
  EXPECT_EQ(graph.Pending(2)[1].dst, 5u);
  EXPECT_TRUE(graph.Pending(0).empty());

  // A later re-send of an already-pending edge is also a duplicate, and an
  // all-duplicate batch appends no delta segment.
  const DynamicGraph::ApplyResult again = graph.ApplyBatch(
      std::vector<TimestampedEdge>{{2, 4, 0.95f}});
  EXPECT_EQ(again.applied, 0u);
  EXPECT_EQ(again.duplicates, 1u);
  EXPECT_EQ(graph.num_segments(), 1u);
}

TEST(DynamicGraphTest, CompactionFoldsPendingAndKeepsInvariants) {
  DynamicGraph graph(SmallBase());
  graph.ApplyBatch(std::vector<TimestampedEdge>{{2, 4, 0.80f}, {2, 5, 0.90f}, {0, 3, 0.95f}});
  EXPECT_FALSE(graph.ShouldCompact(0.5));
  EXPECT_TRUE(graph.ShouldCompact(0.25));

  graph.Compact();
  EXPECT_EQ(graph.pending_edges(), 0u);
  EXPECT_EQ(graph.num_segments(), 0u);
  ASSERT_EQ(graph.csr().num_edges(), 11u);
  EXPECT_EQ(graph.BaseEdgeTs().size(), 11u);
  EXPECT_FALSE(FindDuplicateEdge(graph.csr()).has_value());
  EXPECT_FALSE(FindTimestampOrderViolation(graph.csr(), graph.BaseEdgeTs()).has_value());

  // Vertex 2's adjacency: base arrivals first (dst 3), then pending in
  // arrival order (4 then 5) — a pure concatenation.
  const auto nbrs = graph.csr().Neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 3u);
  EXPECT_EQ(nbrs[1], 4u);
  EXPECT_EQ(nbrs[2], 5u);
}

TEST(DynamicGraphTest, SamplerPicksIdenticalAcrossCompaction) {
  // The sampler holds the address-stable csr() reference; folding the
  // overlay must not change what it picks (candidate order is preserved).
  DynamicGraph graph(SmallBase());
  graph.ApplyBatch(std::vector<TimestampedEdge>{{2, 4, 0.80f}, {2, 5, 0.90f}, {0, 3, 0.95f}});
  graph.SetClock(1.0, 0.0f);

  std::unique_ptr<Sampler> sampler = MakeKhopTemporalSampler(graph.csr(), graph, {2, 2});
  const std::vector<VertexId> seeds = {0, 2};
  Rng rng_a(17);
  SamplerStats stats_a;
  const SampleBlock before = sampler->Sample(seeds, &rng_a, &stats_a);

  graph.Compact();
  Rng rng_b(17);
  SamplerStats stats_b;
  const SampleBlock after = sampler->Sample(seeds, &rng_b, &stats_b);

  EXPECT_EQ(BlockVertices(before), BlockVertices(after));
  ASSERT_EQ(before.num_hops(), after.num_hops());
  for (std::size_t h = 0; h < before.num_hops(); ++h) {
    EXPECT_EQ(before.hop(h).src_local, after.hop(h).src_local);
    EXPECT_EQ(before.hop(h).dst_local, after.hop(h).dst_local);
  }
  EXPECT_EQ(stats_a.sampled_neighbors, stats_b.sampled_neighbors);
}

// ---------------------------------------------------------------------------
// Satellite: replaying the generator's event schedule reproduces the final
// snapshot bit-for-bit (ingest + compaction are lossless).

TEST(TemporalGrowthReplayTest, ReplayReproducesSnapshotBitForBit) {
  TemporalGrowthParams params;
  params.num_vertices = 400;
  params.edges_per_vertex = 6;
  params.churn_edges_per_vertex = 3;
  Rng rng(91);
  std::vector<TimestampedEdge> events;
  const TemporalGraph snapshot = GenerateTemporalGrowth(params, &rng, &events);
  ASSERT_FALSE(events.empty());
  ASSERT_EQ(snapshot.edge_ts.size(), snapshot.graph.num_edges());

  // Replay: first 30% as the base snapshot, the rest as uneven streamed
  // batches with a compaction in the middle.
  const std::size_t base_count = events.size() * 3 / 10;
  GraphBuilder builder(params.num_vertices);
  builder.AddTimestampedEdges(
      std::vector<TimestampedEdge>(events.begin(), events.begin() + base_count));
  std::string error;
  std::optional<TemporalGraph> base = std::move(builder).BuildTemporal(&error);
  ASSERT_TRUE(base.has_value()) << error;

  DynamicGraph live(std::move(*base));
  std::size_t cursor = base_count;
  std::size_t batch_index = 0;
  while (cursor < events.size()) {
    const std::size_t take = std::min<std::size_t>(97 + 13 * (batch_index % 5),
                                                   events.size() - cursor);
    live.ApplyBatch(std::span<const TimestampedEdge>(events.data() + cursor, take));
    cursor += take;
    ++batch_index;
    if (batch_index % 3 == 0) {
      live.Compact();
    }
  }
  live.Compact();

  ASSERT_EQ(live.csr().num_vertices(), snapshot.graph.num_vertices());
  ASSERT_EQ(live.csr().num_edges(), snapshot.graph.num_edges());
  for (VertexId v = 0; v <= params.num_vertices; ++v) {
    ASSERT_EQ(live.csr().indptr()[v], snapshot.graph.indptr()[v]) << "vertex " << v;
  }
  for (EdgeIndex e = 0; e < snapshot.graph.num_edges(); ++e) {
    ASSERT_EQ(live.csr().indices()[e], snapshot.graph.indices()[e]) << "edge " << e;
    ASSERT_EQ(live.BaseEdgeTs()[e], snapshot.edge_ts[e]) << "edge " << e;
  }
}

// ---------------------------------------------------------------------------
// Temporal sampler: uniform-degenerate and window-bounded behavior.

TEST(TemporalSamplerTest, MatchesUniformWhenEveryEdgeIsCandidate) {
  TemporalGrowthParams params;
  params.num_vertices = 300;
  params.edges_per_vertex = 5;
  Rng grow_rng(7);
  TemporalGraph snapshot = GenerateTemporalGrowth(params, &grow_rng, nullptr);
  DynamicGraph live(std::move(snapshot));
  live.SetClock(2.0, 0.0f);  // Unbounded window, clock past every arrival.

  std::unique_ptr<Sampler> temporal = MakeKhopTemporalSampler(live.csr(), live, {4, 4});
  std::unique_ptr<Sampler> uniform = MakeKhopUniformSampler(live.csr(), {4, 4});
  std::vector<VertexId> seeds(32);
  std::iota(seeds.begin(), seeds.end(), VertexId{5});
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng_t(seed);
    Rng rng_u(seed);
    SamplerStats st, su;
    const SampleBlock bt = temporal->Sample(seeds, &rng_t, &st);
    const SampleBlock bu = uniform->Sample(seeds, &rng_u, &su);
    EXPECT_EQ(BlockVertices(bt), BlockVertices(bu)) << "rng seed " << seed;
    EXPECT_EQ(bt.num_seeds(), bu.num_seeds());
    EXPECT_EQ(st.sampled_neighbors, su.sampled_neighbors);
  }
}

TEST(TemporalSamplerTest, RecencyWindowExcludesOldAndFutureEdges) {
  // Vertex 0's neighbors arrive at t=0.1 (1), t=0.5 (2), t=0.9 (3): with
  // now=0.6 and window 0.3 only the t=0.5 edge is a candidate.
  GraphBuilder builder(4);
  builder.AddTimestampedEdges({{0, 1, 0.1f}, {0, 2, 0.5f}, {0, 3, 0.9f}});
  std::string error;
  std::optional<TemporalGraph> base = std::move(builder).BuildTemporal(&error);
  ASSERT_TRUE(base.has_value()) << error;
  DynamicGraph live(std::move(*base));
  live.SetClock(0.6, 0.3f);

  std::unique_ptr<Sampler> sampler = MakeKhopTemporalSampler(live.csr(), live, {3});
  const std::vector<VertexId> seeds = {0};
  Rng rng(5);
  SamplerStats stats;
  const SampleBlock block = sampler->Sample(seeds, &rng, &stats);
  const std::vector<VertexId> vertices = BlockVertices(block);
  ASSERT_EQ(vertices.size(), 2u);  // Seed + the single in-window neighbor.
  EXPECT_EQ(vertices[0], 0u);
  EXPECT_EQ(vertices[1], 2u);

  // Unbounded window with the clock advanced sees all three.
  live.SetClock(1.0, 0.0f);
  Rng rng2(5);
  const SampleBlock all = sampler->Sample(seeds, &rng2, &stats);
  EXPECT_EQ(BlockVertices(all).size(), 4u);
}

// ---------------------------------------------------------------------------
// Satellite: non-temporal k-hop samplers ignore timestamps entirely.

TEST(TemporalSamplerTest, ReservoirAndWeightedIgnoreTimestamps) {
  // Two temporal graphs with identical arrival-ordered adjacency but
  // different timestamp assignments: reservoir and weighted k-hop must
  // pick identically on both (they never read edge_ts), while the
  // window-bounded temporal sampler distinguishes them.
  const std::vector<TimestampedEdge> arrivals = {
      {0, 1, 0.0f}, {0, 2, 0.0f}, {0, 3, 0.0f}, {1, 2, 0.0f},
      {2, 0, 0.0f}, {3, 1, 0.0f}, {1, 0, 0.0f}, {2, 3, 0.0f}};
  auto build = [&](float step) {
    std::vector<TimestampedEdge> stamped = arrivals;
    for (std::size_t i = 0; i < stamped.size(); ++i) {
      stamped[i].ts = step * static_cast<float>(i + 1);
    }
    GraphBuilder builder(4);
    builder.AddTimestampedEdges(stamped);
    std::string error;
    std::optional<TemporalGraph> graph = std::move(builder).BuildTemporal(&error);
    EXPECT_TRUE(graph.has_value()) << error;
    return std::move(*graph);
  };
  const TemporalGraph a = build(0.01f);
  const TemporalGraph b = build(0.1f);
  ASSERT_EQ(a.graph.indices()[0], b.graph.indices()[0]);

  const std::vector<VertexId> seeds = {0, 1, 2, 3};
  for (const bool weighted : {false, true}) {
    std::unique_ptr<Sampler> sa, sb;
    EdgeWeights wa, wb;
    if (weighted) {
      // Identical per-vertex weight timestamps (same seed, same adjacency),
      // deliberately unrelated to the temporal edge_ts arrays.
      Rng weight_rng_a(31), weight_rng_b(31);
      wa = EdgeWeights::RandomTimestamps(a.graph, 2.0, &weight_rng_a);
      wb = EdgeWeights::RandomTimestamps(b.graph, 2.0, &weight_rng_b);
      sa = MakeKhopWeightedSampler(a.graph, wa, {2});
      sb = MakeKhopWeightedSampler(b.graph, wb, {2});
    } else {
      sa = MakeKhopReservoirSampler(a.graph, {2});
      sb = MakeKhopReservoirSampler(b.graph, {2});
    }
    Rng ra(23), rb(23);
    SamplerStats stats;
    const SampleBlock block_a = sa->Sample(seeds, &ra, &stats);
    const SampleBlock block_b = sb->Sample(seeds, &rb, &stats);
    EXPECT_EQ(BlockVertices(block_a), BlockVertices(block_b))
        << (weighted ? "weighted" : "reservoir") << " k-hop read timestamps";
  }
}

// ---------------------------------------------------------------------------
// IncrementalRanker: bounded deltas, determinism, convergence.

TEST(IncrementalRankerTest, PlansBoundedStrictlyImprovingSwaps) {
  const VertexId n = 10;
  IncrementalRankerOptions options;
  options.max_move_fraction = 0.5;  // Capacity 4 -> at most 2 moves.
  IncrementalRanker ranker(n, options);
  // Hot set {6,7,8,9}, cold set {0,1,2,3} currently resident.
  ranker.ObserveCounts({1, 1, 1, 1, 0, 0, 9, 9, 9, 9});

  const std::vector<VertexId> cold = {0, 1, 2, 3};
  FeatureCache cache = FeatureCache::Load(cold, 0.4, n, 4);
  ASSERT_EQ(cache.num_cached(), 4u);
  const IncrementalRanker::RerankPlan plan = ranker.PlanDelta(cache);
  ASSERT_EQ(plan.admit.size(), 2u);
  ASSERT_EQ(plan.evict.size(), 2u);
  EXPECT_EQ(plan.admit[0], 6u);  // Hottest missing first; ties by id.
  EXPECT_EQ(plan.admit[1], 7u);
  for (const VertexId v : plan.evict) {
    EXPECT_TRUE(cache.Contains(v));
  }

  // Equal scores must not churn: resident {6,7,8,9} is already optimal.
  const std::vector<VertexId> hottest = {6, 7, 8, 9};
  FeatureCache hot = FeatureCache::Load(hottest, 0.4, n, 4);
  const IncrementalRanker::RerankPlan none = ranker.PlanDelta(hot);
  EXPECT_TRUE(none.admit.empty());
  EXPECT_TRUE(none.evict.empty());
}

TEST(IncrementalRankerTest, DecayedWindowPrefersRecentEpochs) {
  const VertexId n = 4;
  IncrementalRankerOptions options;
  options.window_epochs = 2;
  options.decay = 0.5;
  IncrementalRanker ranker(n, options);
  ranker.ObserveCounts({10, 0, 2, 0});  // Older: weight 0.5.
  ranker.ObserveCounts({0, 8, 2, 0});   // Newest: weight 1.
  const std::vector<double> scores = ranker.MergedScores();
  EXPECT_DOUBLE_EQ(scores[0], 5.0);
  EXPECT_DOUBLE_EQ(scores[1], 8.0);
  EXPECT_DOUBLE_EQ(scores[2], 3.0);
  const std::vector<VertexId> ranking = ranker.Ranking();
  EXPECT_EQ(ranking[0], 1u);
  EXPECT_EQ(ranking[1], 0u);
  EXPECT_EQ(ranking[2], 2u);
  EXPECT_EQ(ranking[3], 3u);

  // A third epoch evicts the first from the window.
  ranker.ObserveCounts({0, 8, 2, 0});
  EXPECT_EQ(ranker.window_size(), 2u);
  EXPECT_DOUBLE_EQ(ranker.MergedScores()[0], 0.0);
}

TEST(IncrementalRankerTest, BoundedDeltasConvergeToFullRanking) {
  const VertexId n = 64;
  IncrementalRankerOptions options;
  options.max_move_fraction = 0.25;
  IncrementalRanker ranker(n, options);
  std::vector<std::uint64_t> counts(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    counts[v] = (v * 37 + 11) % 97;  // Arbitrary distinct-ish heat.
  }

  const std::vector<VertexId> initial = {0, 1, 2, 3, 4, 5, 6, 7};
  FeatureCache cache = FeatureCache::Load(initial, 0.125, n, 4);
  const std::size_t capacity = cache.num_cached();
  for (int epoch = 0; epoch < 16; ++epoch) {
    ranker.ObserveCounts(counts);
    const IncrementalRanker::RerankPlan plan = ranker.PlanDelta(cache);
    EXPECT_LE(plan.admit.size(), ranker.max_moves(capacity));
    if (plan.admit.empty()) {
      break;
    }
    cache.ApplyResidencyDelta(plan.admit, plan.evict);
  }
  // Steady state: cache holds exactly the top-capacity of the ranking.
  const std::vector<VertexId> ranking = ranker.Ranking();
  for (std::size_t i = 0; i < capacity; ++i) {
    EXPECT_TRUE(cache.Contains(ranking[i])) << "rank " << i;
  }
  EXPECT_TRUE(ranker.PlanDelta(cache).admit.empty());
}

// ---------------------------------------------------------------------------
// Engine integration via the StreamHooks seam.

struct DriftGraphParts {
  Dataset dataset;
  std::unique_ptr<DynamicGraph> live;
};

DriftGraphParts MakeStaticDriftParts(std::uint64_t seed) {
  TemporalGrowthParams growth;
  growth.num_vertices = 1200;
  growth.edges_per_vertex = 6;
  growth.churn_edges_per_vertex = 2;
  Rng rng(seed);
  TemporalGraph snapshot = GenerateTemporalGrowth(growth, &rng, nullptr);

  DriftGraphParts parts;
  parts.dataset.id = DatasetId::kProducts;
  parts.dataset.name = "stream-static";
  parts.dataset.graph = snapshot.graph;
  Rng train_rng(seed + 1);
  parts.dataset.train_set = TrainingSet::SelectUniform(growth.num_vertices, 512, &train_rng);
  parts.dataset.feature_dim = 32;
  parts.dataset.batch_size = 64;
  parts.live = std::make_unique<DynamicGraph>(std::move(snapshot));
  return parts;
}

TEST(StreamEngineTest, ZeroIngestMatchesStaticRun) {
  // An empty schedule + frozen mode must be indistinguishable from a plain
  // static run: identical sampled sets, cache contents, and hit counts
  // (the temporal sampler degenerates to uniform k-hop), and no ingest
  // blame on the critical path.
  DriftGraphParts parts = MakeStaticDriftParts(29);
  EngineOptions options;
  options.num_gpus = 2;
  options.epochs = 3;
  options.seed = 9;
  options.cache_ratio_override = 0.1;

  const Workload static_workload = StandardWorkload(GnnModelKind::kGcn);
  Engine static_engine(parts.dataset, static_workload, options);
  const RunReport static_report = static_engine.Run();
  ASSERT_FALSE(static_report.oom) << static_report.oom_detail;

  const Workload stream_workload = TemporalGcnWorkload(0.0f);
  StreamEngineHooksOptions hook_options;
  hook_options.fanouts = stream_workload.fanouts;
  hook_options.window = 0.0f;
  hook_options.mode = RerankMode::kFrozen;
  hook_options.feature_dim = parts.dataset.feature_dim;
  StreamEngineHooks hooks(parts.live.get(),
                          std::vector<std::vector<TimestampedEdge>>(3), hook_options);
  EngineOptions stream_options = options;
  stream_options.stream = &hooks;
  Engine stream_engine(parts.dataset, stream_workload, stream_options);
  const RunReport stream_report = stream_engine.Run();
  ASSERT_FALSE(stream_report.oom) << stream_report.oom_detail;

  ASSERT_EQ(stream_report.epochs.size(), static_report.epochs.size());
  for (std::size_t e = 0; e < static_report.epochs.size(); ++e) {
    EXPECT_EQ(stream_report.epochs[e].batches, static_report.epochs[e].batches);
    EXPECT_EQ(stream_report.epochs[e].extract.distinct_vertices,
              static_report.epochs[e].extract.distinct_vertices);
    EXPECT_EQ(stream_report.epochs[e].extract.cache_hits,
              static_report.epochs[e].extract.cache_hits);
    EXPECT_EQ(stream_report.epochs[e].extract.bytes_from_cache,
              static_report.epochs[e].extract.bytes_from_cache);
  }
  EXPECT_EQ(stream_report.attribution.blame.ingest, 0.0);
  EXPECT_EQ(hooks.total_ingest_seconds(), 0.0);
  EXPECT_EQ(hooks.total_admitted(), 0u);
}

TEST(StreamEngineTest, DriftRunIsDeterministic) {
  DriftScenarioOptions options;
  options.num_vertices = 1500;
  options.epochs = 4;
  const DriftRunResult a = RunDriftScenario(RerankMode::kIncremental, options);
  const DriftRunResult b = RunDriftScenario(RerankMode::kIncremental, options);
  EXPECT_EQ(a.ingested_edges, b.ingested_edges);
  EXPECT_EQ(a.admitted_rows, b.admitted_rows);
  EXPECT_EQ(a.compactions, b.compactions);
  EXPECT_DOUBLE_EQ(a.drift_hit_rate, b.drift_hit_rate);
  EXPECT_DOUBLE_EQ(a.total_rerank_seconds, b.total_rerank_seconds);
  ASSERT_EQ(a.report.epochs.size(), b.report.epochs.size());
  for (std::size_t e = 0; e < a.report.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(a.report.epochs[e].epoch_time, b.report.epochs[e].epoch_time);
  }
  EXPECT_GT(a.ingested_edges, 0u);
  EXPECT_GT(a.admitted_rows, 0u);
}

TEST(StreamEngineTest, IncrementalRecoversHitRateAtFractionOfCost) {
  DriftScenarioOptions options;
  // Every extract goes through the re-rankable dedicated Trainer cache, so
  // the hit-rate comparison isolates the re-rank policy.
  options.dynamic_switching = false;
  const DriftRunResult frozen = RunDriftScenario(RerankMode::kFrozen, options);
  const DriftRunResult incremental = RunDriftScenario(RerankMode::kIncremental, options);
  const DriftRunResult full = RunDriftScenario(RerankMode::kFullReprofile, options);

  // All three modes replay the same event schedule.
  EXPECT_EQ(frozen.ingested_edges, incremental.ingested_edges);
  EXPECT_EQ(frozen.ingested_edges, full.ingested_edges);
  EXPECT_EQ(frozen.admitted_rows, 0u);
  EXPECT_DOUBLE_EQ(frozen.total_rerank_seconds, 0.0);

  // Hit-rate ordering under drift: frozen <= incremental <= full (full
  // re-profiling is the upper bound the incremental ranker chases).
  EXPECT_GT(incremental.drift_hit_rate, frozen.drift_hit_rate);
  EXPECT_GE(full.drift_hit_rate + 1e-9, incremental.drift_hit_rate);
  // The bench gate (fig_drift) pins >= 80% gap recovery at < 10% cost;
  // the test pins a conservative half/quarter so scenario-tuning in the
  // bench never breaks the unit suite.
  const double gap = full.drift_hit_rate - frozen.drift_hit_rate;
  ASSERT_GT(gap, 0.0);
  EXPECT_GE(incremental.drift_hit_rate - frozen.drift_hit_rate, 0.5 * gap);
  ASSERT_GT(full.total_rerank_seconds, 0.0);
  EXPECT_LT(incremental.total_rerank_seconds, 0.25 * full.total_rerank_seconds);
}

#if GNNLAB_OBS_ENABLED
TEST(StreamEngineTest, DriftRunRecordsIngestAttributionAndMetrics) {
  MetricRegistry registry;
  HealthMonitor::Options health_options;
  AlertRule rule;
  ASSERT_TRUE(ParseAlertRule("backlog: queue.depth > 0", &rule));
  health_options.rules.push_back(rule);
  HealthMonitor health(&registry, health_options);

  DriftScenarioOptions options;
  options.num_vertices = 1500;
  options.epochs = 4;
  // Two Samplers + one dedicated Trainer: the lone Trainer backs up under
  // ingest-heavy epochs, so the standby switcher (and the backlog alert
  // rule below) actually evaluates.
  options.num_gpus = 3;
  const DriftRunResult result =
      RunDriftScenario(RerankMode::kIncremental, options, &registry, &health);

  // Critical-path attribution gained the ingest component and still sums
  // to 1 across the (now ten) stages.
  EXPECT_GT(result.report.attribution.blame.ingest, 0.0);
  const StageBlame fractions = result.report.attribution.Fractions();
  double sum = 0.0;
  for (std::size_t i = 0; i < kNumBlameStages; ++i) {
    sum += fractions.Component(i);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);

  // stream.* metrics flow into the shared registry (Prometheus-visible).
  const Counter* edges = registry.FindCounter("stream.ingest.edges");
  ASSERT_NE(edges, nullptr);
  EXPECT_EQ(edges->value(), result.ingested_edges);
  const Counter* batches = registry.FindCounter("stream.ingest.batches");
  ASSERT_NE(batches, nullptr);
  EXPECT_GT(batches->value(), 0u);
  const Counter* admitted = registry.FindCounter("stream.rerank.admitted");
  ASSERT_NE(admitted, nullptr);
  EXPECT_EQ(admitted->value(), result.admitted_rows);
  const Gauge* rerank_seconds = registry.FindGauge("stream.rerank.seconds_total");
  ASSERT_NE(rerank_seconds, nullptr);
  EXPECT_GT(rerank_seconds->value(), 0.0);
  const Gauge* ingest_seconds = registry.FindGauge("stream.ingest.seconds_total");
  ASSERT_NE(ingest_seconds, nullptr);
  EXPECT_GT(ingest_seconds->value(), 0.0);

  // The backlog alert rule bound to queue.depth evaluated during the run.
  EXPECT_NE(registry.FindGauge("alert.backlog"), nullptr);
}
#endif

TEST(StreamEngineTest, ThreadedEngineRunsWithIngestHooks) {
  TemporalGrowthParams growth;
  growth.num_vertices = 800;
  growth.edges_per_vertex = 6;
  growth.churn_edges_per_vertex = 2;
  Rng rng(13);
  std::vector<TimestampedEdge> events;
  GenerateTemporalGrowth(growth, &rng, &events);
  const std::size_t base_count = events.size() * 7 / 10;
  GraphBuilder builder(growth.num_vertices);
  builder.AddTimestampedEdges(
      std::vector<TimestampedEdge>(events.begin(), events.begin() + base_count));
  std::string error;
  std::optional<TemporalGraph> base = std::move(builder).BuildTemporal(&error);
  ASSERT_TRUE(base.has_value()) << error;

  Dataset dataset;
  dataset.id = DatasetId::kProducts;
  dataset.name = "stream-threaded";
  dataset.graph = base->graph;
  Rng train_rng(14);
  dataset.train_set = TrainingSet::SelectUniform(growth.num_vertices, 256, &train_rng);
  dataset.feature_dim = 16;
  dataset.batch_size = 32;

  std::vector<std::uint32_t> labels = MakeCommunityLabels(growth.num_vertices, 64, 8);
  Rng feat_rng(3);
  FeatureStore features =
      FeatureStore::Clustered(growth.num_vertices, 16, labels, 8, 0.3, &feat_rng);
  RealTrainingOptions real;
  real.features = &features;
  real.labels = labels;
  real.num_classes = 8;
  real.hidden_dim = 16;

  DynamicGraph live(std::move(*base));
  const Workload workload = TemporalGcnWorkload(0.0f);
  const std::size_t epochs = 3;
  std::vector<std::vector<TimestampedEdge>> schedule(epochs);
  const std::size_t rest = events.size() - base_count;
  const std::size_t chunk = (rest + epochs - 2) / (epochs - 1);
  std::size_t cursor = base_count;
  for (std::size_t e = 1; e < epochs && cursor < events.size(); ++e) {
    const std::size_t end = std::min(events.size(), cursor + chunk);
    schedule[e].assign(events.begin() + static_cast<std::ptrdiff_t>(cursor),
                       events.begin() + static_cast<std::ptrdiff_t>(end));
    cursor = end;
  }
  StreamEngineHooksOptions hook_options;
  hook_options.fanouts = workload.fanouts;
  hook_options.window = workload.temporal_window;
  hook_options.mode = RerankMode::kIncremental;
  hook_options.feature_dim = dataset.feature_dim;
  StreamEngineHooks hooks(&live, std::move(schedule), hook_options);

  ThreadedEngineOptions options;
  options.num_samplers = 1;
  options.num_trainers = 2;
  options.epochs = epochs;
  options.seed = 1;
  options.real = &real;
  options.stream = &hooks;
  ThreadedEngine engine(dataset, workload, options);
  const ThreadedRunReport report = engine.Run();

  ASSERT_EQ(report.epochs.size(), epochs);
  for (const ThreadedEpochReport& epoch : report.epochs) {
    EXPECT_EQ(epoch.batches, dataset.BatchesPerEpoch());
    EXPECT_GT(epoch.extract.distinct_vertices, 0u);
  }
  EXPECT_EQ(hooks.ingestor().total_applied() + hooks.ingestor().total_duplicates(), rest);
  EXPECT_GT(hooks.ingestor().total_applied(), 0u);
}

// ---------------------------------------------------------------------------
// Serving against a live graph: topology refresh bounds staleness.

TEST(StreamServeTest, RefreshTopologyBoundsStaleness) {
  Dataset dataset = MakeDataset(DatasetId::kProducts, 0.05, 42);
  Workload workload = StandardWorkload(GnnModelKind::kGraphSage);
  workload.fanouts = {4, 4};
  const VertexId nv = dataset.graph.num_vertices();
  std::vector<std::uint32_t> labels = MakeCommunityLabels(nv, 64, 8);
  Rng rng(3);
  FeatureStore features = FeatureStore::Clustered(nv, 16, labels, 8, 0.3, &rng);
  ModelConfig config;
  config.kind = GnnModelKind::kGraphSage;
  config.num_layers = 2;
  config.in_dim = 16;
  config.hidden_dim = 16;
  config.num_classes = 8;
  Rng model_rng(11);
  GnnModel model(config, &model_rng);

  // A live graph behind the sampler factory; the server's workers bind to
  // its address-stable CSR.
  GraphBuilder builder(nv);
  std::vector<TimestampedEdge> stamped;
  for (VertexId v = 0; v + 1 < std::min<VertexId>(nv, 64); ++v) {
    stamped.push_back({v, v + 1, 0.1f});
  }
  builder.AddTimestampedEdges(stamped);
  std::string error;
  std::optional<TemporalGraph> base = std::move(builder).BuildTemporal(&error);
  ASSERT_TRUE(base.has_value()) << error;
  DynamicGraph live(std::move(*base));
  live.SetClock(1.0, 0.0f);

  ServeOptions serve_options;
  serve_options.workers = 1;
  serve_options.sampler_factory = [&live] {
    return MakeKhopTemporalSampler(live.csr(), live, {4, 4});
  };
  InferenceServer server(dataset, workload, features, nullptr, &model, serve_options);

  // Staleness is measured against the live graph's clock and goes back to
  // zero after a refresh.
  EXPECT_DOUBLE_EQ(server.topology_ts(), 0.0);
  EXPECT_DOUBLE_EQ(server.StalenessAgainst(0.8), 0.8);
  live.ApplyBatch(std::vector<TimestampedEdge>{{0, 5, 1.2f}});
  server.RefreshTopology(static_cast<double>(live.max_ts()));
  EXPECT_DOUBLE_EQ(server.topology_ts(), static_cast<double>(live.max_ts()));
  EXPECT_DOUBLE_EQ(server.StalenessAgainst(static_cast<double>(live.max_ts())), 0.0);
  EXPECT_DOUBLE_EQ(server.StalenessAgainst(2.0), 2.0 - static_cast<double>(live.max_ts()));
}

// ---------------------------------------------------------------------------
// Satellite: temporal invariants are validated wherever graphs enter the
// system — the builder and the file loader both reject duplicates and
// per-vertex timestamp regressions with a diagnostic.

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TemporalValidationTest, BuilderRejectsDuplicateEdges) {
  GraphBuilder builder(3);
  builder.AddTimestampedEdges({{0, 1, 0.1f}, {0, 2, 0.2f}, {0, 1, 0.3f}});
  std::string error;
  EXPECT_FALSE(std::move(builder).BuildTemporal(&error).has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
  EXPECT_NE(error.find("0"), std::string::npos) << error;  // Names the vertex.
}

TEST(TemporalValidationTest, BuilderRejectsTimestampRegression) {
  GraphBuilder builder(3);
  builder.AddTimestampedEdges({{1, 0, 0.5f}, {1, 2, 0.2f}});
  std::string error;
  EXPECT_FALSE(std::move(builder).BuildTemporal(&error).has_value());
  EXPECT_NE(error.find("timestamp"), std::string::npos) << error;
}

TEST(TemporalValidationTest, LoaderRoundTripsTemporalGraph) {
  const TemporalGraph original = SmallBase();
  const std::string path = TempPath("stream-roundtrip.gnng");
  ASSERT_TRUE(SaveTemporalCsrGraph(original.graph, original.edge_ts, path));
  std::string error;
  const std::optional<TemporalGraph> loaded = LoadGraphFile(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->graph.num_edges(), original.graph.num_edges());
  ASSERT_EQ(loaded->edge_ts.size(), original.edge_ts.size());
  for (EdgeIndex e = 0; e < original.graph.num_edges(); ++e) {
    EXPECT_EQ(loaded->graph.indices()[e], original.graph.indices()[e]);
    EXPECT_EQ(loaded->edge_ts[e], original.edge_ts[e]);
  }
  std::remove(path.c_str());
}

TEST(TemporalValidationTest, LoaderRejectsDuplicateEdgesInAnyFile) {
  // Even an untimestamped file is screened for duplicate adjacency entries.
  GraphBuilder builder(3);
  builder.set_deduplicate(false).set_remove_self_loops(false);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  const CsrGraph graph = std::move(builder).Build();
  const std::string path = TempPath("stream-dup.gnng");
  ASSERT_TRUE(SaveCsrGraph(graph, path));
  std::string error;
  EXPECT_FALSE(LoadGraphFile(path, &error).has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(TemporalValidationTest, LoaderRejectsTimestampRegression) {
  // The save path does not validate (corruption can also happen on disk);
  // the loader must catch a non-monotonic per-vertex timestamp stream.
  GraphBuilder builder(3);
  builder.set_deduplicate(false).set_remove_self_loops(false);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  const CsrGraph graph = std::move(builder).Build();
  const std::vector<float> bad_ts = {0.9f, 0.1f};  // Regression within vertex 0.
  const std::string path = TempPath("stream-regress.gnng");
  ASSERT_TRUE(SaveTemporalCsrGraph(graph, bad_ts, path));
  std::string error;
  EXPECT_FALSE(LoadGraphFile(path, &error).has_value());
  EXPECT_NE(error.find("timestamp"), std::string::npos) << error;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gnnlab
