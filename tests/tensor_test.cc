// Tests for src/tensor: shapes, matmul variants against hand-computed
// results, and elementwise ops.
#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace gnnlab {
namespace {

Tensor T2x3() {
  return Tensor(2, 3, {1, 2, 3, 4, 5, 6});
}
Tensor T3x2() {
  return Tensor(3, 2, {7, 8, 9, 10, 11, 12});
}

TEST(TensorTest, ConstructionAndAccess) {
  Tensor t(2, 3);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.size(), 6u);
  t.at(1, 2) = 5.0f;
  EXPECT_EQ(t.at(1, 2), 5.0f);
  EXPECT_EQ(t.row(1)[2], 5.0f);
}

TEST(TensorTest, ZerosIsZero) {
  const Tensor t = Tensor::Zeros(3, 3);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t.data()[i], 0.0f);
  }
}

TEST(TensorTest, GlorotWithinLimit) {
  Rng rng(1);
  const Tensor t = Tensor::Glorot(64, 64, &rng);
  const float limit = std::sqrt(6.0f / 128.0f);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_LE(std::abs(t.data()[i]), limit);
  }
}

TEST(TensorTest, FillAndResize) {
  Tensor t(2, 2);
  t.Fill(3.0f);
  EXPECT_EQ(t.at(1, 1), 3.0f);
  t.Resize(1, 4);
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.at(0, 3), 0.0f);
}

TEST(OpsTest, MatMulMatchesHandResult) {
  Tensor out;
  MatMul(T2x3(), T3x2(), &out);
  // [1 2 3; 4 5 6] * [7 8; 9 10; 11 12] = [58 64; 139 154]
  EXPECT_EQ(out.at(0, 0), 58.0f);
  EXPECT_EQ(out.at(0, 1), 64.0f);
  EXPECT_EQ(out.at(1, 0), 139.0f);
  EXPECT_EQ(out.at(1, 1), 154.0f);
}

TEST(OpsTest, MatMulTransAMatchesExplicitTranspose) {
  // a^T * b where a is [3,2]: equals transpose(a) [2,3] * b [3,2].
  const Tensor a = T3x2();
  const Tensor b = T3x2();
  Tensor out;
  MatMulTransA(a, b, &out);
  Tensor a_t(2, 3, {7, 9, 11, 8, 10, 12});
  Tensor expected;
  MatMul(a_t, b, &expected);
  ASSERT_EQ(out.rows(), expected.rows());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_FLOAT_EQ(out.data()[i], expected.data()[i]);
  }
}

TEST(OpsTest, MatMulTransBMatchesExplicitTranspose) {
  const Tensor a = T2x3();
  const Tensor b = T2x3();
  Tensor out;
  MatMulTransB(a, b, &out);
  Tensor b_t(3, 2, {1, 4, 2, 5, 3, 6});
  Tensor expected;
  MatMul(a, b_t, &expected);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_FLOAT_EQ(out.data()[i], expected.data()[i]);
  }
}

TEST(OpsTest, AddInPlace) {
  Tensor a = T2x3();
  AddInPlace(&a, T2x3());
  EXPECT_EQ(a.at(0, 0), 2.0f);
  EXPECT_EQ(a.at(1, 2), 12.0f);
}

TEST(OpsTest, AddRowBroadcast) {
  const Tensor a = T2x3();
  const Tensor bias(1, 3, {10, 20, 30});
  Tensor out;
  AddRowBroadcast(a, bias, &out);
  EXPECT_EQ(out.at(0, 0), 11.0f);
  EXPECT_EQ(out.at(1, 2), 36.0f);
}

TEST(OpsTest, AddRowBroadcastAliasesSafely) {
  Tensor a = T2x3();
  const Tensor bias(1, 3, {1, 1, 1});
  AddRowBroadcast(a, bias, &a);
  EXPECT_EQ(a.at(0, 0), 2.0f);
  EXPECT_EQ(a.at(1, 2), 7.0f);
}

TEST(OpsTest, ScaleInPlace) {
  Tensor a = T2x3();
  ScaleInPlace(&a, 0.5f);
  EXPECT_EQ(a.at(1, 2), 3.0f);
}

TEST(OpsTest, ReluClampsNegatives) {
  const Tensor a(1, 4, {-1, 0, 2, -3});
  Tensor out;
  Relu(a, &out);
  EXPECT_EQ(out.at(0, 0), 0.0f);
  EXPECT_EQ(out.at(0, 1), 0.0f);
  EXPECT_EQ(out.at(0, 2), 2.0f);
  EXPECT_EQ(out.at(0, 3), 0.0f);
}

TEST(OpsTest, ReluBackwardGatesGradient) {
  const Tensor grad(1, 3, {5, 6, 7});
  const Tensor activated(1, 3, {0, 2, 0});
  Tensor out;
  ReluBackward(grad, activated, &out);
  EXPECT_EQ(out.at(0, 0), 0.0f);
  EXPECT_EQ(out.at(0, 1), 6.0f);
  EXPECT_EQ(out.at(0, 2), 0.0f);
}

TEST(OpsTest, SumRows) {
  Tensor out;
  SumRows(T2x3(), &out);
  EXPECT_EQ(out.rows(), 1u);
  EXPECT_EQ(out.at(0, 0), 5.0f);
  EXPECT_EQ(out.at(0, 2), 9.0f);
}

TEST(OpsTest, DotProduct) {
  EXPECT_DOUBLE_EQ(Dot(T2x3(), T2x3()), 1 + 4 + 9 + 16 + 25 + 36);
}

TEST(OpsDeathTest, ShapeMismatchAborts) {
  Tensor out;
  const Tensor a = T2x3();
  EXPECT_DEATH(MatMul(a, a, &out), "Check failed");
}

}  // namespace
}  // namespace gnnlab
