// Tests for the diagnostics layer: the flight recorder's ring semantics
// (wrap-around determinism, truncation, concurrent snapshots), the per-site
// log rate limiter, the structured JSONL log path, diagnostics bundles
// (round-trip through report/json_parse), the crash handlers, and the
// /debug/dump HTTP endpoint. The multi-thread cases double as TSan targets
// (scripts/sanitize.sh runs this suite under -fsanitize=thread).
#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "obs/diagnostics.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "report/json_parse.h"

namespace gnnlab {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream file(path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

// Files in `dir` whose names start with `prefix`.
std::vector<std::string> ListWithPrefix(const std::string& dir,
                                        const std::string& prefix) {
  std::vector<std::string> out;
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    return out;
  }
  while (dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name.rfind(prefix, 0) == 0) {
      out.push_back(dir + "/" + name);
    }
  }
  ::closedir(handle);
  return out;
}

void RemoveAllWithPrefix(const std::string& dir, const std::string& prefix) {
  for (const std::string& path : ListWithPrefix(dir, prefix)) {
    std::remove(path.c_str());
  }
}

// Plain POSIX client for the built-in HTTP exporter.
std::string HttpGet(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)!::write(fd, request.data(), request.size());
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpBody(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string() : response.substr(split + 4);
}

// ---------------------------------------------------------------------------
// FlightRecorder.

TEST(FlightRecorderTest, KindNamesAreStable) {
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kMark), "mark");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kStage), "stage");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kSwitch), "switch");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kShed), "shed");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kAlert), "alert");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kComm), "comm");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kLog), "log");
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(5).capacity_per_thread(), 8u);
  EXPECT_EQ(FlightRecorder(8).capacity_per_thread(), 8u);
  EXPECT_EQ(FlightRecorder(0).capacity_per_thread(), 1u);
  EXPECT_EQ(FlightRecorder(1000).capacity_per_thread(), 1024u);
}

TEST(FlightRecorderTest, RecordsCarryAllFields) {
  FlightRecorder recorder(16);
  recorder.Record(FlightEventKind::kShed, "overload", 3.5, -1.25, "queue_full", 7);
  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kShed);
  EXPECT_EQ(events[0].label, "overload");
  EXPECT_EQ(events[0].detail, "queue_full");
  EXPECT_DOUBLE_EQ(events[0].a, 3.5);
  EXPECT_DOUBLE_EQ(events[0].b, -1.25);
  EXPECT_EQ(events[0].code, 7u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_GT(events[0].ts, 0.0);
  EXPECT_EQ(recorder.total_recorded(), 1u);
  EXPECT_EQ(recorder.thread_count(), 1u);
}

// The wrap-around contract: after N > capacity single-threaded records, the
// snapshot holds exactly the last `capacity` events, in seq order, with the
// payloads of exactly those records — deterministically, every time.
TEST(FlightRecorderTest, WrapAroundKeepsExactlyLastCapacityEvents) {
  constexpr std::size_t kCapacity = 8;
  constexpr std::size_t kTotal = 21;  // 2 full laps + 5.
  FlightRecorder recorder(kCapacity);
  for (std::size_t i = 0; i < kTotal; ++i) {
    const std::string label = "e" + std::to_string(i);
    recorder.Record(FlightEventKind::kStage, label.c_str(),
                    static_cast<double>(i));
  }
  EXPECT_EQ(recorder.total_recorded(), kTotal);

  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), kCapacity);
  for (std::size_t j = 0; j < kCapacity; ++j) {
    const std::size_t i = kTotal - kCapacity + j;  // Original record index.
    EXPECT_EQ(events[j].seq, i + 1) << "snapshot out of seq order at " << j;
    EXPECT_EQ(events[j].label, "e" + std::to_string(i));
    EXPECT_DOUBLE_EQ(events[j].a, static_cast<double>(i));
  }
}

TEST(FlightRecorderTest, TailReturnsNewestBySeq) {
  FlightRecorder recorder(16);
  for (int i = 0; i < 10; ++i) {
    recorder.Record(FlightEventKind::kMark, "m", i);
  }
  const std::vector<FlightEvent> tail = recorder.Tail(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].seq, 8u);
  EXPECT_EQ(tail[2].seq, 10u);
  EXPECT_EQ(recorder.Tail(0).size(), 10u);    // 0 = everything.
  EXPECT_EQ(recorder.Tail(100).size(), 10u);  // Larger than live set.
}

TEST(FlightRecorderTest, LabelAndDetailTruncateAtFixedWidths) {
  const std::string long_text(100, 'x');
  FlightRecorder recorder(4);
  recorder.Record(FlightEventKind::kMark, long_text.c_str(), 0.0, 0.0,
                  long_text.c_str());
  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  // Inline strings keep a terminating NUL inside the fixed-width slot.
  EXPECT_EQ(events[0].label, std::string(FlightRecorder::kLabelBytes - 1, 'x'));
  EXPECT_EQ(events[0].detail, std::string(FlightRecorder::kDetailBytes - 1, 'x'));
}

TEST(FlightRecorderTest, ClearResetsSequenceAndEvents) {
  FlightRecorder recorder(8);
  recorder.Record(FlightEventKind::kMark, "before");
  recorder.Clear();
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_EQ(recorder.total_recorded(), 0u);
  recorder.Record(FlightEventKind::kMark, "after");
  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].seq, 1u);  // Numbering restarts.
  EXPECT_EQ(events[0].label, "after");
}

// TSan target: concurrent writers on their own rings plus a reader
// snapshotting mid-flight must be race-free, and the post-join snapshot must
// be exact (all rings full, unique seqs, per-thread labels intact).
TEST(FlightRecorderTest, ConcurrentWritersAndSnapshotReader) {
  constexpr std::size_t kCapacity = 64;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 1000;
  FlightRecorder recorder(kCapacity);

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::vector<FlightEvent> mid = recorder.Snapshot();
      // Snapshots taken mid-write may skip torn slots but never exceed the
      // live window, and must stay sorted by seq.
      EXPECT_LE(mid.size(), kCapacity * kWriters);
      for (std::size_t i = 1; i < mid.size(); ++i) {
        EXPECT_LT(mid[i - 1].seq, mid[i].seq);
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, w] {
      const std::string label = "w" + std::to_string(w);
      for (int i = 0; i < kPerWriter; ++i) {
        recorder.Record(FlightEventKind::kStage, label.c_str(),
                        static_cast<double>(i), 0.0, nullptr,
                        static_cast<std::uint32_t>(w));
      }
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(recorder.total_recorded(),
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(recorder.thread_count(), static_cast<std::size_t>(kWriters));

  // Quiesced: every ring is full and every surviving slot is committed.
  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), kCapacity * kWriters);
  std::set<std::uint64_t> seqs;
  for (const FlightEvent& event : events) {
    EXPECT_TRUE(seqs.insert(event.seq).second) << "duplicate seq " << event.seq;
    EXPECT_EQ(event.label, "w" + std::to_string(event.code));
  }
}

TEST(FlightRecorderTest, EventsJsonRoundTripsThroughParser) {
  FlightRecorder recorder(8);
  recorder.Record(FlightEventKind::kSwitch, "standby", 1.5, 2.5, "fetch", 3);
  recorder.Record(FlightEventKind::kLog, "shed \"q\"", 0.0, 0.0, "cause=back\\slash");

  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(FlightEventsToJson(recorder.Snapshot()), &root, &error))
      << error;
  ASSERT_EQ(root.kind, JsonValue::Kind::kArray);
  ASSERT_EQ(root.array.size(), 2u);

  const JsonValue& first = root.array[0];
  EXPECT_EQ(first.Find("kind")->string, "switch");
  EXPECT_EQ(first.Find("label")->string, "standby");
  EXPECT_EQ(first.Find("detail")->string, "fetch");
  EXPECT_DOUBLE_EQ(first.Find("a")->number, 1.5);
  EXPECT_DOUBLE_EQ(first.Find("b")->number, 2.5);
  EXPECT_DOUBLE_EQ(first.Find("code")->number, 3.0);
  EXPECT_DOUBLE_EQ(first.Find("seq")->number, 1.0);

  // Quotes and backslashes in payloads survive escape + parse.
  const JsonValue& second = root.array[1];
  EXPECT_EQ(second.Find("label")->string, "shed \"q\"");
  EXPECT_EQ(second.Find("detail")->string, "cause=back\\slash");
}

// ---------------------------------------------------------------------------
// LogRateLimiter.

TEST(LogRateLimiterTest, FrozenClockTokenAccounting) {
  LogRateLimiter limiter(/*per_second=*/1.0, /*burst=*/2.0);
  // Starts with a full bucket of `burst` tokens.
  EXPECT_TRUE(limiter.AllowAt(100.0));
  EXPECT_TRUE(limiter.AllowAt(100.0));
  EXPECT_FALSE(limiter.AllowAt(100.0));
  EXPECT_EQ(limiter.suppressed(), 1u);

  // Half a second refills half a token: still short of 1.
  EXPECT_FALSE(limiter.AllowAt(100.5));
  EXPECT_EQ(limiter.suppressed(), 2u);

  // A full second of credit since the last refill point admits one line and
  // TakeSuppressed drains the counter exactly once.
  EXPECT_TRUE(limiter.AllowAt(101.5));
  EXPECT_EQ(limiter.TakeSuppressed(), 2u);
  EXPECT_EQ(limiter.TakeSuppressed(), 0u);

  // A long quiet period refills to `burst`, never beyond.
  EXPECT_TRUE(limiter.AllowAt(500.0));
  EXPECT_TRUE(limiter.AllowAt(500.0));
  EXPECT_FALSE(limiter.AllowAt(500.0));

  // Time moving backwards neither refills nor crashes.
  EXPECT_FALSE(limiter.AllowAt(400.0));
  EXPECT_EQ(limiter.suppressed(), 2u);
}

TEST(LogRateLimiterTest, MultiThreadTotalsAreExact) {
  // Zero refill rate and a burst of 1: across any number of racing callers
  // exactly one Allow succeeds and every other call is counted suppressed.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  LogRateLimiter limiter(/*per_second=*/0.0, /*burst=*/1.0);
  std::atomic<std::uint64_t> allowed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        if (limiter.AllowAt(7.0)) {
          allowed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(allowed.load(), 1u);
  EXPECT_EQ(limiter.suppressed(),
            static_cast<std::uint64_t>(kThreads) * kPerThread - 1);
}

// ---------------------------------------------------------------------------
// Structured JSONL logging.

class StructuredLogTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetLogObserver(nullptr);
    SetLogFormat(LogFormat::kText);
    SetLogLevel(LogLevel::kInfo);
    ClearLogTail();
  }
};

TEST_F(StructuredLogTest, JsonlLinesParseAndReachObserverAndTail) {
  SetLogFormat(LogFormat::kJsonl);
  ClearLogTail();
  std::vector<StructuredLogEvent> seen;
  SetLogObserver([&seen](const StructuredLogEvent& event) { seen.push_back(event); });

  SLOG_WARNING("test_event").Kv("cause", "queue \"full\"").Kv("depth", 42).Kv("ok", true);

  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].event, "test_event");
  EXPECT_EQ(seen[0].level, LogLevel::kWarning);
  ASSERT_EQ(seen[0].fields.size(), 3u);
  EXPECT_EQ(seen[0].fields[0].first, "cause");

  const std::vector<std::string> tail = RecentLogLines();
  ASSERT_FALSE(tail.empty());
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(tail.back(), &root, &error)) << error << ": " << tail.back();
  EXPECT_EQ(root.Find("event")->string, "test_event");
  EXPECT_EQ(root.Find("level")->string, "warning");
  EXPECT_EQ(root.Find("cause")->string, "queue \"full\"");
  EXPECT_DOUBLE_EQ(root.Find("depth")->number, 42.0);
  EXPECT_EQ(root.Find("ok")->kind, JsonValue::Kind::kBool);
  EXPECT_NE(root.Find("ts"), nullptr);
  EXPECT_NE(root.Find("src"), nullptr);
}

TEST_F(StructuredLogTest, PerSiteRateLimiterSuppressesAndAnnotates) {
  SetLogFormat(LogFormat::kJsonl);
  ClearLogTail();
  std::atomic<int> emitted{0};
  SetLogObserver([&emitted](const StructuredLogEvent&) { ++emitted; });

  // One textual call site, hammered from several threads: the per-site
  // bucket (burst 1 + ceil(per_second) = 2 at 0.001/s) lets at most the
  // burst through no matter the concurrency.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        SLOG_WARNING_EVERY("storm", 0.001).Kv("i", i);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_GE(emitted.load(), 1);
  EXPECT_LE(emitted.load(), 2);  // The site's burst allowance.

  // The suppressed count surfaces on the next line through the same site.
  std::vector<std::string> annotated;
  for (const std::string& line : RecentLogLines()) {
    if (line.find("\"event\":\"storm\"") != std::string::npos &&
        line.find("\"suppressed\"") != std::string::npos) {
      annotated.push_back(line);
    }
  }
  // Either the second burst line carried it, or nothing was suppressed yet
  // when the last line rendered (all threads raced the first token). The
  // emitted count bounds above already pin the limiter math; this checks
  // the annotation renders as valid JSON when present.
  for (const std::string& line : annotated) {
    JsonValue root;
    std::string error;
    ASSERT_TRUE(ParseJson(line, &root, &error)) << error;
    EXPECT_GT(root.Find("suppressed")->number, 0.0);
  }
}

// ---------------------------------------------------------------------------
// Diagnostics bundles.

class DiagnosticsHubTest : public ::testing::Test {
 protected:
  void SetUp() override { DiagnosticsHub::Global()->Reset(); }
  void TearDown() override {
    DiagnosticsHub::Global()->Reset();
    ClearLogTail();
  }
};

TEST_F(DiagnosticsHubTest, BundleRoundTripsThroughParser) {
  DiagnosticsHub* hub = DiagnosticsHub::Global();
  hub->SetConfig("engine", "threaded");
  hub->SetConfig("cache_ratio", "0.25");

  MetricRegistry registry;
  registry.GetCounter("queue.enqueued")->Increment(5);
  hub->BindRegistry(&registry);

  FlightRecorder recorder(8);
  recorder.Record(FlightEventKind::kMark, "epoch_begin", 1.0, 32.0);
  recorder.Record(FlightEventKind::kShed, "overload", 9.0, 0.0, "queue_full");
  hub->BindRecorder(&recorder);

  hub->SetSection("switch_decisions", [] {
    return std::string("[{\"epoch\":1,\"fetch\":true}]");
  });
  hub->SetSection("empty_section", [] { return std::string(); });

  SetLogFormat(LogFormat::kJsonl);
  SLOG_WARNING("bundle_test").Kv("k", "v");
  SetLogFormat(LogFormat::kText);

  const std::string bundle = hub->BundleJson("unit_test");
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(bundle, &root, &error)) << error;

  EXPECT_EQ(root.Find("schema")->string, kDiagnosticsSchema);
  EXPECT_EQ(root.Find("reason")->string, "unit_test");
  EXPECT_GT(root.Find("pid")->number, 0.0);
  EXPECT_FALSE(root.Find("git")->string.empty());
  EXPECT_EQ(root.Find("obs_enabled")->kind, JsonValue::Kind::kBool);

  const JsonValue* config = root.Find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->Find("engine")->string, "threaded");
  EXPECT_EQ(config->Find("cache_ratio")->string, "0.25");

  const JsonValue* metrics = root.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->kind, JsonValue::Kind::kObject);

  const JsonValue* flight = root.Find("flight_recorder");
  ASSERT_NE(flight, nullptr);
  EXPECT_DOUBLE_EQ(flight->Find("capacity_per_thread")->number, 8.0);
  EXPECT_DOUBLE_EQ(flight->Find("total_recorded")->number, 2.0);
  const JsonValue* events = flight->Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 2u);
  EXPECT_EQ(events->array[1].Find("label")->string, "overload");

  const JsonValue* sections = root.Find("sections");
  ASSERT_NE(sections, nullptr);
  const JsonValue* switches = sections->Find("switch_decisions");
  ASSERT_NE(switches, nullptr);
  ASSERT_EQ(switches->kind, JsonValue::Kind::kArray);
  EXPECT_EQ(switches->array[0].Find("fetch")->kind, JsonValue::Kind::kBool);
  // An empty provider result renders as null, keeping the bundle parseable.
  EXPECT_EQ(sections->Find("empty_section")->kind, JsonValue::Kind::kNull);

  const JsonValue* log_tail = root.Find("log_tail");
  ASSERT_NE(log_tail, nullptr);
  bool found = false;
  for (const JsonValue& line : log_tail->array) {
    found = found || line.string.find("bundle_test") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST_F(DiagnosticsHubTest, BundleIsWellFormedWithNothingBound) {
  const std::string bundle = DiagnosticsHub::Global()->BundleJson("bare");
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(bundle, &root, &error)) << error;
  EXPECT_EQ(root.Find("schema")->string, kDiagnosticsSchema);
  EXPECT_EQ(root.Find("metrics")->kind, JsonValue::Kind::kNull);
  EXPECT_EQ(root.Find("alerts")->kind, JsonValue::Kind::kArray);
  EXPECT_TRUE(root.Find("alerts")->array.empty());
}

TEST_F(DiagnosticsHubTest, DumpToFileSanitizesReasonIntoFilename) {
  DiagnosticsHub* hub = DiagnosticsHub::Global();
  hub->SetDumpDir(::testing::TempDir());
  const std::string path = hub->DumpToFile("weird/reason with spaces!");
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("gnnlab_diag.weird_reason_with_spaces_."), std::string::npos);
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(ReadFile(path), &root, &error)) << error;
  EXPECT_EQ(root.Find("reason")->string, "weird/reason with spaces!");
  std::remove(path.c_str());
}

TEST_F(DiagnosticsHubTest, AlertDumpsAreRateLimited) {
  DiagnosticsHub* hub = DiagnosticsHub::Global();
  hub->SetDumpDir(::testing::TempDir());
  RemoveAllWithPrefix(::testing::TempDir(), "gnnlab_diag.alert_backlog");

  AlertState state;
  state.rule.name = "backlog";
  state.rule.metric = "queue.depth";
  state.value = 99.0;
  state.firing = true;

  const std::string first = hub->MaybeAlertDump(state, /*min_interval_seconds=*/3600.0);
  ASSERT_FALSE(first.empty());
  EXPECT_NE(first.find("gnnlab_diag.alert_backlog."), std::string::npos);
  // A second edge inside the window is swallowed.
  EXPECT_EQ(hub->MaybeAlertDump(state, 3600.0), "");
  // Reset clears the rate-limit clock, so the next edge dumps again.
  hub->Reset();
  hub->SetDumpDir(::testing::TempDir());
  EXPECT_FALSE(hub->MaybeAlertDump(state, 3600.0).empty());
  RemoveAllWithPrefix(::testing::TempDir(), "gnnlab_diag.alert_backlog");
}

TEST_F(DiagnosticsHubTest, AlertRisingEdgeWritesBundleThroughMonitor) {
  const std::string dir = TempPath("alert_edge_dumps");
  ::mkdir(dir.c_str(), 0755);
  RemoveAllWithPrefix(dir, "gnnlab_diag.");

  MetricRegistry registry;
  registry.GetCounter("queue.enqueued")->Increment(1);

  HealthMonitor::Options options;
  AlertRule rule;
  ASSERT_TRUE(ParseAlertRule("backlog: queue.enqueued > 5", &rule));
  options.rules.push_back(rule);
  options.min_eval_interval_seconds = 0.0;
  HealthMonitor health(&registry, options);

  DiagnosticsHub* hub = DiagnosticsHub::Global();
  hub->SetDumpDir(dir);
  hub->BindRegistry(&registry);
  ArmAlertEdgeDumps(&health, /*min_interval_seconds=*/0.0);

  health.Evaluate(/*force=*/true);  // Quiet: below threshold.
  EXPECT_TRUE(ListWithPrefix(dir, "gnnlab_diag.").empty());

  registry.GetCounter("queue.enqueued")->Increment(10);
  health.Evaluate(/*force=*/true);  // Rising edge fires the dump.
  const std::vector<std::string> dumps = ListWithPrefix(dir, "gnnlab_diag.alert_backlog");
  ASSERT_EQ(dumps.size(), 1u);

  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(ReadFile(dumps[0]), &root, &error)) << error;
  EXPECT_EQ(root.Find("reason")->string, "alert_backlog");
  const JsonValue* alerts = root.Find("alerts");
  ASSERT_EQ(alerts->array.size(), 1u);
  EXPECT_EQ(alerts->array[0].Find("name")->string, "backlog");
  EXPECT_EQ(alerts->array[0].Find("firing")->kind, JsonValue::Kind::kBool);
  EXPECT_TRUE(alerts->array[0].Find("firing")->boolean);

  hub->UnbindHealth(&health);
  RemoveAllWithPrefix(dir, "gnnlab_diag.");
}

// ---------------------------------------------------------------------------
// /debug/dump endpoint.

TEST_F(DiagnosticsHubTest, DebugDumpEndpointServesBundle) {
  MetricRegistry registry;
  registry.GetCounter("queue.enqueued")->Increment(3);
  HealthMonitor health(&registry, HealthMonitor::Options{});
  const int port = health.StartServer(/*port=*/0);
  ASSERT_GT(port, 0);

  // No handler bound yet: the endpoint answers 503, not a hang or a crash.
  EXPECT_NE(HttpGet(port, "/debug/dump").find("503"), std::string::npos);

  DiagnosticsHub::Global()->BindRegistry(&registry);
  ArmAlertEdgeDumps(&health);
  const std::string response = HttpGet(port, "/debug/dump");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);

  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(HttpBody(response), &root, &error)) << error;
  EXPECT_EQ(root.Find("schema")->string, kDiagnosticsSchema);
  EXPECT_EQ(root.Find("reason")->string, "http_debug_dump");
  ASSERT_NE(root.Find("metrics"), nullptr);
  EXPECT_EQ(root.Find("metrics")->kind, JsonValue::Kind::kObject);

  // /metrics still works beside it.
  EXPECT_NE(HttpGet(port, "/metrics").find("gnnlab_queue_enqueued_total 3"),
            std::string::npos);
  health.StopServer();
  DiagnosticsHub::Global()->UnbindHealth(&health);
}

// ---------------------------------------------------------------------------
// Crash handlers.

using DiagnosticsCrashDeathTest = DiagnosticsHubTest;

TEST_F(DiagnosticsCrashDeathTest, AbortWritesParseableCrashBundle) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string dir = TempPath("crash_dumps");
  ::mkdir(dir.c_str(), 0755);
  RemoveAllWithPrefix(dir, "gnnlab_diag.crash_sigabrt");

  EXPECT_EXIT(
      {
        DiagnosticsHub* hub = DiagnosticsHub::Global();
        hub->Reset();
        hub->SetDumpDir(dir);
        hub->SetConfig("scenario", "crash_smoke");
        FlightRecorder::Global()->Record(FlightEventKind::kMark, "pre_crash", 7.0);
        InstallCrashHandlers();
        std::abort();
      },
      ::testing::KilledBySignal(SIGABRT), "crash bundle");

  const std::vector<std::string> dumps =
      ListWithPrefix(dir, "gnnlab_diag.crash_sigabrt");
  ASSERT_EQ(dumps.size(), 1u);
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(ReadFile(dumps[0]), &root, &error)) << error;
  EXPECT_EQ(root.Find("schema")->string, kDiagnosticsSchema);
  EXPECT_EQ(root.Find("reason")->string, "crash_sigabrt");
  EXPECT_EQ(root.Find("config")->Find("scenario")->string, "crash_smoke");
  const JsonValue* flight = root.Find("flight_recorder");
  ASSERT_NE(flight, nullptr);
  bool found = false;
  for (const JsonValue& event : flight->Find("events")->array) {
    found = found || event.Find("label")->string == "pre_crash";
  }
  EXPECT_TRUE(found);
  RemoveAllWithPrefix(dir, "gnnlab_diag.crash_sigabrt");
}

}  // namespace
}  // namespace gnnlab
