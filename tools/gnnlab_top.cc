// gnnlab_top: a live terminal dashboard over the HealthMonitor /metrics
// endpoint — `top` for a GNNLab process. Polls the Prometheus text
// exposition, diffs counters between frames, and renders per-stage
// latency/throughput, queue depths, cache hit rates, serve/dist activity,
// and alert states.
//
//   ./build/tools/gnnlab_top --port=8080 [--interval-ms=1000] [--frames=0]
//       [--plain] [--once] [--url=http://127.0.0.1:8080/metrics]
//
// --port polls http://127.0.0.1:PORT/metrics; --url overrides host, port,
// and path (loopback dotted-quad or "localhost" hosts only — the exporter
// binds loopback). --frames=N stops after N frames (0 = until ^C / scrape
// failure). --plain skips the ANSI clear-screen between frames (append-only
// output, suitable for logs and CI smokes); --once is shorthand for
// --frames=1 --plain. Exits 1 when a scrape fails — a process that dies
// under the dashboard is noticed, not spun on.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <chrono>

namespace {

struct Target {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string path = "/metrics";
};

// Accepts "http://HOST:PORT/PATH", "HOST:PORT/PATH", or "HOST:PORT".
bool ParseUrl(const std::string& url, Target* out) {
  std::string rest = url;
  const std::string scheme = "http://";
  if (rest.compare(0, scheme.size(), scheme) == 0) {
    rest = rest.substr(scheme.size());
  }
  const std::size_t slash = rest.find('/');
  std::string hostport = rest.substr(0, slash);
  out->path = slash == std::string::npos ? "/metrics" : rest.substr(slash);
  const std::size_t colon = hostport.rfind(':');
  if (colon == std::string::npos) {
    return false;
  }
  out->host = hostport.substr(0, colon);
  out->port = std::atoi(hostport.c_str() + colon + 1);
  if (out->host == "localhost") {
    out->host = "127.0.0.1";
  }
  return out->port > 0 && !out->host.empty();
}

// Plain POSIX HTTP GET; returns false on connect/read failure or non-200.
bool HttpGet(const Target& target, std::string* body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(target.port));
  if (::inet_pton(AF_INET, target.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  const std::string request = "GET " + target.path +
                              " HTTP/1.1\r\nHost: " + target.host +
                              "\r\nConnection: close\r\n\r\n";
  if (::write(fd, request.data(), request.size()) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return false;
  }
  std::string response;
  char buffer[8192];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos ||
      response.find("200") == std::string::npos ||
      response.find("200") > response.find("\r\n")) {
    return false;
  }
  *body = response.substr(header_end + 4);
  return true;
}

// One scrape, flattened: "name" -> value for plain series, and
// "name{quantile=\"0.5\"}" stored as "name:p50" (likewise p95/p99). Other
// labeled series keep their label block in the key (gnnlab_build_info).
struct Scrape {
  std::map<std::string, double> values;
  std::map<std::string, std::string> labels;  // series -> raw label block
  double ts = 0.0;                            // monotonic scrape time

  double Get(const std::string& key, double fallback = 0.0) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  bool Has(const std::string& key) const { return values.count(key) != 0; }
};

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Scrape ParseExposition(const std::string& text) {
  Scrape scrape;
  scrape.ts = NowSeconds();
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      eol = text.size();
    }
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) {
      continue;
    }
    std::string name = line.substr(0, space);
    const double value = std::atof(line.c_str() + space + 1);
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos) {
      const std::string base = name.substr(0, brace);
      const std::string label_block = name.substr(brace);
      if (label_block.find("quantile=\"0.5\"") != std::string::npos) {
        name = base + ":p50";
      } else if (label_block.find("quantile=\"0.95\"") != std::string::npos) {
        name = base + ":p95";
      } else if (label_block.find("quantile=\"0.99\"") != std::string::npos) {
        name = base + ":p99";
      } else {
        scrape.labels[base] = label_block;
        name = base;
      }
    }
    scrape.values[name] = value;
  }
  return scrape;
}

// Counter rate between two frames (0 on the first frame or on reset).
double Rate(const Scrape& now, const Scrape& prev, const std::string& key) {
  if (prev.values.empty() || now.ts <= prev.ts) {
    return 0.0;
  }
  const double delta = now.Get(key) - prev.Get(key);
  return delta > 0.0 ? delta / (now.ts - prev.ts) : 0.0;
}

void PrintStageRow(const Scrape& now, const Scrape& prev, const char* label,
                   const std::string& base) {
  if (!now.Has(base + "_count")) {
    return;
  }
  std::printf("  %-8s %9.2f %9.2f %10.0f %9.1f/s\n", label,
              now.Get(base + ":p50") * 1e3, now.Get(base + ":p99") * 1e3,
              now.Get(base + "_count"), Rate(now, prev, base + "_count"));
}

void Render(const Scrape& now, const Scrape& prev, const Target& target,
            std::size_t frame) {
  const auto build = now.labels.find("gnnlab_build_info");
  std::printf("gnnlab_top — http://%s:%d%s — frame %zu%s\n", target.host.c_str(),
              target.port, target.path.c_str(), frame,
              build != now.labels.end() ? ("  " + build->second).c_str() : "");

  std::printf("\n  %-8s %9s %9s %10s %11s\n", "stage", "p50(ms)", "p99(ms)",
              "count", "rate");
  PrintStageRow(now, prev, "sample", "gnnlab_stage_sample");
  PrintStageRow(now, prev, "mark", "gnnlab_stage_mark");
  PrintStageRow(now, prev, "copy", "gnnlab_stage_copy");
  PrintStageRow(now, prev, "extract", "gnnlab_stage_extract");
  PrintStageRow(now, prev, "train", "gnnlab_stage_train");

  if (now.Has("gnnlab_queue_depth") || now.Has("gnnlab_queue_enqueued_total")) {
    std::printf("\n  queue   depth %5.0f  bytes %12.0f  enqueued %8.0f (%.1f/s)\n",
                now.Get("gnnlab_queue_depth"), now.Get("gnnlab_queue_bytes"),
                now.Get("gnnlab_queue_enqueued_total"),
                Rate(now, prev, "gnnlab_queue_enqueued_total"));
  }
  if (now.Has("gnnlab_pool_size")) {
    std::printf("  pool    busy %6.0f / %-6.0f tasks %10.0f\n",
                now.Get("gnnlab_pool_busy"), now.Get("gnnlab_pool_size"),
                now.Get("gnnlab_pool_tasks_total"));
  }
  const double hits = now.Get("gnnlab_extract_cache_hits_total");
  const double misses = now.Get("gnnlab_extract_host_misses_total");
  if (hits + misses > 0.0) {
    std::printf("  cache   hit %5.1f%%  (%0.f hits, %0.f misses)  bytes host %12.0f "
                "cache %12.0f\n",
                100.0 * hits / (hits + misses), hits, misses,
                now.Get("gnnlab_extract_bytes_host_total"),
                now.Get("gnnlab_extract_bytes_cache_total"));
  }
  const double tier_hits = now.Get("gnnlab_cache_tier_host_hits_total");
  const double tier_misses = now.Get("gnnlab_cache_tier_host_misses_total");
  if (tier_hits + tier_misses > 0.0) {
    std::printf("  tiers   host hit %5.1f%%  (%0.f hits, %0.f ssd)  evictions %8.0f  "
                "ssd bytes %12.0f\n",
                100.0 * tier_hits / (tier_hits + tier_misses), tier_hits, tier_misses,
                now.Get("gnnlab_cache_tier_host_evictions_total"),
                now.Get("gnnlab_cache_tier_ssd_bytes_read_total"));
  }

  if (now.Has("gnnlab_serve_offered_total")) {
    const double shed_full = now.Get("gnnlab_serve_shed_queue_full_total");
    const double shed_over = now.Get("gnnlab_serve_shed_overload_total");
    std::printf("\n  serve   depth %5.0f  offered %8.0f (%.1f/s)  served %8.0f "
                "(%.1f/s)\n",
                now.Get("gnnlab_serve_queue_depth"),
                now.Get("gnnlab_serve_offered_total"),
                Rate(now, prev, "gnnlab_serve_offered_total"),
                now.Get("gnnlab_serve_served_total"),
                Rate(now, prev, "gnnlab_serve_served_total"));
    std::printf("          shed %8.0f (queue_full %.0f, overload %.0f)  e2e p99 "
                "%7.2fms  slo viol %6.0f\n",
                shed_full + shed_over, shed_full, shed_over,
                now.Get("gnnlab_serve_e2e_seconds:p99") * 1e3,
                now.Get("gnnlab_serve_slo_violations_total"));
  }

  if (now.Has("gnnlab_dist_allreduce_rounds_total")) {
    std::printf("\n  dist    allreduce rounds %6.0f (%.1f/s)  wire %14.0fB  busy "
                "%8.3fs  nodes %3.0f\n",
                now.Get("gnnlab_dist_allreduce_rounds_total"),
                Rate(now, prev, "gnnlab_dist_allreduce_rounds_total"),
                now.Get("gnnlab_dist_allreduce_wire_bytes_total"),
                now.Get("gnnlab_dist_allreduce_seconds"),
                now.Get("gnnlab_dist_nodes"));
  }

  bool any_alert = false;
  for (const auto& [name, value] : now.values) {
    if (name.compare(0, 13, "gnnlab_alert_") == 0) {
      if (!any_alert) {
        std::printf("\n  alerts\n");
        any_alert = true;
      }
      std::printf("    %-32s %s\n", name.c_str() + 13,
                  value > 0.5 ? "FIRING" : "ok");
    }
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  Target target;
  double interval_ms = 1000.0;
  std::size_t frames = 0;  // 0 = until scrape failure / ^C.
  bool plain = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--port=", 7) == 0) {
      target.port = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--url=", 6) == 0) {
      if (!ParseUrl(arg + 6, &target)) {
        std::fprintf(stderr, "bad --url '%s' (want [http://]HOST:PORT[/PATH])\n",
                     arg + 6);
        return 2;
      }
    } else if (std::strncmp(arg, "--interval-ms=", 14) == 0) {
      interval_ms = std::atof(arg + 14);
    } else if (std::strncmp(arg, "--frames=", 9) == 0) {
      frames = static_cast<std::size_t>(std::atoll(arg + 9));
    } else if (std::strcmp(arg, "--plain") == 0) {
      plain = true;
    } else if (std::strcmp(arg, "--once") == 0) {
      plain = true;
      frames = 1;
    } else {
      std::fprintf(stderr,
                   "usage: gnnlab_top --port=N [--url=U] [--interval-ms=F]\n"
                   "                  [--frames=N] [--plain] [--once]\n");
      return 2;
    }
  }
  if (target.port <= 0) {
    std::fprintf(stderr, "gnnlab_top: need --port=N or --url=HOST:PORT\n");
    return 2;
  }

  Scrape prev;
  for (std::size_t frame = 1; frames == 0 || frame <= frames; ++frame) {
    std::string body;
    if (!HttpGet(target, &body)) {
      std::fprintf(stderr, "gnnlab_top: scrape of http://%s:%d%s failed\n",
                   target.host.c_str(), target.port, target.path.c_str());
      return 1;
    }
    const Scrape now = ParseExposition(body);
    if (!plain) {
      std::printf("\033[H\033[2J");  // Cursor home + clear.
    }
    Render(now, prev, target, frame);
    prev = now;
    if (frames == 0 || frame < frames) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(interval_ms));
    }
  }
  return 0;
}
