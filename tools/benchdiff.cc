// benchdiff: the noise-aware perf-regression gate over BenchReport files.
//
// Usage:
//   benchdiff [options] <baseline.json | baseline-dir> <current.json...>
//
// The baseline may be a single report or a directory of committed baselines
// (bench/baselines/); in directory mode each current report is matched to
// <dir>/<bench>.json by its own bench name, and a current report with no
// committed baseline is noted and skipped rather than failed (new benches
// must be able to land before their baseline does).
//
// Options:
//   --rel=<f>          relative threshold on the median delta (default 0.05)
//   --k-mad=<f>        noise floor multiplier k * baseline MAD (default 3)
//   --gate=<mode>      deterministic (default) | all — gate wall-clock too
//   --fail-on-missing  a baseline series absent from current fails the gate
//   --json             machine-readable output instead of the table
//
// Exit codes: 0 clean, 1 at least one regression (or missing series under
// --fail-on-missing), 2 usage / unreadable report / config mismatch.
#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "report/bench_diff.h"
#include "report/bench_report.h"

namespace gnnlab {
namespace {

struct CliOptions {
  BenchDiffOptions diff;
  bool json = false;
  std::vector<std::string> paths;
};

void Usage(std::FILE* out) {
  std::fprintf(out,
               "usage: benchdiff [--rel=<f>] [--k-mad=<f>] "
               "[--gate=deterministic|all] [--fail-on-missing] [--json]\n"
               "                 <baseline.json|baseline-dir> <current.json...>\n");
}

bool ParseCli(int argc, char** argv, CliOptions* cli) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--rel=", 6) == 0) {
      if (!ParseNonNegativeDouble(arg + 6, &cli->diff.rel_threshold)) {
        std::fprintf(stderr, "benchdiff: bad value for --rel: '%s'\n", arg + 6);
        return false;
      }
    } else if (std::strncmp(arg, "--k-mad=", 8) == 0) {
      if (!ParseNonNegativeDouble(arg + 8, &cli->diff.k_mad)) {
        std::fprintf(stderr, "benchdiff: bad value for --k-mad: '%s'\n", arg + 8);
        return false;
      }
    } else if (std::strncmp(arg, "--gate=", 7) == 0) {
      if (std::strcmp(arg + 7, "all") == 0) {
        cli->diff.gate_wall = true;
      } else if (std::strcmp(arg + 7, "deterministic") == 0) {
        cli->diff.gate_wall = false;
      } else {
        std::fprintf(stderr, "benchdiff: --gate must be deterministic or all\n");
        return false;
      }
    } else if (std::strcmp(arg, "--fail-on-missing") == 0) {
      cli->diff.fail_on_missing = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      cli->json = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      Usage(stdout);
      std::exit(0);
    } else if (std::strncmp(arg, "--", 2) == 0) {
      std::fprintf(stderr, "benchdiff: unknown flag: %s\n", arg);
      return false;
    } else {
      cli->paths.emplace_back(arg);
    }
  }
  if (cli->paths.size() < 2) {
    Usage(stderr);
    return false;
  }
  return true;
}

bool IsDirectory(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

}  // namespace

int Main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseCli(argc, argv, &cli)) {
    return 2;
  }

  const std::string& base_path = cli.paths.front();
  const bool dir_mode = IsDirectory(base_path);
  BenchReport base_single;
  if (!dir_mode) {
    std::string error;
    if (!LoadBenchReportFile(base_path, &base_single, &error)) {
      std::fprintf(stderr, "benchdiff: %s: %s\n", base_path.c_str(), error.c_str());
      return 2;
    }
  }

  bool any_regression = false;
  bool any_config_mismatch = false;
  std::string json_out = "[";
  bool first_json = true;
  for (std::size_t i = 1; i < cli.paths.size(); ++i) {
    const std::string& cur_path = cli.paths[i];
    std::string error;
    BenchReport current;
    if (!LoadBenchReportFile(cur_path, &current, &error)) {
      std::fprintf(stderr, "benchdiff: %s: %s\n", cur_path.c_str(), error.c_str());
      return 2;
    }

    BenchReport baseline;
    if (dir_mode) {
      const std::string candidate = base_path + "/" + current.bench + ".json";
      if (!LoadBenchReportFile(candidate, &baseline, &error)) {
        struct stat st;
        if (::stat(candidate.c_str(), &st) != 0) {
          // No committed baseline yet: note and move on so a new bench can
          // land before its first baseline refresh.
          std::printf("benchdiff: no baseline for '%s' (%s), skipping\n",
                      current.bench.c_str(), candidate.c_str());
          continue;
        }
        std::fprintf(stderr, "benchdiff: %s: %s\n", candidate.c_str(), error.c_str());
        return 2;
      }
    } else {
      baseline = base_single;
    }

    const BenchDiffResult result = DiffBenchReports(baseline, current, cli.diff);
    if (cli.json) {
      json_out += first_json ? "" : ",";
      json_out += BenchDiffToJson(result);
      first_json = false;
    } else {
      std::fputs(RenderBenchDiff(result).c_str(), stdout);
    }
    any_regression = any_regression || result.HasRegression();
    any_config_mismatch = any_config_mismatch || !result.config_mismatches.empty();
  }
  if (cli.json) {
    json_out += "]\n";
    std::fputs(json_out.c_str(), stdout);
  }

  if (any_config_mismatch) {
    std::fprintf(stderr,
                 "benchdiff: config mismatch — reports are not comparable "
                 "(rerun at the baseline's config or refresh the baseline)\n");
    return 2;
  }
  return any_regression ? 1 : 0;
}

}  // namespace gnnlab

int main(int argc, char** argv) { return gnnlab::Main(argc, argv); }
