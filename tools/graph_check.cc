// Validates an on-disk gnnlab graph file (static or temporal) and prints a
// one-line summary. Exit codes: 0 = valid, 2 = invalid or unreadable (the
// diagnostic names the first offending edge — duplicate adjacency entry or
// per-vertex timestamp regression). Used by operators to vet graph files
// before pointing a training or streaming run at them.
#include <cstdio>
#include <string>

#include "graph/graph_io.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: graph_check <graph-file>\n");
    return 2;
  }
  const std::string path = argv[1];
  std::string error;
  const auto loaded = gnnlab::LoadGraphFile(path, &error);
  if (!loaded) {
    std::fprintf(stderr, "graph_check: REJECTED %s\n", error.c_str());
    return 2;
  }
  std::printf("graph_check: OK %s: %u vertices, %llu edges%s\n", path.c_str(),
              loaded->graph.num_vertices(),
              static_cast<unsigned long long>(loaded->graph.num_edges()),
              loaded->edge_ts.empty() ? "" : " (timestamped)");
  return 0;
}
